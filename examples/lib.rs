//! Runnable examples live as `cargo run -p pstorm-examples --example <name>`.
