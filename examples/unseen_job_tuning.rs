//! The headline scenario of the thesis (Fig. 1.3): tune a job that has
//! *never* run on the cluster by reusing other jobs' profiles.
//!
//! The store is populated with profiles of the benchmark suite — except
//! word co-occurrence. Submitting co-occurrence triggers the matcher's
//! composition path: the map profile of one donor and the reduce profile
//! of another are stitched into a profile good enough for the CBO to
//! recover most of the own-profile speedup.
//!
//! ```sh
//! cargo run --release -p pstorm-examples --example unseen_job_tuning
//! ```

use datagen::{corpus, SizeClass};
use mrjobs::jobs;
use mrsim::{simulate, ClusterSpec, JobConfig};
use profiler::collect_full_profile;
use pstorm::{PStorM, SubmissionOutcome};
use staticanalysis::StaticFeatures;

fn main() {
    let cluster = ClusterSpec::ec2_c1_medium_16();
    let daemon = PStorM::new().expect("daemon");

    // Populate the store with everything except co-occurrence.
    println!("populating the profile store with donor jobs...");
    for spec in mrjobs::jobs::standard_suite() {
        if spec.name.starts_with("word-cooccurrence") {
            continue;
        }
        let ds = corpus::input_for(&spec.name, SizeClass::Large);
        let Ok((mut profile, _)) =
            collect_full_profile(&spec, &ds, &cluster, &JobConfig::submitted(&spec), 7)
        else {
            continue; // jobs that cannot run at this scale are skipped
        };
        profile.job_id = format!("{}@{}", spec.job_id(), ds.name);
        daemon
            .load_profile(&StaticFeatures::extract(&spec), &profile)
            .expect("load");
    }
    println!("store holds {} profiles", daemon.store.len().unwrap());

    // Submit the never-seen job.
    let spec = jobs::word_cooccurrence_pairs(2);
    let ds = corpus::input_for(&spec.name, SizeClass::Large);
    let default_ms = simulate(&spec, &ds, &cluster, &JobConfig::submitted(&spec), 3)
        .expect("baseline")
        .runtime_ms;
    println!(
        "\nsubmitting unseen job `{}`; default runtime {:.0} virtual min",
        spec.job_id(),
        default_ms / 60_000.0
    );

    let report = daemon.submit(&spec, &ds, 11).expect("submission");
    match &report.outcome {
        SubmissionOutcome::Tuned {
            matched,
            tuned_config,
            ..
        } => {
            println!(
                "matched: map side from `{}`{}",
                matched.map.source_job,
                match &matched.reduce {
                    Some(r) if r.source_job != matched.map.source_job =>
                        format!(", reduce side from `{}` (composite!)", r.source_job),
                    _ => String::new(),
                }
            );
            println!(
                "CBO recommendation: {} reducers, io.sort.mb={}, record%={:.2}, compress={}",
                tuned_config.num_reduce_tasks,
                tuned_config.io_sort_mb,
                tuned_config.io_sort_record_percent,
                tuned_config.compress_map_output
            );
            println!(
                "tuned runtime {:.0} virtual min — {:.1}x speedup without ever profiling this job",
                report.run.runtime_ms / 60_000.0,
                default_ms / report.run.runtime_ms
            );
        }
        SubmissionOutcome::ProfiledAndStored { failure } => {
            println!("no match found ({failure:?}); profile collected for next time");
        }
        SubmissionOutcome::Degraded { reason, .. } => {
            println!("cluster faults degraded this submission: {reason}");
        }
    }
}
