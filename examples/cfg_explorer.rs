//! Fig. 4.2 companion: render the control flow graphs of the word count
//! and word co-occurrence map functions, and demonstrate the conservative
//! CFG matcher on the for-/while-loop rewrite of §4.1.3.
//!
//! ```sh
//! cargo run --release -p pstorm-examples --example cfg_explorer
//! ```

use mrjobs::jobs;
use staticanalysis::{Cfg, NodeKind};

fn render(name: &str, cfg: &Cfg) {
    println!("\n{name}:");
    println!(
        "  {} vertices, {} edges, {} loops (max nesting {})",
        cfg.node_count(),
        cfg.edge_count(),
        cfg.loop_count(),
        cfg.max_loop_depth()
    );
    for (i, node) in cfg.nodes.iter().enumerate() {
        let kind = match node.kind {
            NodeKind::Entry => "entry".to_string(),
            NodeKind::Basic { emits: true } => "block (emits)".to_string(),
            NodeKind::Basic { emits: false } => "block".to_string(),
            NodeKind::Branch => "branch".to_string(),
            NodeKind::LoopHeader => "loop".to_string(),
            NodeKind::Exit => "exit".to_string(),
        };
        let succ: Vec<String> = node.succ.iter().map(|s| format!("v{s}")).collect();
        println!("  v{i}: {kind:<14} -> [{}]", succ.join(", "));
    }
}

fn main() {
    let wc = jobs::word_count();
    let wc_while = jobs::word_count_while_variant();
    let coocc = jobs::word_cooccurrence_pairs(2);

    let cfg_wc = Cfg::from_udf(&wc.map_udf);
    let cfg_wc_while = Cfg::from_udf(&wc_while.map_udf);
    let cfg_coocc = Cfg::from_udf(&coocc.map_udf);

    render("word-count map (for-loop, Algorithm 1)", &cfg_wc);
    render("word-count map (while-loop rewrite)", &cfg_wc_while);
    render("word-co-occurrence map (Algorithm 2)", &cfg_coocc);

    println!("\nconservative CFG matching:");
    println!(
        "  word-count(for)  vs word-count(while):  {}",
        verdict(cfg_wc.matches(&cfg_wc_while))
    );
    println!(
        "  word-count(for)  vs co-occurrence:      {}",
        verdict(cfg_wc.matches(&cfg_coocc))
    );
    println!("\nthe rewrite changes the bytecode (a hash would mismatch) but not the");
    println!("CFG; the nested-loop co-occurrence CFG is structurally different.");
}

fn verdict(m: bool) -> &'static str {
    if m {
        "MATCH (score 1)"
    } else {
        "MISMATCH (score 0)"
    }
}
