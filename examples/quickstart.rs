//! Quickstart: the full PStorM loop in a dozen lines.
//!
//! Submit a job twice through the PStorM daemon. The first submission
//! finds an empty store, runs with profiling on, and stores the collected
//! profile. The second submission's 1-task probe matches that profile,
//! the Starfish-style CBO tunes the configuration, and the job runs much
//! faster.
//!
//! ```sh
//! cargo run --release -p pstorm-examples --example quickstart
//! ```

use datagen::{corpus, SizeClass};
use mrjobs::jobs;
use pstorm::{PStorM, SubmissionOutcome};

fn main() {
    let daemon = PStorM::new().expect("fresh daemon");
    let spec = jobs::word_cooccurrence_pairs(2);
    let dataset = corpus::input_for(&spec.name, SizeClass::Large);
    println!(
        "submitting `{}` on `{}` ({:.1} GB logical)",
        spec.job_id(),
        dataset.name,
        dataset.logical_bytes as f64 / (1u64 << 30) as f64
    );

    // First submission: no profile in the store yet.
    let first = daemon.submit(&spec, &dataset, 1).expect("first submission");
    match &first.outcome {
        SubmissionOutcome::ProfiledAndStored { failure } => {
            println!(
                "1st run: no match ({failure:?}); ran with profiling on in {:.1} virtual min",
                first.run.runtime_ms / 60_000.0
            );
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    // Second submission: PStorM matches the stored profile and tunes.
    let second = daemon
        .submit(&spec, &dataset, 2)
        .expect("second submission");
    match &second.outcome {
        SubmissionOutcome::Tuned {
            matched,
            tuned_config,
            ..
        } => {
            println!(
                "2nd run: matched `{}`; CBO recommended {} reducers, io.sort.mb={}, compress={}",
                matched.map.source_job,
                tuned_config.num_reduce_tasks,
                tuned_config.io_sort_mb,
                tuned_config.compress_map_output,
            );
            println!(
                "2nd run finished in {:.1} virtual min — {:.1}x faster",
                second.run.runtime_ms / 60_000.0,
                first.run.runtime_ms / second.run.runtime_ms
            );
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    println!(
        "1-task sampling cost per submission: {:.1} virtual s",
        second.sampling_ms / 1000.0
    );
}
