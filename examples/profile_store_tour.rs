//! A tour of the profile store's data model (Table 5.1) and its
//! filter-pushdown mechanism (§5.3): store a few profiles, inspect the
//! row-key layout and META catalog, run a pushed-down matching filter,
//! and read back normalization bounds.
//!
//! ```sh
//! cargo run --release -p pstorm-examples --example profile_store_tour
//! ```

use datagen::{corpus, SizeClass};
use mrjobs::jobs;
use mrsim::{ClusterSpec, JobConfig};
use profiler::collect_full_profile;
use pstorm::ProfileStore;
use staticanalysis::StaticFeatures;

fn main() {
    let cluster = ClusterSpec::ec2_c1_medium_16();
    let store = ProfileStore::new().expect("store");

    println!("collecting and storing profiles...");
    for spec in [
        jobs::word_count(),
        jobs::word_cooccurrence_pairs(2),
        jobs::sort(),
        jobs::join(),
    ] {
        let ds = corpus::input_for(&spec.name, SizeClass::Small);
        let (mut profile, _) =
            collect_full_profile(&spec, &ds, &cluster, &JobConfig::submitted(&spec), 5)
                .expect("profiling run");
        profile.job_id = format!("{}@{}", spec.job_id(), ds.name);
        store
            .put_profile(&StaticFeatures::extract(&spec), &profile)
            .expect("put");
    }

    println!("\nstored job ids (scan of the Profile/ prefix):");
    for id in store.job_ids().expect("ids") {
        println!("  Profile/{id}");
    }

    println!("\nMETA catalog ((table, start_key, region) -> region server):");
    for entry in store.inner().meta_entries() {
        println!(
            "  {}, {:?}, region_{} -> rs{}",
            entry.table,
            String::from_utf8_lossy(&entry.start_key),
            entry.region_id,
            entry.region_server
        );
    }

    println!("\npushed-down filter: jobs whose MAP_SIZE_SEL > 2.0");
    let (rows, metrics) = store
        .filter_dynamic(|d| d.map_dyn[0] > 2.0)
        .expect("pushdown scan");
    for d in &rows {
        println!(
            "  {}: map_dyn = {:?}",
            d.job_id,
            d.map_dyn
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    println!(
        "  ({} rows scanned server-side, {} returned to the client)",
        metrics.rows_scanned, metrics.rows_returned
    );

    let bounds = store.normalization_bounds().expect("bounds");
    println!("\nmaintained normalization bounds (map dynamic features):");
    println!("  mins: {:?}", round3(&bounds.map_dyn.mins));
    println!("  maxs: {:?}", round3(&bounds.map_dyn.maxs));

    // Eviction.
    let victim = store.job_ids().unwrap().swap_remove(0);
    store.delete_job(&victim).expect("delete");
    println!(
        "\nevicted `{victim}`; {} profiles remain",
        store.len().unwrap()
    );
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
