//! Workflow-level tuning (§7.2.5) and PerfXplain-style explanations
//! (§2.3.2 / §7.2.4): submit the frequent-itemset-mining chain twice —
//! profiling on the first pass, tuned on the second — then ask the
//! explainer why two jobs in the store perform differently.
//!
//! ```sh
//! cargo run --release -p pstorm-examples --example chain_and_explain
//! ```

use datagen::{corpus, SizeClass};
use mrjobs::jobs;
use mrsim::{ClusterSpec, JobConfig};
use profiler::collect_full_profile;
use pstorm::{explain, ChainStage, PStorM};
use staticanalysis::StaticFeatures;

fn main() {
    // ---- The FIM chain through the daemon ------------------------------
    let daemon = PStorM::new().expect("daemon");
    let chain = || {
        vec![
            ChainStage {
                spec: jobs::fim_pass1(4),
                dataset: corpus::input_for("fim-pass1", SizeClass::Small),
            },
            ChainStage {
                spec: jobs::fim_pass2(4),
                dataset: corpus::input_for("fim-pass2", SizeClass::Small),
            },
            ChainStage {
                spec: jobs::fim_pass3(),
                dataset: corpus::input_for("fim-pass3", SizeClass::Small),
            },
        ]
    };

    println!("first chain submission (cold store, every stage profiled):");
    let first = daemon
        .submit_chain("fim-nightly", &chain(), 7)
        .expect("chain");
    println!(
        "  total {:.1} virtual min over {} stages",
        first.total_runtime_ms() / 60_000.0,
        first.stages.len()
    );

    println!("second chain submission (every stage matched and tuned):");
    let second = daemon
        .submit_chain("fim-nightly", &chain(), 8)
        .expect("chain");
    println!(
        "  total {:.1} virtual min — {:.2}x vs first pass",
        second.total_runtime_ms() / 60_000.0,
        first.total_runtime_ms() / second.total_runtime_ms()
    );
    println!(
        "  stored plan: {:?}",
        daemon.get_plan("fim-nightly").unwrap().unwrap()
    );

    // ---- Why is co-occurrence so much slower than word count? ----------
    println!("\nPerfXplain-style explanation: coocc-pairs vs word-count on 35 GB:");
    let cl = ClusterSpec::ec2_c1_medium_16();
    let ds = corpus::wikipedia_35g();
    let profiled = |spec: &mrjobs::JobSpec| {
        let (p, _) = collect_full_profile(spec, &ds, &cl, &JobConfig::submitted(spec), 9).unwrap();
        (p, StaticFeatures::extract(spec))
    };
    let (pa, sa) = profiled(&jobs::word_cooccurrence_pairs(2));
    let (pb, sb) = profiled(&jobs::word_count());
    for e in explain((&pa, &sa), (&pb, &sb)).iter().take(5) {
        println!("  {}", e.render());
    }
}
