#!/usr/bin/env bash
# Local CI: the exact gate a change must pass before merging.
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
