#!/usr/bin/env bash
# Local CI: the exact gate a change must pass before merging.
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: first-party crates must build rustdoc warning-free
# (broken intra-doc links, missing code-block languages, ...). Scoped with
# -p so the vendored dependency stand-ins are not held to the same bar.
echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p obs -p mrjobs -p datagen -p staticanalysis -p mrsim -p profiler \
  -p whatif -p optimizer -p cfstore -p mlmatch -p pstorm -p pstorm-bench

echo "==> trace snapshot (fixed-seed trace must be bit-identical)"
cargo test -q -p pstorm-tests --test trace_snapshot

# Budget regression gate: hard thresholds over the golden trace's
# counters — CBO what-if/memo accounting and ceiling, the matcher's
# per-stage survivor funnel, per-region read-amplification sums, and
# the block-cache hit-rate / flush-compaction accounting ceilings.
# Regenerating the snapshot does NOT loosen these; see budget_gate.rs.
echo "==> budget gate (search budget + matcher funnel + cache/flush envelopes)"
cargo test -q -p pstorm-tests --test budget_gate

# Block-cache oracle: lazy segment-backed reads through the bounded
# cache must be bit-identical to full materialization at every budget
# (including 0 bytes), and a crash injected into the background flusher
# mid-segment-write must lose nothing.
echo "==> block cache property tests (cached reads vs materialized oracle)"
cargo test -q -p pstorm-tests --test property_block_cache

# Sharded-store gate (PR 7): crash/loss/heal properties — any single
# shard killed at every WAL byte, whole-shard loss rebuilding an
# identical META catalog, on-disk segment corruption healed from a
# replica, matcher output unchanged across shard loss. The heal-counter
# ceilings themselves are part of the budget gate above.
echo "==> shard property tests (crash sweep + loss rebuild + heal)"
cargo test -q -p pstorm-tests --test property_shards

# Bounded shard-chaos sweep: each shard killed once at a sampled WAL
# offset across several workload seeds. (The exhaustive every-byte sweep
# already runs in the suite above; this keeps a second, differently
# seeded pass in the gate without the full enumeration cost.)
echo "==> bounded shard-chaos sweep"
cargo test -q -p pstorm-tests --test property_shards -- --ignored

# Multi-tenant isolation sweep (PR 8): ≥1000 seeds of interleaved
# tenants — hostile, flooding, and cell-corrupting — with every clean
# tenant's outcomes pinned bit-identical to a solo single-tenant daemon
# and every acked profile served back. The flood/durable tests run in
# the plain suite above; the `--ignored` test is the full sweep.
echo "==> multi-tenant isolation sweep"
cargo test -q -p pstorm-tests --test property_tenants -- --ignored

# Elastic-resharding gate (PR 9): crash at every TOPOLOGY journal byte
# and at swept mid-migration WAL bytes for grow/shrink/R-change plans,
# pause-at-every-step fsck/resume checks, override placement, matcher
# stability mid-migration, and fsck exit codes — all in the plain suite
# above; the `--ignored` test is the bounded randomized chaos pass.
echo "==> bounded reshard-chaos sweep"
cargo test -q -p pstorm-tests --test property_reshard -- --ignored

# Documentation gate 2: every `DESIGN.md §N` reference in the repo must
# resolve to a real section, and relative doc links must not dangle.
echo "==> doc link check"
./scripts/check_docs.sh

echo "CI OK"
