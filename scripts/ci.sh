#!/usr/bin/env bash
# Local CI: the exact gate a change must pass before merging.
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: first-party crates must build rustdoc warning-free
# (broken intra-doc links, missing code-block languages, ...). Scoped with
# -p so the vendored dependency stand-ins are not held to the same bar.
echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p obs -p mrjobs -p datagen -p staticanalysis -p mrsim -p profiler \
  -p whatif -p optimizer -p cfstore -p mlmatch -p pstorm -p pstorm-bench

echo "==> trace snapshot (fixed-seed trace must be bit-identical)"
cargo test -q -p pstorm-tests --test trace_snapshot

# Budget regression gate: hard thresholds over the golden trace's
# counters — CBO what-if/memo accounting and ceiling, the matcher's
# per-stage survivor funnel, per-region read-amplification sums, and
# the block-cache hit-rate / flush-compaction accounting ceilings.
# Regenerating the snapshot does NOT loosen these; see budget_gate.rs.
echo "==> budget gate (search budget + matcher funnel + cache/flush envelopes)"
cargo test -q -p pstorm-tests --test budget_gate

# Block-cache oracle: lazy segment-backed reads through the bounded
# cache must be bit-identical to full materialization at every budget
# (including 0 bytes), and a crash injected into the background flusher
# mid-segment-write must lose nothing.
echo "==> block cache property tests (cached reads vs materialized oracle)"
cargo test -q -p pstorm-tests --test property_block_cache

echo "CI OK"
