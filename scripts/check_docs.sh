#!/usr/bin/env bash
# Documentation link checker (run by scripts/ci.sh):
#   1. every `DESIGN.md §N` reference anywhere in the repo must resolve
#      to an actual `## N.` section heading in DESIGN.md;
#   2. every relative markdown link in the top-level docs must point at
#      a file that exists.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
docs=(README.md OPERATIONS.md CONTRIBUTING.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md)

# --- 1. DESIGN.md section references -------------------------------------
sections=$(grep -oE '^## [0-9]+' DESIGN.md | awk '{print $2}')
refs=$(grep -rhoE 'DESIGN\.md §[0-9]+' "${docs[@]}" CHANGES.md crates tests scripts examples 2>/dev/null \
  | grep -oE '[0-9]+$' | sort -un)
checked=0
for n in $refs; do
  checked=$((checked + 1))
  if ! printf '%s\n' "$sections" | grep -qx "$n"; then
    echo "ERROR: 'DESIGN.md §$n' is referenced but DESIGN.md has no '## $n.' section" >&2
    fail=1
  fi
done
echo "check_docs: $checked distinct DESIGN.md § reference(s) checked"

# --- 2. relative links in the docs ---------------------------------------
links=0
for f in "${docs[@]}"; do
  [ -f "$f" ] || continue
  # [text](target) links, minus URLs and pure #anchors
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    links=$((links + 1))
    if [ ! -e "${target%%#*}" ]; then
      echo "ERROR: $f links to missing file: $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//' | grep -v '^#' || true)
done
echo "check_docs: $links relative link(s) checked"

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK"
