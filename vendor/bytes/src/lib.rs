//! Minimal offline stand-in for the `bytes` crate.
//!
//! `Bytes` here is a cheaply clonable `Arc<[u8]>` (no zero-copy slicing —
//! nothing in this workspace slices a `Bytes` without copying), `BytesMut`
//! is a thin `Vec<u8>` wrapper, and `Buf`/`BufMut` cover exactly the
//! big-endian accessors the codecs use.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, reference-counted byte string.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            inner: Arc::from(&[][..]),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Arc::from(data),
        }
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.inner
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.inner[..] == other.inner[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner[..].cmp(&other.inner[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.inner[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.inner[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.inner.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte buffer; `freeze` converts to `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

/// Read cursor over a byte source (big-endian accessors).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut be = [0u8; 4];
        be.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(be)
    }

    fn get_u64(&mut self) -> u64 {
        let mut be = [0u8; 8];
        be.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(be)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink with big-endian put accessors.
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_order() {
        let a = Bytes::from("abc");
        let b = Bytes::from("abd");
        assert!(a < b);
        assert_eq!(a.as_ref(), b"abc");
        assert_eq!(a, Bytes::copy_from_slice(b"abc"));
        assert!(a.starts_with(b"ab"));
    }

    #[test]
    fn bytesmut_put_get() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f64(-1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r, b"xyz");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn btreemap_borrow_lookup() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<Bytes, u32> = BTreeMap::new();
        m.insert(Bytes::from("k"), 1);
        assert_eq!(m.get(b"k".as_slice()), Some(&1));
    }
}
