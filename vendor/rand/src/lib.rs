//! Minimal offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the tiny slice of `rand` it actually uses: a seedable
//! `StdRng` (xoshiro256++ seeded via SplitMix64), `Rng::gen` / `gen_range`
//! over numeric ranges, and `seq::SliceRandom::shuffle`.
//!
//! Determinism is the only contract that matters here: every consumer seeds
//! explicitly with `seed_from_u64`, so stream quality only needs to be "good
//! PRNG", not "identical to upstream rand".

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNGs (only the `seed_from_u64` entry point is supported).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from their "natural" distribution
/// (`[0, 1)` for floats, full width for integers).
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`. Implemented
/// per numeric type; `SampleRange` stays a single generic impl so integer
/// literal inference works like upstream `rand`.
pub trait SampleUniform: Sized {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Clone> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let v = lo + f64::sample(rng) * (hi - lo);
        if !inclusive && v >= hi {
            // Guard against FP rounding landing exactly on the excluded end.
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let v = lo + f32::sample(rng) * (hi - lo);
        if !inclusive && v >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64 like upstream
    /// `rand`'s small-state seeding path.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers; only Fisher–Yates `shuffle` is needed.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should not be identity");
    }
}
