//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the generate-only subset this workspace uses: `Strategy`
//! with `prop_map`/`prop_recursive`/`boxed`, `any::<T>()`, numeric range
//! strategies, tuples, `Just`, weighted `prop_oneof!`,
//! `prop::collection::vec`, simple `"[a-z]{0,12}"`-style string patterns,
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Failing cases are NOT shrunk — a failure panics with the seed baked
//! into the test name + case index, which is fully deterministic, so a
//! failure always reproduces by re-running the test.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// RNG handed to strategies; deterministic per (test name, case index).
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// FNV-1a over a test path, used to derive the per-test base seed.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::sync::Arc;

    /// A generator of values of one type. Unlike real proptest there is no
    /// value tree and no shrinking: `generate` produces a value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Unrolled recursion: `depth` layers, each a weighted choice
        /// between the base strategy and `recurse` applied to the previous
        /// layer. Termination is guaranteed by construction (no unbounded
        /// recursion at generate time).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            R: Strategy<Value = Self::Value> + 'static,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let expanded = recurse(cur).boxed();
                cur = Union {
                    arms: vec![(1, base.0.clone()), (2, expanded.0)],
                }
                .boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(pub(crate) Arc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between strategies of a common value type; the
    /// engine behind `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Arc<dyn Strategy<Value = V>>)>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, Arc<dyn Strategy<Value = V>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().any(|(w, _)| *w > 0), "all arm weights are zero");
            Union { arms }
        }
    }

    /// Erase a strategy to an `Arc<dyn Strategy>`; used by `prop_oneof!`.
    pub fn arc<S>(s: S) -> Arc<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Arc::new(s)
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Tiny regex-ish pattern strategy: supports `X{lo,hi}` where `X` is
    /// `.` (any printable char) or a `[...]` class of chars and `a-z`
    /// ranges. Anything unparseable falls back to short alphanumerics.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    enum CharSet {
        /// Printable ASCII plus a sprinkling of multi-byte scalars.
        Any,
        /// Explicit alternatives from a `[...]` class.
        Ranges(Vec<(char, char)>),
    }

    fn parse(pattern: &str) -> Option<(CharSet, usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let (class, counts) = body.rsplit_split_once()?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        let set = if class == "." {
            CharSet::Any
        } else {
            let inner = class.strip_prefix('[')?.strip_suffix(']')?;
            let chars: Vec<char> = inner.chars().collect();
            let mut ranges = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    ranges.push((chars[i], chars[i + 2]));
                    i += 3;
                } else {
                    ranges.push((chars[i], chars[i]));
                    i += 1;
                }
            }
            if ranges.is_empty() {
                return None;
            }
            CharSet::Ranges(ranges)
        };
        Some((set, lo, hi))
    }

    trait RSplitOnce {
        fn rsplit_split_once(&self) -> Option<(&str, &str)>;
    }

    impl RSplitOnce for str {
        fn rsplit_split_once(&self) -> Option<(&str, &str)> {
            let idx = self.rfind('{')?;
            Some((&self[..idx], &self[idx + 1..]))
        }
    }

    const EXTRAS: [char; 4] = ['é', 'λ', '中', '🦀'];

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (set, lo, hi) = parse(pattern).unwrap_or((CharSet::Any, 0, 8));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| match &set {
                CharSet::Any => {
                    // Mostly printable ASCII; 1-in-16 draws a multi-byte char.
                    if rng.gen_range(0u32..16) == 0 {
                        EXTRAS[rng.gen_range(0..EXTRAS.len())]
                    } else {
                        char::from(rng.gen_range(0x20u8..0x7f))
                    }
                }
                CharSet::Ranges(ranges) => {
                    let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                    char::from_u32(rng.gen_range(a as u32..=b as u32)).unwrap_or(a)
                }
            })
            .collect()
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        // Full bit-pattern coverage (like proptest's f64 ANY): includes
        // subnormals, infinities and NaNs — the codec tests rely on them.
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u32())
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            char::from_u32(rng.gen_range(0u32..=0x10_FFFF)).unwrap_or('\u{FFFD}')
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count bounds for collection strategies (`lo..hi`, half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::arc($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::arc($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-harness macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            const __BASE_SEED: u64 =
                $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    __BASE_SEED ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -2.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_recursion_produce_values(t in arb_tree()) {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(children) => {
                        1 + children.iter().map(depth).max().unwrap_or(0)
                    }
                }
            }
            prop_assert!(depth(&t) <= 5);
        }

        #[test]
        fn char_class_patterns(s in "[a-z]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = prop::collection::vec(any::<u64>(), 5..9);
        let a = s.generate(&mut TestRng::from_seed(77));
        let b = s.generate(&mut TestRng::from_seed(77));
        assert_eq!(a, b);
    }
}
