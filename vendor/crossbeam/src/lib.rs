//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace (parallel
//! region scans in `cfstore`, parallel candidate evaluation in
//! `optimizer`). Since Rust 1.63 the standard library provides scoped
//! threads, so this shim adapts `std::thread::scope` to crossbeam's
//! signature: `scope` returns a `Result` (Err when a thread panicked and
//! the panic escaped the scope) and spawn closures receive a `&Scope`
//! argument so nested spawning is possible.

pub mod thread {
    use std::any::Any;

    /// Payload of an escaped panic, as crossbeam names it.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; spawned threads may borrow from `'env`.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller.
    /// All spawned threads are joined before `scope` returns; a panic that
    /// escapes the scope is returned as `Err` rather than propagated.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_captured_by_handle() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }
}
