//! Minimal offline stand-in for `parking_lot`: wraps `std::sync` locks and
//! strips poisoning, which is the only API difference this workspace relies
//! on (`.read()` / `.write()` / `.lock()` returning guards directly).

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
