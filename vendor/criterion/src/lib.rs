//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` API surface the
//! workspace benches use, backed by a simple warmup + timed-batch loop.
//! No statistics beyond mean ns/iter, no HTML reports — results print to
//! stdout, which is all the in-repo benches need.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement loop handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters_done: u64,
}

const WARMUP_ITERS: u64 = 3;
const TARGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    fn new() -> Self {
        Bencher {
            mean_ns: 0.0,
            iters_done: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < TARGET && iters < MAX_ITERS {
            black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters_done = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters_done as f64;
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        println!(
            "bench {label:<50} {:>14.1} ns/iter ({} iters)",
            b.mean_ns, b.iters_done
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            c: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        self.c.run_one(&label, f);
        self
    }

    pub fn bench_with_input<F, T: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.id);
        self.c.run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
        assert!(b.iters_done >= 1);
    }
}
