//! The rule-based optimizer of Appendix B.
//!
//! Heuristic tuning rules distilled from Hadoop administration lore. Each
//! rule has a trigger predicate over the job's *static* description (no
//! profile, no execution feedback — that is the whole point of the
//! comparison) and an action on the configuration. As the paper shows
//! (Fig. 6.3), these rules usually help, sometimes do nothing, and are
//! never as good as cost-based tuning with a good profile.

use mrjobs::{JobSpec, ValueType};
use mrsim::{ClusterSpec, JobConfig};
use staticanalysis::Cfg;

/// A fired rule: its Appendix-B name and what it changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredRule {
    pub name: &'static str,
    pub action: String,
}

/// The RBO's recommendation: a configuration plus the rules that fired.
#[derive(Debug, Clone)]
pub struct RboRecommendation {
    pub config: JobConfig,
    pub fired: Vec<FiredRule>,
}

/// Apply the Appendix-B rules to a job.
pub fn recommend(spec: &JobSpec, cluster: &ClusterSpec) -> RboRecommendation {
    let mut config = JobConfig::submitted(spec);
    let mut fired = Vec::new();

    let map_cfg = Cfg::from_udf(&spec.map_udf);
    // Expectation proxy used by several rules: nested map loops or a
    // composite (join) input suggest intermediate data >= input data.
    let expects_expansion =
        map_cfg.max_loop_depth() >= 2 || spec.input_formatter == "CompositeInputFormat";

    // Rule: combiner usage — always enable the combiner when the job
    // provides one ("always enable the combiner whenever the reduce
    // function is associative and commutative").
    if spec.has_combiner() {
        config.use_combiner = true;
        fired.push(FiredRule {
            name: "combiner-usage",
            action: "enable combiner".to_string(),
        });
    }

    // Rule: mapred.compress.map.output — compress intermediate data when
    // the map is expected to expand its input.
    if expects_expansion {
        config.compress_map_output = true;
        fired.push(FiredRule {
            name: "mapred.compress.map.output",
            action: "enable LZO for map output".to_string(),
        });
    }

    // Rule: io.sort.mb — larger buffer for jobs with more intermediate
    // than input data.
    if expects_expansion {
        let target = (cluster.child_heap_mb / 2).clamp(100, 200);
        config.io_sort_mb = target;
        fired.push(FiredRule {
            name: "io.sort.mb",
            action: format!("raise io.sort.mb to {target}"),
        });
    }

    // Rule: io.sort.record.percent — more metadata space when intermediate
    // records are small (scalar values), less when records are large.
    match spec.map_out_val {
        ValueType::Int | ValueType::Float => {
            config.io_sort_record_percent = 0.15;
            fired.push(FiredRule {
                name: "io.sort.record.percent",
                action: "raise metadata share to 0.15 (small records)".to_string(),
            });
        }
        ValueType::Map | ValueType::List => {
            config.io_sort_record_percent = 0.03;
            fired.push(FiredRule {
                name: "io.sort.record.percent",
                action: "lower metadata share to 0.03 (large records)".to_string(),
            });
        }
        _ => {}
    }

    // Rule: mapred.reduce.tasks — 90% of the cluster's reduce slots, so a
    // failed reducer has a free slot to restart in.
    if spec.has_reduce() {
        let r = ((cluster.reduce_slots() as f64) * 0.9).floor().max(1.0) as u32;
        config.num_reduce_tasks = r;
        fired.push(FiredRule {
            name: "mapred.reduce.tasks",
            action: format!("set reducers to 90% of slots = {r}"),
        });
    }

    RboRecommendation { config, fired }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrjobs::jobs;

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn cooccurrence_triggers_compression_and_buffer_rules() {
        let rec = recommend(&jobs::word_cooccurrence_pairs(2), &cl());
        assert!(rec.config.compress_map_output);
        assert!(rec.config.io_sort_mb >= 100);
        assert_eq!(rec.config.num_reduce_tasks, 27);
        assert!(rec
            .fired
            .iter()
            .any(|r| r.name == "mapred.compress.map.output"));
    }

    #[test]
    fn word_count_gets_reducers_and_metadata_rule() {
        let rec = recommend(&jobs::word_count(), &cl());
        // Single map loop: no expansion expected, no compression.
        assert!(!rec.config.compress_map_output);
        // Int intermediate values: metadata share raised.
        assert_eq!(rec.config.io_sort_record_percent, 0.15);
        assert_eq!(rec.config.num_reduce_tasks, 27);
    }

    #[test]
    fn inverted_index_is_left_mostly_alone() {
        let rec = recommend(&jobs::inverted_index(), &cl());
        assert!(!rec.config.compress_map_output);
        assert_eq!(rec.config.io_sort_mb, 100);
        // Text values: record.percent untouched.
        assert_eq!(rec.config.io_sort_record_percent, 0.05);
    }

    #[test]
    fn join_triggers_composite_input_rule() {
        let rec = recommend(&jobs::join(), &cl());
        assert!(rec.config.compress_map_output, "CompositeInputFormat rule");
    }

    #[test]
    fn stripes_lowers_metadata_share() {
        let rec = recommend(&jobs::word_cooccurrence_stripes(2), &cl());
        assert_eq!(rec.config.io_sort_record_percent, 0.03);
    }

    #[test]
    fn map_only_job_skips_reducer_rule() {
        let mut spec = jobs::word_count();
        spec.reduce_udf = None;
        spec.reducer_class = None;
        let rec = recommend(&spec, &cl());
        assert!(!rec.fired.iter().any(|r| r.name == "mapred.reduce.tasks"));
    }

    #[test]
    fn recommended_configs_validate() {
        for spec in jobs::standard_suite() {
            recommend(&spec, &cl()).config.validate().unwrap();
        }
    }
}
