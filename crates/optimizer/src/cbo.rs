//! The cost-based optimizer (§2.3.1).
//!
//! Given an execution profile, the CBO searches the 14-parameter space and
//! asks the What-If engine for a predicted runtime at every candidate,
//! returning the best configuration found. The search is Starfish-style
//! *recursive random search*: uniform exploration rounds followed by
//! progressively narrower exploitation rounds around the incumbent.
//!
//! ## Performance architecture
//!
//! Three things make the search cheap without changing its answer:
//!
//! 1. **Plan hoisting** — the profile-derived dataflow and cost rates are
//!    built once per search ([`whatif::WhatIfPlan`]), not once per
//!    candidate.
//! 2. **Memoization** — predictions are cached under a canonical
//!    fingerprint of the configuration that ignores fields the job cannot
//!    observe (combiner knobs without a combiner, reduce-side knobs
//!    without a reduce phase), so re-sampled and effectively-equal
//!    candidates cost nothing.
//! 3. **Parallel rounds** — all candidates of a round are generated
//!    up front (candidate generation never depended on evaluation
//!    results within a round), evaluated concurrently on scoped threads,
//!    and reduced sequentially in candidate order. The recommendation is
//!    bit-identical to the serial search for a fixed seed; tests assert
//!    this.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mrjobs::JobSpec;
use mrsim::{ClusterSpec, JobConfig, SimError};
use profiler::JobProfile;
use whatif::WhatIfPlan;

use crate::space::ConfigSpace;

/// CBO parameters.
#[derive(Debug, Clone)]
pub struct CboOptions {
    /// Total What-If invocations the search may spend.
    pub budget: usize,
    /// Exploitation rounds after the initial uniform round.
    pub rounds: usize,
    /// Box shrink factor per exploitation round.
    pub shrink: f64,
    /// RNG seed.
    pub seed: u64,
    /// Evaluate each round's candidate batch on scoped threads. The
    /// result is bit-identical to the serial search; this only changes
    /// wall-clock time.
    pub parallel: bool,
}

impl Default for CboOptions {
    fn default() -> Self {
        CboOptions {
            budget: 300,
            rounds: 3,
            shrink: 0.4,
            seed: 0xcb0,
            parallel: true,
        }
    }
}

/// The CBO's answer: the recommended configuration and its predicted
/// runtime.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub config: JobConfig,
    pub predicted_ms: f64,
    /// How many What-If calls the search spent (memoized hits included:
    /// the budget bounds candidates considered, not distinct simulations).
    pub wif_calls: usize,
}

/// Canonical fingerprint of a [`JobConfig`] for prediction memoization.
///
/// Two configurations with equal keys are guaranteed to produce
/// bit-identical What-If predictions for the plan the key was built
/// against: fields that are inert for the job's dataflow (combiner knobs
/// when there is no combiner, reduce-side knobs when there is no reduce
/// phase) are zeroed out of the key. Only *validated* configurations may
/// be keyed — validation looks at inert fields too, so an invalid config
/// could otherwise collide with a valid one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConfigKey([u64; ConfigSpace::DIMS]);

fn config_key(cfg: &JobConfig, has_combiner: bool, has_reduce: bool) -> ConfigKey {
    ConfigKey([
        cfg.io_sort_mb,
        cfg.io_sort_record_percent.to_bits(),
        cfg.io_sort_spill_percent.to_bits(),
        cfg.io_sort_factor as u64,
        (has_combiner && cfg.use_combiner) as u64,
        if has_combiner {
            cfg.min_num_spills_for_combine as u64
        } else {
            0
        },
        cfg.compress_map_output as u64,
        if has_reduce {
            cfg.reduce_slowstart.to_bits()
        } else {
            0
        },
        if has_reduce {
            cfg.num_reduce_tasks as u64
        } else {
            0
        },
        if has_reduce {
            cfg.shuffle_input_buffer_percent.to_bits()
        } else {
            0
        },
        if has_reduce {
            cfg.shuffle_merge_percent.to_bits()
        } else {
            0
        },
        if has_reduce {
            cfg.inmem_merge_threshold as u64
        } else {
            0
        },
        if has_reduce {
            cfg.reduce_input_buffer_percent.to_bits()
        } else {
            0
        },
        (has_reduce && cfg.compress_output) as u64,
    ])
}

/// Evaluate `configs` against `plan`, optionally on scoped threads.
/// Results come back in input order regardless of completion order, so
/// callers observe no difference between the serial and parallel paths.
fn predict_batch(
    plan: &WhatIfPlan<'_>,
    configs: &[&JobConfig],
    parallel: bool,
) -> Vec<Result<f64, SimError>> {
    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(configs.len())
    } else {
        1
    };
    if threads <= 1 {
        return configs.iter().map(|cfg| plan.predict(cfg)).collect();
    }
    let chunk = configs.len().div_ceil(threads);
    let mut results: Vec<Option<Result<f64, SimError>>> = vec![None; configs.len()];
    crossbeam::thread::scope(|s| {
        for (in_chunk, out_chunk) in configs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            s.spawn(move |_| {
                for (cfg, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(plan.predict(cfg));
                }
            });
        }
    })
    .expect("what-if evaluation thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot written by its chunk's thread"))
        .collect()
}

/// Per-round evaluation bookkeeping surfaced through the observability
/// layer (`cbo.round` span attributes and `cbo.*` counters).
#[derive(Debug, Default, Clone, Copy)]
struct RoundStats {
    /// Candidates considered this round (what-if *calls*).
    candidates: usize,
    /// Candidates served from the memo (or duplicated within the round).
    memo_hits: usize,
    /// Distinct predictions actually simulated.
    evals: usize,
    /// Candidates rejected by configuration validation.
    invalid: usize,
}

/// Search for the best configuration for `spec` on `input_bytes` of data,
/// trusting `profile`.
///
/// Convenience wrapper over [`optimize_traced`] with observability
/// disabled — the hot path most callers (and all benchmarks) use.
pub fn optimize(
    spec: &JobSpec,
    profile: &JobProfile,
    input_bytes: u64,
    cluster: &ClusterSpec,
    opts: &CboOptions,
) -> Result<Recommendation, SimError> {
    optimize_traced(
        spec,
        profile,
        input_bytes,
        cluster,
        opts,
        &obs::Registry::disabled(),
    )
}

/// [`optimize`], recording the search into `reg`: a `cbo.search` span
/// with one `cbo.round` child per round (candidates, memo hits, distinct
/// evaluations, incumbent after the round) plus the `cbo.*` counters.
/// With a disabled registry this *is* `optimize` — the instrumentation
/// reduces to one branch per round, far below measurement noise.
pub fn optimize_traced(
    spec: &JobSpec,
    profile: &JobProfile,
    input_bytes: u64,
    cluster: &ClusterSpec,
    opts: &CboOptions,
    reg: &obs::Registry,
) -> Result<Recommendation, SimError> {
    let space = ConfigSpace::for_cluster(cluster);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut wif_calls = 0usize;

    let search_span = reg.span("cbo.search");
    search_span.attr("job_id", spec.job_id());
    search_span.attr("budget", opts.budget);
    search_span.attr("rounds", opts.rounds);

    let plan = WhatIfPlan::new(spec, profile, input_bytes, cluster);
    let has_combiner = plan.has_combiner();
    let has_reduce = plan.has_reduce();
    let mut memo: HashMap<ConfigKey, Result<f64, SimError>> = HashMap::new();

    // Evaluate one round's candidates: validate serially, look up the
    // memo, run the distinct misses (possibly in parallel), and hand back
    // per-candidate results in candidate order.
    let mut eval_round = |cands: &[JobConfig],
                          calls: &mut usize|
     -> (Vec<Result<f64, SimError>>, RoundStats) {
        *calls += cands.len();
        let mut stats = RoundStats {
            candidates: cands.len(),
            ..RoundStats::default()
        };
        let keys: Vec<Result<ConfigKey, SimError>> = cands
            .iter()
            .map(|cfg| match cfg.validate() {
                Ok(()) => Ok(config_key(cfg, has_combiner, has_reduce)),
                Err(e) => Err(SimError::Config(e)),
            })
            .collect();
        stats.invalid = keys.iter().filter(|k| k.is_err()).count();
        let mut missing: Vec<(ConfigKey, &JobConfig)> = Vec::new();
        for (cfg, key) in cands.iter().zip(&keys) {
            if let Ok(key) = key {
                if !memo.contains_key(key) && missing.iter().all(|(k, _)| k != key) {
                    missing.push((*key, cfg));
                }
            }
        }
        stats.evals = missing.len();
        stats.memo_hits = cands.len() - stats.invalid - stats.evals;
        let miss_cfgs: Vec<&JobConfig> = missing.iter().map(|(_, cfg)| *cfg).collect();
        for ((key, _), res) in missing
            .iter()
            .zip(predict_batch(&plan, &miss_cfgs, opts.parallel))
        {
            memo.insert(*key, res);
        }
        let results = keys
            .into_iter()
            .map(|key| match key {
                Ok(key) => memo[&key].clone(),
                Err(e) => Err(e),
            })
            .collect();
        (results, stats)
    };

    let record_round = |reg: &obs::Registry, label: &str, stats: RoundStats, best_ms: f64| {
        if !reg.is_enabled() {
            return;
        }
        let span = reg.span("cbo.round");
        span.attr("round", label);
        span.attr("candidates", stats.candidates);
        span.attr("memo_hits", stats.memo_hits);
        span.attr("evals", stats.evals);
        span.attr("invalid", stats.invalid);
        span.attr("best_ms", best_ms);
        reg.incr("cbo.wif_calls", stats.candidates as u64);
        reg.incr("cbo.memo_hits", stats.memo_hits as u64);
        reg.incr("cbo.evals", stats.evals as u64);
        reg.incr("cbo.invalid_configs", stats.invalid as u64);
    };

    // Seed the incumbent with the job's own submitted configuration, so
    // the CBO never recommends something worse than "do nothing" (by its
    // own prediction).
    let submitted = JobConfig::submitted(spec);
    let mut best_cfg = submitted.clone();
    let (mut seed_results, seed_stats) =
        eval_round(std::slice::from_ref(&submitted), &mut wif_calls);
    let mut best_ms = seed_results.pop().expect("one result for one candidate")?;
    record_round(reg, "seed", seed_stats, best_ms);
    let mut best_x: Option<[f64; ConfigSpace::DIMS]> = None;

    let per_round = (opts.budget.saturating_sub(1) / (opts.rounds + 1)).max(1);

    // Round 0: uniform exploration, then `rounds` exploitation rounds in
    // a shrinking box around the incumbent. Candidate generation draws
    // from the RNG exactly as the pre-batched search did (evaluation
    // never consumed randomness), and the sequential reduction visits
    // candidates in generation order, so the incumbent trajectory — and
    // therefore the recommendation — is independent of `opts.parallel`.
    let mut radius = 0.5;
    for round in 0..=opts.rounds {
        let center = if round == 0 {
            None
        } else {
            radius *= opts.shrink;
            Some(match best_x {
                Some(x) => x,
                None => space.sample_uniform(&mut rng),
            })
        };
        let xs: Vec<[f64; ConfigSpace::DIMS]> = (0..per_round)
            .map(|_| match &center {
                None => space.sample_uniform(&mut rng),
                Some(c) => space.sample_near(&mut rng, c, radius),
            })
            .collect();
        let cfgs: Vec<JobConfig> = xs.iter().map(|x| space.decode(x)).collect();
        let (results, stats) = eval_round(&cfgs, &mut wif_calls);
        for ((x, cfg), res) in xs.into_iter().zip(cfgs).zip(results) {
            if let Ok(ms) = res {
                if ms < best_ms {
                    best_ms = ms;
                    best_cfg = cfg;
                    best_x = Some(x);
                }
            }
        }
        record_round(reg, &round.to_string(), stats, best_ms);
    }

    search_span.attr("wif_calls", wif_calls);
    search_span.attr("predicted_ms", best_ms);
    Ok(Recommendation {
        config: best_cfg,
        predicted_ms: best_ms,
        wif_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::simulate;
    use profiler::collect_full_profile;
    use whatif::{predict_runtime_ms, WhatIfQuery};

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn cbo_beats_default_for_cooccurrence() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 3).unwrap();
        let rec = optimize(
            &spec,
            &profile,
            ds.logical_bytes,
            &cl(),
            &CboOptions::default(),
        )
        .unwrap();
        let default_run = simulate(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 5)
            .unwrap()
            .runtime_ms;
        let tuned_run = simulate(&spec, &ds, &cl(), &rec.config, 5)
            .unwrap()
            .runtime_ms;
        let speedup = default_run / tuned_run;
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(rec.config.num_reduce_tasks > 1);
    }

    #[test]
    fn cbo_never_predicts_worse_than_submitted() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 3).unwrap();
        let rec = optimize(
            &spec,
            &profile,
            ds.logical_bytes,
            &cl(),
            &CboOptions::default(),
        )
        .unwrap();
        let submitted_pred = predict_runtime_ms(&WhatIfQuery {
            spec: &spec,
            profile: &profile,
            input_bytes: ds.logical_bytes,
            cluster: &cl(),
            config: &JobConfig::submitted(&spec),
        })
        .unwrap();
        assert!(rec.predicted_ms <= submitted_pred);
    }

    #[test]
    fn cbo_respects_budget_roughly() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::default(), 3).unwrap();
        let opts = CboOptions {
            budget: 40,
            ..CboOptions::default()
        };
        let rec = optimize(&spec, &profile, ds.logical_bytes, &cl(), &opts).unwrap();
        assert!(rec.wif_calls <= 45, "calls {}", rec.wif_calls);
    }

    #[test]
    fn cbo_is_deterministic_in_seed() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::default(), 3).unwrap();
        let opts = CboOptions {
            budget: 60,
            ..CboOptions::default()
        };
        let a = optimize(&spec, &profile, ds.logical_bytes, &cl(), &opts).unwrap();
        let b = optimize(&spec, &profile, ds.logical_bytes, &cl(), &opts).unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.predicted_ms.to_bits(), b.predicted_ms.to_bits());
        assert_eq!(a.wif_calls, b.wif_calls);
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        let ds = corpus::wikipedia_1g();
        for spec in [jobs::word_count(), jobs::word_cooccurrence_pairs(2)] {
            let (profile, _) =
                collect_full_profile(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 3).unwrap();
            let serial = optimize(
                &spec,
                &profile,
                ds.logical_bytes,
                &cl(),
                &CboOptions {
                    budget: 80,
                    parallel: false,
                    ..CboOptions::default()
                },
            )
            .unwrap();
            let parallel = optimize(
                &spec,
                &profile,
                ds.logical_bytes,
                &cl(),
                &CboOptions {
                    budget: 80,
                    parallel: true,
                    ..CboOptions::default()
                },
            )
            .unwrap();
            assert_eq!(serial.config, parallel.config);
            assert_eq!(
                serial.predicted_ms.to_bits(),
                parallel.predicted_ms.to_bits(),
                "serial {} vs parallel {}",
                serial.predicted_ms,
                parallel.predicted_ms
            );
            assert_eq!(serial.wif_calls, parallel.wif_calls);
        }
    }

    #[test]
    fn memo_key_separates_observable_fields() {
        let a = JobConfig::default();
        let b = JobConfig {
            num_reduce_tasks: 27,
            ..JobConfig::default()
        };
        // Reduce-side field: distinct keys for a reduce job, identical for
        // a map-only job.
        assert_ne!(config_key(&a, true, true), config_key(&b, true, true));
        assert_eq!(config_key(&a, true, false), config_key(&b, true, false));
        let c = JobConfig {
            use_combiner: false,
            ..JobConfig::default()
        };
        assert_ne!(config_key(&a, true, true), config_key(&c, true, true));
        assert_eq!(config_key(&a, false, true), config_key(&c, false, true));
        // Map-side fields always discriminate.
        let d = JobConfig {
            io_sort_mb: 200,
            ..JobConfig::default()
        };
        assert_ne!(config_key(&a, false, false), config_key(&d, false, false));
    }
}
