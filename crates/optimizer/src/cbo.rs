//! The cost-based optimizer (§2.3.1).
//!
//! Given an execution profile, the CBO searches the 14-parameter space and
//! asks the What-If engine for a predicted runtime at every candidate,
//! returning the best configuration found. The search is Starfish-style
//! *recursive random search*: uniform exploration rounds followed by
//! progressively narrower exploitation rounds around the incumbent.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mrjobs::JobSpec;
use mrsim::{ClusterSpec, JobConfig, SimError};
use profiler::JobProfile;
use whatif::{predict_runtime_ms, WhatIfQuery};

use crate::space::ConfigSpace;

/// CBO parameters.
#[derive(Debug, Clone)]
pub struct CboOptions {
    /// Total What-If invocations the search may spend.
    pub budget: usize,
    /// Exploitation rounds after the initial uniform round.
    pub rounds: usize,
    /// Box shrink factor per exploitation round.
    pub shrink: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CboOptions {
    fn default() -> Self {
        CboOptions {
            budget: 300,
            rounds: 3,
            shrink: 0.4,
            seed: 0xcb0,
        }
    }
}

/// The CBO's answer: the recommended configuration and its predicted
/// runtime.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub config: JobConfig,
    pub predicted_ms: f64,
    /// How many What-If calls the search spent.
    pub wif_calls: usize,
}

/// Search for the best configuration for `spec` on `input_bytes` of data,
/// trusting `profile`.
pub fn optimize(
    spec: &JobSpec,
    profile: &JobProfile,
    input_bytes: u64,
    cluster: &ClusterSpec,
    opts: &CboOptions,
) -> Result<Recommendation, SimError> {
    let space = ConfigSpace::for_cluster(cluster);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut wif_calls = 0usize;

    let eval = |config: &JobConfig, calls: &mut usize| -> Result<f64, SimError> {
        *calls += 1;
        predict_runtime_ms(&WhatIfQuery {
            spec,
            profile,
            input_bytes,
            cluster,
            config,
        })
    };

    // Seed the incumbent with the job's own submitted configuration, so
    // the CBO never recommends something worse than "do nothing" (by its
    // own prediction).
    let submitted = JobConfig::submitted(spec);
    let mut best_cfg = submitted.clone();
    let mut best_ms = eval(&submitted, &mut wif_calls)?;
    let mut best_x: Option<[f64; ConfigSpace::DIMS]> = None;

    let per_round = (opts.budget.saturating_sub(1) / (opts.rounds + 1)).max(1);

    // Round 0: uniform exploration.
    for _ in 0..per_round {
        let x = space.sample_uniform(&mut rng);
        let cfg = space.decode(&x);
        if let Ok(ms) = eval(&cfg, &mut wif_calls) {
            if ms < best_ms {
                best_ms = ms;
                best_cfg = cfg;
                best_x = Some(x);
            }
        }
    }

    // Exploitation rounds around the incumbent.
    let mut radius = 0.5;
    for _ in 0..opts.rounds {
        radius *= opts.shrink;
        let center = match best_x {
            Some(x) => x,
            None => space.sample_uniform(&mut rng),
        };
        for _ in 0..per_round {
            let x = space.sample_near(&mut rng, &center, radius);
            let cfg = space.decode(&x);
            if let Ok(ms) = eval(&cfg, &mut wif_calls) {
                if ms < best_ms {
                    best_ms = ms;
                    best_cfg = cfg;
                    best_x = Some(x);
                }
            }
        }
    }

    Ok(Recommendation {
        config: best_cfg,
        predicted_ms: best_ms,
        wif_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::simulate;
    use profiler::collect_full_profile;

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn cbo_beats_default_for_cooccurrence() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 3).unwrap();
        let rec = optimize(&spec, &profile, ds.logical_bytes, &cl(), &CboOptions::default())
            .unwrap();
        let default_run = simulate(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 5)
            .unwrap()
            .runtime_ms;
        let tuned_run = simulate(&spec, &ds, &cl(), &rec.config, 5).unwrap().runtime_ms;
        let speedup = default_run / tuned_run;
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(rec.config.num_reduce_tasks > 1);
    }

    #[test]
    fn cbo_never_predicts_worse_than_submitted() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::submitted(&spec), 3).unwrap();
        let rec = optimize(&spec, &profile, ds.logical_bytes, &cl(), &CboOptions::default())
            .unwrap();
        let submitted_pred = predict_runtime_ms(&WhatIfQuery {
            spec: &spec,
            profile: &profile,
            input_bytes: ds.logical_bytes,
            cluster: &cl(),
            config: &JobConfig::submitted(&spec),
        })
        .unwrap();
        assert!(rec.predicted_ms <= submitted_pred);
    }

    #[test]
    fn cbo_respects_budget_roughly() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::default(), 3).unwrap();
        let opts = CboOptions {
            budget: 40,
            ..CboOptions::default()
        };
        let rec = optimize(&spec, &profile, ds.logical_bytes, &cl(), &opts).unwrap();
        assert!(rec.wif_calls <= 45, "calls {}", rec.wif_calls);
    }

    #[test]
    fn cbo_is_deterministic_in_seed() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &cl(), &JobConfig::default(), 3).unwrap();
        let opts = CboOptions {
            budget: 60,
            ..CboOptions::default()
        };
        let a = optimize(&spec, &profile, ds.logical_bytes, &cl(), &opts).unwrap();
        let b = optimize(&spec, &profile, ds.logical_bytes, &cl(), &opts).unwrap();
        assert_eq!(a.config, b.config);
    }
}
