//! # optimizer — cost-based and rule-based tuning
//!
//! * [`cbo`] — the Starfish-style cost-based optimizer: recursive random
//!   search over the 14-parameter space ([`space::ConfigSpace`]), scoring
//!   candidates with the What-If engine.
//! * [`rbo`] — the Appendix-B rule-based optimizer baseline: static
//!   heuristics with no execution feedback.

pub mod cbo;
pub mod rbo;
pub mod space;

pub use cbo::{optimize, optimize_traced, CboOptions, Recommendation};
pub use rbo::{recommend, FiredRule, RboRecommendation};
pub use space::ConfigSpace;
