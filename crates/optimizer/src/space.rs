//! The configuration search space of the cost-based optimizer.

use mrsim::{ClusterSpec, JobConfig};
use rand::Rng;

/// Bounds of the CBO's search over the Table 2.1 parameters. Continuous
/// parameters are searched in a normalized `[0,1]` box; booleans are
/// Bernoulli coordinates.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    pub io_sort_mb: (u64, u64),
    pub io_sort_record_percent: (f64, f64),
    pub io_sort_spill_percent: (f64, f64),
    pub io_sort_factor: (u32, u32),
    pub min_num_spills_for_combine: (u32, u32),
    pub reduce_slowstart: (f64, f64),
    pub num_reduce_tasks: (u32, u32),
    pub shuffle_input_buffer_percent: (f64, f64),
    pub shuffle_merge_percent: (f64, f64),
    pub inmem_merge_threshold: (u32, u32),
    pub reduce_input_buffer_percent: (f64, f64),
}

impl ConfigSpace {
    /// The space Starfish's CBO effectively searches on a given cluster:
    /// `io.sort.mb` bounded by the child heap, reducer count bounded by a
    /// few waves of the cluster's reduce slots.
    pub fn for_cluster(cluster: &ClusterSpec) -> Self {
        let max_sort_mb = (cluster.child_heap_mb * 2 / 3).max(32);
        let max_reducers = cluster.reduce_slots() * 4;
        ConfigSpace {
            io_sort_mb: (32, max_sort_mb),
            io_sort_record_percent: (0.01, 0.45),
            io_sort_spill_percent: (0.4, 0.95),
            io_sort_factor: (5, 100),
            min_num_spills_for_combine: (1, 10),
            reduce_slowstart: (0.0, 1.0),
            num_reduce_tasks: (1, max_reducers.max(1)),
            shuffle_input_buffer_percent: (0.1, 0.9),
            shuffle_merge_percent: (0.2, 0.9),
            inmem_merge_threshold: (10, 1000),
            reduce_input_buffer_percent: (0.0, 0.8),
        }
    }

    /// Number of coordinates in the normalized representation.
    pub const DIMS: usize = 14;

    /// Decode a normalized point in `[0,1]^14` into a configuration.
    pub fn decode(&self, x: &[f64; Self::DIMS]) -> JobConfig {
        JobConfig {
            io_sort_mb: lerp_u64(self.io_sort_mb, x[0]),
            io_sort_record_percent: lerp(self.io_sort_record_percent, x[1]),
            io_sort_spill_percent: lerp(self.io_sort_spill_percent, x[2]),
            io_sort_factor: lerp_u32(self.io_sort_factor, x[3]),
            use_combiner: x[4] >= 0.5,
            min_num_spills_for_combine: lerp_u32(self.min_num_spills_for_combine, x[5]),
            compress_map_output: x[6] >= 0.5,
            reduce_slowstart: lerp(self.reduce_slowstart, x[7]),
            num_reduce_tasks: lerp_u32(self.num_reduce_tasks, x[8]),
            shuffle_input_buffer_percent: lerp(self.shuffle_input_buffer_percent, x[9]),
            shuffle_merge_percent: lerp(self.shuffle_merge_percent, x[10]),
            inmem_merge_threshold: lerp_u32(self.inmem_merge_threshold, x[11]),
            reduce_input_buffer_percent: lerp(self.reduce_input_buffer_percent, x[12]),
            compress_output: x[13] >= 0.5,
            // Attempt caps are reliability knobs, not performance knobs:
            // the what-if engine prices fault-free executions, so the CBO
            // leaves them at the Hadoop defaults rather than searching them.
            ..JobConfig::default()
        }
    }

    /// Sample a uniform point in the normalized box.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> [f64; Self::DIMS] {
        let mut x = [0.0; Self::DIMS];
        for v in &mut x {
            *v = rng.gen();
        }
        x
    }

    /// Sample around a center with the given radius (clamped to the box).
    pub fn sample_near<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        center: &[f64; Self::DIMS],
        radius: f64,
    ) -> [f64; Self::DIMS] {
        let mut x = [0.0; Self::DIMS];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (center[i] + rng.gen_range(-radius..=radius)).clamp(0.0, 1.0);
        }
        x
    }
}

fn lerp(range: (f64, f64), t: f64) -> f64 {
    range.0 + (range.1 - range.0) * t.clamp(0.0, 1.0)
}
fn lerp_u64(range: (u64, u64), t: f64) -> u64 {
    (range.0 as f64 + (range.1 - range.0) as f64 * t.clamp(0.0, 1.0)).round() as u64
}
fn lerp_u32(range: (u32, u32), t: f64) -> u32 {
    (range.0 as f64 + (range.1 - range.0) as f64 * t.clamp(0.0, 1.0)).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decoded_points_are_always_valid() {
        let space = ConfigSpace::for_cluster(&ClusterSpec::ec2_c1_medium_16());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = space.sample_uniform(&mut rng);
            let cfg = space.decode(&x);
            cfg.validate().expect("decoded config must validate");
        }
    }

    #[test]
    fn io_sort_mb_respects_heap() {
        let cluster = ClusterSpec::ec2_c1_medium_16();
        let space = ConfigSpace::for_cluster(&cluster);
        assert!(space.io_sort_mb.1 <= cluster.child_heap_mb);
        let cfg = space.decode(&[1.0; ConfigSpace::DIMS]);
        assert_eq!(cfg.io_sort_mb, space.io_sort_mb.1);
    }

    #[test]
    fn sample_near_stays_in_box() {
        let space = ConfigSpace::for_cluster(&ClusterSpec::ec2_c1_medium_16());
        let mut rng = StdRng::seed_from_u64(2);
        let center = [0.05; ConfigSpace::DIMS];
        for _ in 0..100 {
            let x = space.sample_near(&mut rng, &center, 0.3);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn extremes_decode_to_bounds() {
        let space = ConfigSpace::for_cluster(&ClusterSpec::ec2_c1_medium_16());
        let lo = space.decode(&[0.0; ConfigSpace::DIMS]);
        assert_eq!(lo.num_reduce_tasks, 1);
        assert!(!lo.use_combiner);
        let hi = space.decode(&[1.0; ConfigSpace::DIMS]);
        assert_eq!(hi.num_reduce_tasks, 120);
        assert!(hi.compress_output);
    }
}
