//! Regions: horizontal partitions of a table's row space.
//!
//! Rows live in regions sorted by row key; a region splits at its median
//! key when it outgrows the split threshold, which is how HBase scales
//! "in rows by horizontal partitioning" (§5 of the paper). Each region is
//! independently lockable, so scans of disjoint regions proceed in
//! parallel.
//!
//! Since PR 6 a region is in one of two states (DESIGN.md §12):
//!
//! * **Materialized** — all rows live in the in-memory memstore, exactly
//!   the pre-PR-6 behaviour. Every mutable region is in this state.
//! * **Segment-backed (lazy)** — the region was recovered from a flushed
//!   segment and has not been written since. Reads go block-at-a-time
//!   through the shared [`BlockCache`]; nothing is materialized beyond
//!   the blocks a read actually touches. The *first mutation* promotes
//!   the region to materialized (reading every block once, through the
//!   cache), so the memstore invariants — and the WAL-covers-memstore
//!   durability contract — are untouched for anything that can change.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::blockcache::BlockCache;
use crate::filter::Filter;
use crate::kv::{CellVersion, Put, RowResult};
use crate::segment::SegmentReader;
use crate::store::StoreError;

/// Maximum cell versions retained per column, like HBase's default.
pub(crate) const MAX_VERSIONS: usize = 3;

/// Key of one stored row inside a region: family → column → versions
/// (newest first). Public because segment files and recovery move rows
/// in and out of regions in this shape.
pub type RowData = BTreeMap<String, BTreeMap<Bytes, Vec<CellVersion>>>;

/// A half-open row-key range `[start, end)`; `None` end means unbounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    pub start: Bytes,
    pub end: Option<Bytes>,
}

impl KeyRange {
    pub fn all() -> Self {
        KeyRange {
            start: Bytes::new(),
            end: None,
        }
    }

    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.start.as_ref()
            && match &self.end {
                Some(end) => key < end.as_ref(),
                None => true,
            }
    }
}

/// A lazily read segment backing a clean recovered region.
struct SegmentBase {
    reader: Arc<SegmentReader>,
    cache: Arc<BlockCache>,
}

/// A region: a contiguous, sorted slice of a table's rows.
///
/// Lock order (matching the store's durable → catalog → region order):
/// `base` before `rows` before `range`. No path acquires them the other
/// way around.
pub struct Region {
    pub id: u64,
    range: RwLock<KeyRange>,
    /// The memstore. Empty while `base` is `Some` (lazy state): a region
    /// never splits its rows between memory and segment.
    rows: RwLock<BTreeMap<Bytes, RowData>>,
    /// `Some` while segment-backed; dropped on promotion.
    base: RwLock<Option<SegmentBase>>,
    /// Mutated since the segment named by `flushed_as` captured it. The
    /// flush compaction policy rewrites only dirty regions.
    dirty: AtomicBool,
    /// Segment file whose contents equal this region's current rows
    /// (when clean) — the file a compacting flush reuses by reference.
    flushed_as: Mutex<Option<String>>,
}

/// Scan bookkeeping (cells touched, rows matched), the §5.2/5.3
/// experiments' currency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    pub regions_visited: u64,
    pub rows_scanned: u64,
    pub cells_scanned: u64,
    pub rows_returned: u64,
    pub bytes_returned: u64,
}

impl ScanMetrics {
    pub fn merge(&mut self, other: ScanMetrics) {
        self.regions_visited += other.regions_visited;
        self.rows_scanned += other.rows_scanned;
        self.cells_scanned += other.cells_scanned;
        self.rows_returned += other.rows_returned;
        self.bytes_returned += other.bytes_returned;
    }
}

impl Region {
    pub fn new(id: u64, range: KeyRange) -> Self {
        Region {
            id,
            range: RwLock::new(range),
            rows: RwLock::new(BTreeMap::new()),
            base: RwLock::new(None),
            dirty: AtomicBool::new(true),
            flushed_as: Mutex::new(None),
        }
    }

    /// Rebuild a clean region lazily from its flushed segment: no rows
    /// are materialized until a read touches their block or a write
    /// promotes the whole region.
    pub fn from_segment(
        id: u64,
        range: KeyRange,
        reader: Arc<SegmentReader>,
        cache: Arc<BlockCache>,
    ) -> Self {
        let file = reader.file_name().to_string();
        Region {
            id,
            range: RwLock::new(range),
            rows: RwLock::new(BTreeMap::new()),
            base: RwLock::new(Some(SegmentBase { reader, cache })),
            dirty: AtomicBool::new(false),
            flushed_as: Mutex::new(Some(file)),
        }
    }

    /// Whether this region is still segment-backed (no read-triggered
    /// materialization, no mutation since recovery).
    pub fn is_lazy(&self) -> bool {
        self.base.read().is_some()
    }

    /// Whether this region mutated since its `flushed_as` segment was
    /// written (a compacting flush must rewrite it).
    pub(crate) fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    /// The segment file whose contents equal this region's rows, if any.
    pub(crate) fn flushed_file(&self) -> Option<String> {
        self.flushed_as.lock().clone()
    }

    /// Record that `file` now captures this region's exact contents
    /// (called after the manifest swap, so a crash mid-flush leaves the
    /// region dirty and the next flush retries).
    pub(crate) fn mark_flushed(&self, file: String) {
        *self.flushed_as.lock() = Some(file);
        self.dirty.store(false, Ordering::Release);
    }

    /// Promote a segment-backed region to materialized: read every block
    /// once (through the cache) into the memstore and drop the base.
    /// Idempotent; a no-op for materialized regions.
    fn ensure_materialized(&self) -> Result<(), StoreError> {
        let mut base = self.base.write();
        let Some(b) = base.as_ref() else {
            return Ok(());
        };
        let mut rows = self.rows.write();
        debug_assert!(rows.is_empty(), "lazy regions have empty memstores");
        for idx in 0..b.reader.block_count() {
            let block = b.cache.get_or_load(&b.reader, idx)?;
            for (key, data) in block.iter() {
                rows.insert(key.clone(), data.clone());
            }
        }
        *base = None;
        Ok(())
    }

    /// Force promotion ahead of a write. The sharded batch path calls
    /// this *before* appending the batch to any WAL, so a segment-CRC
    /// failure surfaces (and can be healed from a replica) while the
    /// batch can still be cleanly rejected — once the frame is logged on
    /// one shard, the in-memory apply must not be able to fail.
    pub(crate) fn prepare_for_write(&self) -> Result<(), StoreError> {
        self.ensure_materialized()
    }

    /// This region's current row-key range.
    pub fn range(&self) -> KeyRange {
        self.range.read().clone()
    }

    /// Whether a row key belongs to this region.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.range.read().contains(key)
    }

    /// Write a cell. Returns `Ok(false)` when the row no longer belongs
    /// to this region (a concurrent split moved the key range) — the
    /// caller must re-resolve the region and retry. The range check
    /// happens under the rows write lock, which `split` also holds while
    /// shrinking the range, so the answer cannot go stale. A write to a
    /// segment-backed region promotes it first (which can surface a
    /// typed corruption error from the segment).
    pub fn put(&self, put: Put, timestamp: u64) -> Result<bool, StoreError> {
        self.ensure_materialized()?;
        let mut rows = self.rows.write();
        if !self.range.read().contains(&put.row) {
            return Ok(false);
        }
        self.dirty.store(true, Ordering::Release);
        let versions = rows
            .entry(put.row)
            .or_default()
            .entry(put.family)
            .or_default()
            .entry(put.column)
            .or_default();
        // Keep versions sorted by timestamp descending regardless of
        // arrival order, so a WAL replay (which re-applies writes in log
        // order) lands bit-identical to the live write path. In the
        // common monotonic case the insert position is 0, exactly the
        // old behaviour.
        let pos = versions
            .iter()
            .position(|v| v.timestamp <= timestamp)
            .unwrap_or(versions.len());
        versions.insert(pos, CellVersion::new(timestamp, put.value));
        versions.truncate(MAX_VERSIONS);
        Ok(true)
    }

    /// Read one row (latest versions only), verifying cell checksums.
    /// On a segment-backed region this reads exactly one block through
    /// the cache; it never materializes the region.
    pub fn get(&self, row: &[u8]) -> Result<Option<RowResult>, StoreError> {
        {
            let base = self.base.read();
            if let Some(b) = base.as_ref() {
                let Some(idx) = b.reader.block_for(row) else {
                    return Ok(None);
                };
                let block = b.cache.get_or_load(&b.reader, idx)?;
                return block
                    .get(row)
                    .map(|data| materialize(row, data))
                    .transpose();
            }
        }
        let rows = self.rows.read();
        rows.get(row).map(|data| materialize(row, data)).transpose()
    }

    /// Delete one row entirely. Returns `None` when the row key no longer
    /// belongs to this region (concurrent split — retry), otherwise
    /// whether the row existed.
    pub fn delete_row(&self, row: &[u8]) -> Result<Option<bool>, StoreError> {
        self.ensure_materialized()?;
        let mut rows = self.rows.write();
        if !self.range.read().contains(row) {
            return Ok(None);
        }
        let existed = rows.remove(row).is_some();
        if existed {
            self.dirty.store(true, Ordering::Release);
        }
        Ok(Some(existed))
    }

    /// Scan rows in `[start, end)` ∩ this region, applying a server-side
    /// filter and verifying cell checksums. Returns matching rows and the
    /// scan metrics, or the first corruption encountered. On a
    /// segment-backed region only the blocks overlapping the range are
    /// read (through the cache); the row-level visit order, filtering,
    /// and metrics are bit-identical to the materialized path.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        filter: Option<&dyn Filter>,
    ) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        let lower = Bound::Included(Bytes::copy_from_slice(start));
        let upper = match end {
            Some(e) => Bound::Excluded(Bytes::copy_from_slice(e)),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        let mut metrics = ScanMetrics {
            regions_visited: 1,
            ..ScanMetrics::default()
        };
        {
            let base = self.base.read();
            if let Some(b) = base.as_ref() {
                for idx in b.reader.blocks_overlapping(start, end) {
                    let block = b.cache.get_or_load(&b.reader, idx)?;
                    for (key, data) in block.range::<Bytes, _>((lower.clone(), upper.clone())) {
                        visit_row(key, data, filter, &mut out, &mut metrics)?;
                    }
                }
                return Ok((out, metrics));
            }
        }
        let rows = self.rows.read();
        for (key, data) in rows.range::<Bytes, _>((lower, upper)) {
            visit_row(key, data, filter, &mut out, &mut metrics)?;
        }
        Ok((out, metrics))
    }

    /// Test/chaos hook: flip one byte of the latest stored version of a
    /// cell *without* refreshing its checksum, simulating at-rest bit rot.
    /// Returns whether a cell was actually hit. Corrupting is a mutation,
    /// so a segment-backed region is promoted first (an unreadable
    /// segment means there is nothing in memory to corrupt: `false`).
    pub fn corrupt_cell(&self, row: &[u8], family: &str, column: &[u8]) -> bool {
        if self.ensure_materialized().is_err() {
            return false;
        }
        let mut rows = self.rows.write();
        let Some(versions) = rows
            .get_mut(row)
            .and_then(|fams| fams.get_mut(family))
            .and_then(|cols| cols.get_mut(column))
        else {
            return false;
        };
        let Some(latest) = versions.first_mut() else {
            return false;
        };
        let mut v = latest.value.to_vec();
        if v.is_empty() {
            v.push(0xde);
        } else {
            v[0] ^= 0xff;
        }
        latest.value = Bytes::from(v);
        self.dirty.store(true, Ordering::Release);
        true
    }

    /// Number of rows stored. For a segment-backed region this is the
    /// segment trailer's exact row count — the region is clean, so the
    /// segment *is* its contents and no block needs reading.
    pub fn row_count(&self) -> usize {
        if let Some(b) = self.base.read().as_ref() {
            return b.reader.meta().row_count as usize;
        }
        self.rows.read().len()
    }

    /// The median row key — the point `split` would cut at. Returns
    /// `None` when the region has fewer than 2 rows. Exposed separately
    /// so the durable store can write-ahead-log the split point *before*
    /// applying it (log-then-apply, like every other mutation).
    ///
    /// A segment-backed region reports `None`: splits only ever follow
    /// threshold-crossing puts, and a put promotes the region first, so a
    /// lazy region can never be split-eligible.
    pub fn median_key(&self) -> Option<Bytes> {
        if self.base.read().is_some() {
            return None;
        }
        let rows = self.rows.read();
        if rows.len() < 2 {
            return None;
        }
        rows.keys().nth(rows.len() / 2).cloned()
    }

    /// Split this region at its median row key, returning the new upper
    /// region. Returns `None` when the region has fewer than 2 rows.
    pub fn split(&self, new_id: u64) -> Option<Region> {
        let median = self.median_key()?;
        self.split_at(&median, new_id)
    }

    /// Split this region at an explicit key (used both by `split` and by
    /// WAL replay, which must reproduce the logged split point exactly).
    /// Returns `None` if the key is empty or outside this region's range,
    /// or if a segment-backed region cannot be promoted (unreadable
    /// segment — the subsequent read will surface the typed error).
    pub fn split_at(&self, key: &Bytes, new_id: u64) -> Option<Region> {
        if self.ensure_materialized().is_err() {
            return None;
        }
        let mut rows = self.rows.write();
        let mut my_range = self.range.write();
        if !my_range.contains(key) || key.is_empty() {
            return None;
        }
        let upper_rows = rows.split_off(key);
        let upper = Region {
            id: new_id,
            range: RwLock::new(KeyRange {
                start: key.clone(),
                end: my_range.end.clone(),
            }),
            rows: RwLock::new(upper_rows),
            base: RwLock::new(None),
            dirty: AtomicBool::new(true),
            flushed_as: Mutex::new(None),
        };
        // Shrink this region's range to end at the split point. Both
        // halves diverge from any flushed segment.
        my_range.end = Some(key.clone());
        self.dirty.store(true, Ordering::Release);
        Some(upper)
    }

    /// Rebuild a materialized region from recovered parts (segment load +
    /// WAL replay touched it, so it is dirty relative to any segment).
    pub fn from_parts(id: u64, range: KeyRange, rows: BTreeMap<Bytes, RowData>) -> Self {
        Region {
            id,
            range: RwLock::new(range),
            rows: RwLock::new(rows),
            base: RwLock::new(None),
            dirty: AtomicBool::new(true),
            flushed_as: Mutex::new(None),
        }
    }

    /// Snapshot this region's rows for a segment flush, promoting a
    /// segment-backed region first.
    pub fn export_rows(&self) -> Result<BTreeMap<Bytes, RowData>, StoreError> {
        self.ensure_materialized()?;
        Ok(self.rows.read().clone())
    }

    /// Replace this region's contents wholesale with rows copied from a
    /// healthy replica, *without reading the current base* — the whole
    /// point of a heal is that the backing segment failed its CRC, so
    /// promotion is off the table. Any cached blocks of the dropped
    /// segment are evicted (the reader id will never be reused, but the
    /// bytes would pin cache budget forever). The region comes out
    /// materialized and dirty; the caller flushes to make the repair
    /// durable and delete the corrupt file.
    pub(crate) fn install_rows(&self, new_rows: BTreeMap<Bytes, RowData>) {
        let mut base = self.base.write();
        if let Some(b) = base.as_ref() {
            b.cache.evict_reader(b.reader.id());
        }
        let mut rows = self.rows.write();
        *rows = new_rows;
        *base = None;
        self.dirty.store(true, Ordering::Release);
        *self.flushed_as.lock() = None;
    }
}

/// The shared per-row scan body: materialize (verifying checksums),
/// filter, account. Factored out so the segment-backed and materialized
/// scan paths are bit-identical by construction.
fn visit_row(
    key: &Bytes,
    data: &RowData,
    filter: Option<&dyn Filter>,
    out: &mut Vec<RowResult>,
    metrics: &mut ScanMetrics,
) -> Result<(), StoreError> {
    metrics.rows_scanned += 1;
    let result = materialize(key, data)?;
    metrics.cells_scanned += result.cell_count() as u64;
    let passes = filter.map(|f| f.matches(&result)).unwrap_or(true);
    if passes {
        metrics.rows_returned += 1;
        metrics.bytes_returned += result
            .families
            .values()
            .flat_map(|cols| cols.values())
            .map(|c| c.value.len() as u64)
            .sum::<u64>();
        out.push(result);
    }
    Ok(())
}

fn materialize(row: &[u8], data: &RowData) -> Result<RowResult, StoreError> {
    let mut result = RowResult::new(Bytes::copy_from_slice(row));
    for (family, cols) in data {
        let out_cols = result.families.entry(family.clone()).or_default();
        for (col, versions) in cols {
            if let Some(latest) = versions.first() {
                if !latest.verify() {
                    return Err(StoreError::Corruption {
                        row: String::from_utf8_lossy(row).into_owned(),
                        column: String::from_utf8_lossy(col).into_owned(),
                    });
                }
                out_cols.insert(col.clone(), latest.clone());
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(region: &Region, row: &str, col: &str, val: &str, ts: u64) {
        assert!(region
            .put(
                Put::new(
                    Bytes::copy_from_slice(row.as_bytes()),
                    "cf",
                    Bytes::copy_from_slice(col.as_bytes()),
                    Bytes::copy_from_slice(val.as_bytes()),
                ),
                ts,
            )
            .unwrap());
    }

    #[test]
    fn put_get_roundtrip() {
        let r = Region::new(1, KeyRange::all());
        put(&r, "row1", "c", "v1", 1);
        let got = r.get(b"row1").unwrap().unwrap();
        assert_eq!(got.value("cf", b"c").unwrap().as_ref(), b"v1");
        assert!(r.get(b"missing").unwrap().is_none());
    }

    #[test]
    fn newer_version_wins() {
        let r = Region::new(1, KeyRange::all());
        put(&r, "row1", "c", "old", 1);
        put(&r, "row1", "c", "new", 2);
        assert_eq!(
            r.get(b"row1")
                .unwrap()
                .unwrap()
                .value("cf", b"c")
                .unwrap()
                .as_ref(),
            b"new"
        );
    }

    #[test]
    fn versions_are_capped() {
        let r = Region::new(1, KeyRange::all());
        for i in 0..10 {
            put(&r, "row1", "c", &format!("v{i}"), i);
        }
        // Still readable; internal cap honoured (latest visible).
        assert_eq!(
            r.get(b"row1")
                .unwrap()
                .unwrap()
                .value("cf", b"c")
                .unwrap()
                .as_ref(),
            b"v9"
        );
    }

    #[test]
    fn scan_respects_range_and_counts() {
        let r = Region::new(1, KeyRange::all());
        for k in ["a", "b", "c", "d"] {
            put(&r, k, "c", "v", 1);
        }
        let (rows, metrics) = r.scan(b"b", Some(b"d"), None).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(metrics.rows_scanned, 2);
        assert_eq!(metrics.rows_returned, 2);
        assert_eq!(metrics.regions_visited, 1);
    }

    #[test]
    fn scan_filter_drops_rows_server_side() {
        use crate::filter::RowPrefixFilter;
        let r = Region::new(1, KeyRange::all());
        put(&r, "Static/j1", "c", "v", 1);
        put(&r, "Dynamic/j1", "c", "v", 1);
        let f = RowPrefixFilter {
            prefix: Bytes::from("Static/"),
        };
        let (rows, metrics) = r.scan(b"", None, Some(&f)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(metrics.rows_scanned, 2);
        assert_eq!(metrics.rows_returned, 1);
    }

    #[test]
    fn split_partitions_rows() {
        let r = Region::new(1, KeyRange::all());
        for k in ["a", "b", "c", "d", "e", "f"] {
            put(&r, k, "c", "v", 1);
        }
        let upper = r.split(2).unwrap();
        assert_eq!(r.row_count() + upper.row_count(), 6);
        assert!(upper.row_count() >= 3);
        assert_eq!(upper.range().start, Bytes::from("d"));
        assert_eq!(r.range().end, Some(Bytes::from("d")));
        assert!(r.contains_key(b"a"));
        assert!(!r.contains_key(b"d"));
    }

    #[test]
    fn tiny_region_refuses_split() {
        let r = Region::new(1, KeyRange::all());
        put(&r, "only", "c", "v", 1);
        assert!(r.split(2).is_none());
    }

    #[test]
    fn corrupted_cell_fails_get_and_scan() {
        let r = Region::new(1, KeyRange::all());
        put(&r, "row1", "c", "payload", 1);
        put(&r, "row2", "c", "clean", 1);
        assert!(r.corrupt_cell(b"row1", "cf", b"c"));

        match r.get(b"row1") {
            Err(StoreError::Corruption { row, column }) => {
                assert_eq!(row, "row1");
                assert_eq!(column, "c");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        // The clean row is still readable.
        assert!(r.get(b"row2").unwrap().is_some());
        // A scan crossing the corrupt row reports it too.
        assert!(matches!(
            r.scan(b"", None, None),
            Err(StoreError::Corruption { .. })
        ));
    }

    #[test]
    fn corrupting_a_missing_cell_is_a_noop() {
        let r = Region::new(1, KeyRange::all());
        put(&r, "row1", "c", "v", 1);
        assert!(!r.corrupt_cell(b"nope", "cf", b"c"));
        assert!(!r.corrupt_cell(b"row1", "cf", b"other"));
        assert!(r.get(b"row1").unwrap().is_some());
    }

    #[test]
    fn delete_row_removes() {
        let r = Region::new(1, KeyRange::all());
        put(&r, "x", "c", "v", 1);
        assert_eq!(r.delete_row(b"x").unwrap(), Some(true));
        assert_eq!(r.delete_row(b"x").unwrap(), Some(false));
        assert!(r.get(b"x").unwrap().is_none());
    }
}
