//! Immutable sorted segment files — the on-disk form of a flushed region.
//!
//! A flush writes each region's memstore to one segment, HBase-HFile
//! style: a magic header, a sequence of *blocks* (each holding up to
//! [`BLOCK_ROWS`] rows, length+CRC framed exactly like WAL frames), and a
//! *trailer* carrying the region metadata (table, id, key range), a block
//! index of `(first_key, offset, len)` entries, and the row count. The
//! trailer is itself CRC-framed and located by a fixed-size footer
//! (`trailer_offset · tail magic`) at the end of the file, so a reader
//! can validate a segment back-to-front without trusting anything
//! unchecked.
//!
//! Segments are only ever referenced from a committed MANIFEST, which is
//! swapped in atomically (write-temp-then-rename) *after* every segment
//! of the flush generation is fully on disk. A crash mid-flush therefore
//! leaves orphan partial files that no manifest points at; recovery
//! ignores them and `store_fsck` reports them.
//!
//! Unlike a torn WAL tail (an expected crash artifact, silently
//! truncated), a checksum failure inside a manifest-referenced segment
//! means a *committed* file rotted at rest — that surfaces as a typed
//! [`SegmentError`], never as silent data loss.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::encoding::crc32;
use crate::kv::CellVersion;
use crate::region::{KeyRange, RowData};

/// Rows per block. Small enough that a checksum failure localizes to a
/// handful of rows, large enough to amortize the frame overhead.
pub const BLOCK_ROWS: usize = 32;

const MAGIC_HEAD: u32 = 0x5347_3144; // "SG1D"
const MAGIC_TAIL: u32 = 0x5347_5452; // "SGTR"

/// Errors reading a segment file.
#[derive(Debug)]
pub enum SegmentError {
    Io(std::io::Error),
    /// Structural damage: bad magic, truncated footer, checksum
    /// mismatch, or undecodable content.
    Corrupt {
        file: String,
        detail: String,
    },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment I/O error: {e}"),
            SegmentError::Corrupt { file, detail } => {
                write!(f, "segment `{file}` is corrupt: {detail}")
            }
        }
    }
}
impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io(e) => Some(e),
            SegmentError::Corrupt { .. } => None,
        }
    }
}
impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        SegmentError::Io(e)
    }
}

/// Region metadata carried in a segment trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    pub table: String,
    pub region_id: u64,
    pub range: KeyRange,
    pub row_count: u64,
    /// Block index: first row key, byte offset of the block's length
    /// prefix, and framed length (header + body).
    pub blocks: Vec<(Bytes, u64, u32)>,
}

/// A fully loaded and checksum-verified segment.
#[derive(Debug)]
pub struct LoadedSegment {
    pub meta: SegmentMeta,
    pub rows: BTreeMap<Bytes, RowData>,
}

/// Serialize one region's rows into segment bytes. Separated from the
/// file write so the flush path can tear the byte stream at an injected
/// crash point.
pub fn encode_segment(
    table: &str,
    region_id: u64,
    range: &KeyRange,
    rows: &BTreeMap<Bytes, RowData>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_HEAD.to_be_bytes());
    let mut blocks: Vec<(Bytes, u64, u32)> = Vec::new();
    let entries: Vec<(&Bytes, &RowData)> = rows.iter().collect();
    for chunk in entries.chunks(BLOCK_ROWS) {
        let mut body = BytesMut::new();
        body.put_u32(chunk.len() as u32);
        for (key, data) in chunk {
            encode_row(&mut body, key, data);
        }
        let offset = out.len() as u64;
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&crc32(&body).to_be_bytes());
        out.extend_from_slice(&body);
        blocks.push((chunk[0].0.clone(), offset, (8 + body.len()) as u32));
    }

    // Trailer: region metadata + block index, CRC-framed.
    let mut trailer = BytesMut::new();
    put_bytes(&mut trailer, table.as_bytes());
    trailer.put_u64(region_id);
    put_bytes(&mut trailer, &range.start);
    match &range.end {
        Some(end) => {
            trailer.put_u8(1);
            put_bytes(&mut trailer, end);
        }
        None => trailer.put_u8(0),
    }
    trailer.put_u64(rows.len() as u64);
    trailer.put_u32(blocks.len() as u32);
    for (first_key, offset, len) in &blocks {
        put_bytes(&mut trailer, first_key);
        trailer.put_u64(*offset);
        trailer.put_u32(*len);
    }
    let trailer_offset = out.len() as u64;
    out.extend_from_slice(&(trailer.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&trailer).to_be_bytes());
    out.extend_from_slice(&trailer);
    // Fixed footer: where the trailer starts, and the tail magic.
    out.extend_from_slice(&trailer_offset.to_be_bytes());
    out.extend_from_slice(&MAGIC_TAIL.to_be_bytes());
    out
}

/// Write a segment file (complete, no crash injection — the flush path
/// handles tearing itself).
pub fn write_segment(
    path: &Path,
    table: &str,
    region_id: u64,
    range: &KeyRange,
    rows: &BTreeMap<Bytes, RowData>,
) -> Result<(), SegmentError> {
    let bytes = encode_segment(table, region_id, range, rows);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Load and fully verify a segment: footer magic, trailer checksum, then
/// every block checksum, then row decoding.
pub fn read_segment(path: &Path) -> Result<LoadedSegment, SegmentError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let data = std::fs::read(path)?;
    let corrupt = |detail: String| SegmentError::Corrupt {
        file: name.clone(),
        detail,
    };
    if data.len() < 4 + 12 {
        return Err(corrupt(format!("file too short ({} bytes)", data.len())));
    }
    if u32::from_be_bytes(data[0..4].try_into().unwrap()) != MAGIC_HEAD {
        return Err(corrupt("bad header magic".to_string()));
    }
    let tail = &data[data.len() - 12..];
    let trailer_offset = u64::from_be_bytes(tail[0..8].try_into().unwrap()) as usize;
    if u32::from_be_bytes(tail[8..12].try_into().unwrap()) != MAGIC_TAIL {
        return Err(corrupt(
            "bad tail magic (torn or overwritten file)".to_string(),
        ));
    }
    if trailer_offset + 8 > data.len() - 12 {
        return Err(corrupt(format!(
            "trailer offset {trailer_offset} out of range"
        )));
    }
    let t = &data[trailer_offset..data.len() - 12];
    let tlen = u32::from_be_bytes(t[0..4].try_into().unwrap()) as usize;
    let tcrc = u32::from_be_bytes(t[4..8].try_into().unwrap());
    if t.len() < 8 + tlen {
        return Err(corrupt("trailer torn".to_string()));
    }
    let tbody = &t[8..8 + tlen];
    if crc32(tbody) != tcrc {
        return Err(corrupt("trailer checksum mismatch".to_string()));
    }
    let meta = decode_trailer(tbody).map_err(|d| corrupt(format!("trailer: {d}")))?;

    let mut rows = BTreeMap::new();
    for (i, (first_key, offset, len)) in meta.blocks.iter().enumerate() {
        let (offset, len) = (*offset as usize, *len as usize);
        if len < 8 || offset + len > trailer_offset {
            return Err(corrupt(format!("block {i} overruns the trailer")));
        }
        let b = &data[offset..offset + len];
        let blen = u32::from_be_bytes(b[0..4].try_into().unwrap()) as usize;
        let bcrc = u32::from_be_bytes(b[4..8].try_into().unwrap());
        if 8 + blen != len {
            return Err(corrupt(format!("block {i} length mismatch")));
        }
        let body = &b[8..];
        if crc32(body) != bcrc {
            return Err(corrupt(format!(
                "block {i} checksum mismatch (first key {:?})",
                String::from_utf8_lossy(first_key)
            )));
        }
        decode_block(body, &mut rows).map_err(|d| corrupt(format!("block {i}: {d}")))?;
    }
    if rows.len() as u64 != meta.row_count {
        return Err(corrupt(format!(
            "row count mismatch: trailer says {}, blocks held {}",
            meta.row_count,
            rows.len()
        )));
    }
    Ok(LoadedSegment { meta, rows })
}

/// Verify a segment without materializing rows — the `store_fsck` scrub
/// path. Returns the metadata on success.
pub fn verify_segment(path: &Path) -> Result<SegmentMeta, SegmentError> {
    read_segment(path).map(|s| s.meta)
}

/// Verify a segment *including every cell-version checksum*. Block CRCs
/// catch rot since the flush, but a cell checksum persisted verbatim can
/// record corruption that predates the flush (the cell was already bad
/// in the memstore). `store_fsck` and the heal path use this stronger
/// scrub so a replica is only ever repaired from a provably clean peer.
pub fn verify_segment_deep(path: &Path) -> Result<SegmentMeta, SegmentError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let loaded = read_segment(path)?;
    for (key, data) in &loaded.rows {
        for cols in data.values() {
            for (col, versions) in cols {
                for v in versions {
                    if !v.verify() {
                        return Err(SegmentError::Corrupt {
                            file: name,
                            detail: format!(
                                "cell checksum mismatch at row {:?} column {:?} ts {}",
                                String::from_utf8_lossy(key),
                                String::from_utf8_lossy(col),
                                v.timestamp
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(loaded.meta)
}

/// Monotonic ids for [`SegmentReader`]s, so the block cache can key
/// entries by `(reader, block)` without hashing file paths.
static NEXT_READER_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// A lazily read segment: the trailer (and thus the block index) is
/// verified at open, but block bodies stay on disk until someone asks
/// for them. [`SegmentReader::read_block`] seeks to one framed block,
/// verifies its CRC, and decodes just those ≤[`BLOCK_ROWS`] rows — the
/// read-amplification unit behind [`crate::BlockCache`].
///
/// The full back-to-front verification of [`read_segment`] still exists
/// for fsck; a reader only defers *when* a rotted block surfaces (at
/// first read instead of at open), never whether it does.
#[derive(Debug)]
pub struct SegmentReader {
    id: u64,
    file_name: String,
    meta: SegmentMeta,
    file: parking_lot::Mutex<std::fs::File>,
}

impl SegmentReader {
    /// Open a segment, verifying header magic, footer, and the trailer
    /// checksum — but no block bodies.
    pub fn open(path: &Path) -> Result<SegmentReader, SegmentError> {
        use std::io::{Read, Seek, SeekFrom};
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let corrupt = |detail: String| SegmentError::Corrupt {
            file: file_name.clone(),
            detail,
        };
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (4 + 12) as u64 {
            return Err(corrupt(format!("file too short ({file_len} bytes)")));
        }
        let mut head = [0u8; 4];
        file.read_exact(&mut head)?;
        if u32::from_be_bytes(head) != MAGIC_HEAD {
            return Err(corrupt("bad header magic".to_string()));
        }
        let mut tail = [0u8; 12];
        file.seek(SeekFrom::End(-12))?;
        file.read_exact(&mut tail)?;
        let trailer_offset = u64::from_be_bytes(tail[0..8].try_into().unwrap());
        if u32::from_be_bytes(tail[8..12].try_into().unwrap()) != MAGIC_TAIL {
            return Err(corrupt(
                "bad tail magic (torn or overwritten file)".to_string(),
            ));
        }
        if trailer_offset + 8 > file_len - 12 {
            return Err(corrupt(format!(
                "trailer offset {trailer_offset} out of range"
            )));
        }
        let mut t = vec![0u8; (file_len - 12 - trailer_offset) as usize];
        file.seek(SeekFrom::Start(trailer_offset))?;
        file.read_exact(&mut t)?;
        let tlen = u32::from_be_bytes(t[0..4].try_into().unwrap()) as usize;
        let tcrc = u32::from_be_bytes(t[4..8].try_into().unwrap());
        if t.len() < 8 + tlen {
            return Err(corrupt("trailer torn".to_string()));
        }
        let tbody = &t[8..8 + tlen];
        if crc32(tbody) != tcrc {
            return Err(corrupt("trailer checksum mismatch".to_string()));
        }
        let meta = decode_trailer(tbody).map_err(|d| corrupt(format!("trailer: {d}")))?;
        for (i, (_, offset, len)) in meta.blocks.iter().enumerate() {
            if *len < 8 || offset + *len as u64 > trailer_offset {
                return Err(corrupt(format!("block {i} overruns the trailer")));
            }
        }
        Ok(SegmentReader {
            id: NEXT_READER_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            file_name,
            meta,
            file: parking_lot::Mutex::new(file),
        })
    }

    /// Process-unique reader id (the block cache's key namespace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The segment's file name (what the manifest lists).
    pub fn file_name(&self) -> &str {
        &self.file_name
    }

    /// The trailer metadata verified at open.
    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    /// Number of blocks in this segment.
    pub fn block_count(&self) -> usize {
        self.meta.blocks.len()
    }

    /// Framed on-disk size of block `idx` (the cache's byte cost).
    pub fn block_bytes(&self, idx: usize) -> u64 {
        self.meta.blocks[idx].2 as u64
    }

    /// Index of the block that could hold `key`, or `None` when the key
    /// sorts before the segment's first row.
    pub fn block_for(&self, key: &[u8]) -> Option<usize> {
        let i = self
            .meta
            .blocks
            .partition_point(|(first, _, _)| first.as_ref() <= key);
        i.checked_sub(1)
    }

    /// Range of block indices whose rows can intersect `[start, end)`.
    pub fn blocks_overlapping(&self, start: &[u8], end: Option<&[u8]>) -> std::ops::Range<usize> {
        let lo = self
            .meta
            .blocks
            .partition_point(|(first, _, _)| first.as_ref() <= start)
            .saturating_sub(1);
        let hi = match end {
            Some(end) => self
                .meta
                .blocks
                .partition_point(|(first, _, _)| first.as_ref() < end),
            None => self.meta.blocks.len(),
        };
        lo..hi.max(lo)
    }

    /// Read, CRC-verify, and decode one block. This is the only place
    /// where block bodies leave the disk on the lazy path; corruption
    /// surfaces here as the same typed error [`read_segment`] raises.
    pub fn read_block(&self, idx: usize) -> Result<BTreeMap<Bytes, RowData>, SegmentError> {
        use std::io::{Read, Seek, SeekFrom};
        let corrupt = |detail: String| SegmentError::Corrupt {
            file: self.file_name.clone(),
            detail,
        };
        let (first_key, offset, len) = &self.meta.blocks[idx];
        let mut framed = vec![0u8; *len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(*offset))?;
            file.read_exact(&mut framed)?;
        }
        let blen = u32::from_be_bytes(framed[0..4].try_into().unwrap()) as usize;
        let bcrc = u32::from_be_bytes(framed[4..8].try_into().unwrap());
        if 8 + blen != framed.len() {
            return Err(corrupt(format!("block {idx} length mismatch")));
        }
        let body = &framed[8..];
        if crc32(body) != bcrc {
            return Err(corrupt(format!(
                "block {idx} checksum mismatch (first key {:?})",
                String::from_utf8_lossy(first_key)
            )));
        }
        let mut rows = BTreeMap::new();
        decode_block(body, &mut rows).map_err(|d| corrupt(format!("block {idx}: {d}")))?;
        Ok(rows)
    }
}

fn encode_row(buf: &mut BytesMut, key: &Bytes, data: &RowData) {
    put_bytes(buf, key);
    buf.put_u32(data.len() as u32);
    for (family, cols) in data {
        put_bytes(buf, family.as_bytes());
        buf.put_u32(cols.len() as u32);
        for (col, versions) in cols {
            put_bytes(buf, col);
            buf.put_u32(versions.len() as u32);
            for v in versions {
                buf.put_u64(v.timestamp);
                // The write-time checksum is persisted verbatim (not
                // recomputed), so at-rest corruption detection spans the
                // flush: a value rotted on disk still fails verify().
                buf.put_u32(v.checksum);
                put_bytes(buf, &v.value);
            }
        }
    }
}

fn decode_block(body: &[u8], rows: &mut BTreeMap<Bytes, RowData>) -> Result<(), String> {
    let mut buf = body;
    let n = take_u32(&mut buf)? as usize;
    for _ in 0..n {
        let key = take_bytes(&mut buf)?;
        let n_fam = take_u32(&mut buf)? as usize;
        let mut data: RowData = BTreeMap::new();
        for _ in 0..n_fam {
            let family = take_string(&mut buf)?;
            let n_cols = take_u32(&mut buf)? as usize;
            let mut cols = BTreeMap::new();
            for _ in 0..n_cols {
                let col = take_bytes(&mut buf)?;
                let n_ver = take_u32(&mut buf)? as usize;
                let mut versions = Vec::with_capacity(n_ver);
                for _ in 0..n_ver {
                    let timestamp = take_u64(&mut buf)?;
                    let checksum = take_u32(&mut buf)?;
                    let value = take_bytes(&mut buf)?;
                    versions.push(CellVersion {
                        timestamp,
                        value,
                        checksum,
                    });
                }
                cols.insert(col, versions);
            }
            data.insert(family, cols);
        }
        rows.insert(key, data);
    }
    if !buf.is_empty() {
        return Err(format!("{} trailing bytes in block", buf.len()));
    }
    Ok(())
}

fn decode_trailer(body: &[u8]) -> Result<SegmentMeta, String> {
    let mut buf = body;
    let table = take_string(&mut buf)?;
    let region_id = take_u64(&mut buf)?;
    let start = take_bytes(&mut buf)?;
    let end = match take_u8(&mut buf)? {
        0 => None,
        1 => Some(take_bytes(&mut buf)?),
        t => return Err(format!("bad range-end tag {t}")),
    };
    let row_count = take_u64(&mut buf)?;
    let n_blocks = take_u32(&mut buf)? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let first_key = take_bytes(&mut buf)?;
        let offset = take_u64(&mut buf)?;
        let len = take_u32(&mut buf)?;
        blocks.push((first_key, offset, len));
    }
    if !buf.is_empty() {
        return Err(format!("{} trailing bytes in trailer", buf.len()));
    }
    Ok(SegmentMeta {
        table,
        region_id,
        range: KeyRange { start, end },
        row_count,
        blocks,
    })
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn take_bytes(buf: &mut &[u8]) -> Result<Bytes, String> {
    if buf.len() < 4 {
        return Err("truncated length prefix".to_string());
    }
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err(format!("field of {len} bytes exceeds remaining input"));
    }
    let out = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    Ok(out)
}

fn take_string(buf: &mut &[u8]) -> Result<String, String> {
    let b = take_bytes(buf)?;
    String::from_utf8(b.to_vec()).map_err(|_| "invalid UTF-8".to_string())
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, String> {
    if buf.len() < 8 {
        return Err("truncated u64".to_string());
    }
    Ok(buf.get_u64())
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, String> {
    if buf.len() < 4 {
        return Err("truncated u32".to_string());
    }
    Ok(buf.get_u32())
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, String> {
    if buf.is_empty() {
        return Err("truncated u8".to_string());
    }
    Ok(buf.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows(n: usize) -> BTreeMap<Bytes, RowData> {
        let mut rows = BTreeMap::new();
        for i in 0..n {
            let mut cols = BTreeMap::new();
            cols.insert(
                Bytes::from("c"),
                vec![
                    CellVersion::new(2 * i as u64 + 2, Bytes::from(format!("v{i}-new"))),
                    CellVersion::new(2 * i as u64 + 1, Bytes::from(format!("v{i}-old"))),
                ],
            );
            let mut data: RowData = BTreeMap::new();
            data.insert("f".to_string(), cols);
            rows.insert(Bytes::from(format!("row{i:04}")), data);
        }
        rows
    }

    fn tmp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "cfstore-seg-{tag}-{}-{:?}.seg",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn segment_roundtrip_multi_block() {
        let path = tmp_file("roundtrip");
        let rows = sample_rows(100); // > BLOCK_ROWS, multiple blocks
        let range = KeyRange::all();
        write_segment(&path, "Jobs", 7, &range, &rows).unwrap();
        let loaded = read_segment(&path).unwrap();
        assert_eq!(loaded.meta.table, "Jobs");
        assert_eq!(loaded.meta.region_id, 7);
        assert_eq!(loaded.meta.row_count, 100);
        assert!(loaded.meta.blocks.len() > 1);
        assert_eq!(loaded.rows, rows);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_region_produces_readable_segment() {
        let path = tmp_file("empty");
        let rows = BTreeMap::new();
        write_segment(&path, "t", 1, &KeyRange::all(), &rows).unwrap();
        let loaded = read_segment(&path).unwrap();
        assert_eq!(loaded.meta.row_count, 0);
        assert!(loaded.rows.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounded_range_roundtrips() {
        let path = tmp_file("range");
        let range = KeyRange {
            start: Bytes::from("m"),
            end: Some(Bytes::from("t")),
        };
        write_segment(&path, "t", 3, &range, &sample_rows(5)).unwrap();
        let loaded = read_segment(&path).unwrap();
        assert_eq!(loaded.meta.range, range);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_block_byte_is_a_typed_corruption() {
        let path = tmp_file("rot");
        write_segment(&path, "t", 1, &KeyRange::all(), &sample_rows(40)).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[20] ^= 0xff; // inside the first block's body
        std::fs::write(&path, &data).unwrap();
        match read_segment(&path) {
            Err(SegmentError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_segment_is_a_typed_corruption() {
        let path = tmp_file("tornseg");
        write_segment(&path, "t", 1, &KeyRange::all(), &sample_rows(40)).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() / 2]).unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(SegmentError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lazy_reader_reads_blocks_identical_to_full_materialization() {
        let path = tmp_file("lazy");
        let rows = sample_rows(100);
        write_segment(&path, "Jobs", 7, &KeyRange::all(), &rows).unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.meta().row_count, 100);
        assert!(reader.block_count() > 1);
        let mut merged = BTreeMap::new();
        for idx in 0..reader.block_count() {
            merged.extend(reader.read_block(idx).unwrap());
        }
        assert_eq!(
            merged, rows,
            "lazy block reads must materialize bit-identically"
        );

        // Point lookups route to the single covering block.
        let probe = Bytes::from("row0050");
        let idx = reader.block_for(&probe).unwrap();
        assert!(reader.read_block(idx).unwrap().contains_key(&probe));
        assert!(reader.block_for(b"a-before-everything").is_none());
        // Range pruning covers exactly the overlapping blocks.
        let r = reader.blocks_overlapping(b"row0050", Some(b"row0060"));
        assert!(r.len() <= 2 && !r.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lazy_reader_surfaces_block_rot_on_read_not_open() {
        let path = tmp_file("lazyrot");
        write_segment(&path, "t", 1, &KeyRange::all(), &sample_rows(40)).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[20] ^= 0xff; // inside the first block's body
        std::fs::write(&path, &data).unwrap();
        let reader = SegmentReader::open(&path).expect("trailer is intact");
        match reader.read_block(0) {
            Err(SegmentError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        // The other block is untouched and still reads cleanly.
        assert!(reader.read_block(1).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persisted_cell_checksums_survive_the_roundtrip() {
        let path = tmp_file("crc");
        let mut rows = sample_rows(1);
        // Pre-corrupt a cell in memory (value no longer matches checksum).
        let data = rows.values_mut().next().unwrap();
        let v = &mut data.get_mut("f").unwrap().get_mut(b"c".as_ref()).unwrap()[0];
        v.value = Bytes::from("tampered");
        write_segment(&path, "t", 1, &KeyRange::all(), &rows).unwrap();
        let loaded = read_segment(&path).unwrap();
        let cell = &loaded.rows.values().next().unwrap()["f"][b"c".as_ref()][0];
        assert!(!cell.verify(), "stored checksum must travel verbatim");
        std::fs::remove_file(&path).unwrap();
    }
}
