//! The key-value data model: cells, puts, and row results.
//!
//! As in HBase, a data item is a key-value pair whose key is the composite
//! `(row-key, column-family, column-name, timestamp)` (§5.1).

use bytes::Bytes;
use std::collections::BTreeMap;

/// A write: one cell destined for a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Put {
    pub row: Bytes,
    pub family: String,
    pub column: Bytes,
    pub value: Bytes,
}

impl Put {
    pub fn new(
        row: impl Into<Bytes>,
        family: impl Into<String>,
        column: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Self {
        Put {
            row: row.into(),
            family: family.into(),
            column: column.into(),
            value: value.into(),
        }
    }
}

/// A stored cell version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellVersion {
    /// Logical timestamp assigned at write time (monotonically increasing
    /// per store).
    pub timestamp: u64,
    pub value: Bytes,
    /// CRC-32 of `value`, stamped at write time and re-verified on every
    /// read so at-rest bit rot surfaces as a typed error instead of
    /// silently corrupting decoded profiles.
    pub checksum: u32,
}

impl CellVersion {
    /// Stamp a new version with its value checksum.
    pub fn new(timestamp: u64, value: Bytes) -> Self {
        let checksum = crate::encoding::crc32(&value);
        CellVersion {
            timestamp,
            value,
            checksum,
        }
    }

    /// Whether the stored value still matches its write-time checksum.
    pub fn verify(&self) -> bool {
        crate::encoding::crc32(&self.value) == self.checksum
    }
}

/// A materialized row returned by gets and scans: family → column → latest
/// cell.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowResult {
    pub row: Bytes,
    pub families: BTreeMap<String, BTreeMap<Bytes, CellVersion>>,
}

impl RowResult {
    pub fn new(row: Bytes) -> Self {
        RowResult {
            row,
            families: BTreeMap::new(),
        }
    }

    /// Latest value of a column, if present.
    pub fn value(&self, family: &str, column: &[u8]) -> Option<&Bytes> {
        self.families
            .get(family)
            .and_then(|cols| cols.get(column))
            .map(|c| &c.value)
    }

    /// All `(column, value)` pairs of one family.
    pub fn columns(&self, family: &str) -> Vec<(&Bytes, &Bytes)> {
        self.families
            .get(family)
            .map(|cols| cols.iter().map(|(c, v)| (c, &v.value)).collect())
            .unwrap_or_default()
    }

    /// Number of cells across all families.
    pub fn cell_count(&self) -> usize {
        self.families.values().map(BTreeMap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_result_lookups() {
        let mut r = RowResult::new(Bytes::from("row1"));
        r.families
            .entry("cf".to_string())
            .or_default()
            .insert(Bytes::from("colA"), CellVersion::new(3, Bytes::from("v")));
        assert_eq!(r.value("cf", b"colA").unwrap(), &Bytes::from("v"));
        assert!(r.value("cf", b"colB").is_none());
        assert!(r.value("nope", b"colA").is_none());
        assert_eq!(r.cell_count(), 1);
        assert_eq!(r.columns("cf").len(), 1);
    }

    #[test]
    fn checksum_verifies_and_detects_tampering() {
        let mut c = CellVersion::new(1, Bytes::from("payload"));
        assert!(c.verify());
        c.value = Bytes::from("paylord");
        assert!(!c.verify());
    }

    #[test]
    fn put_builder() {
        let p = Put::new("r", "cf", "c", "v");
        assert_eq!(p.row, Bytes::from("r"));
        assert_eq!(p.family, "cf");
    }
}
