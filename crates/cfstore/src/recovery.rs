//! The reopen path: manifest, segment loading, WAL replay, and the
//! [`RecoveryReport`] that accounts for every byte the recovery kept or
//! dropped.
//!
//! A durable store directory contains:
//!
//! ```text
//! <dir>/MANIFEST      committed state: tables, live segments, flushed LSN
//! <dir>/wal.log       frames appended since the last committed flush
//! <dir>/seg-*.seg     immutable flushed segments (one per region)
//! ```
//!
//! Recovery is a pure function of that directory:
//!
//! 1. read the MANIFEST (missing → a never-flushed store; corrupt → a
//!    typed [`RecoveryError::ManifestCorrupt`], because the manifest is
//!    swapped in atomically and cannot be *torn* by a crash — damage
//!    means at-rest rot);
//! 2. open every referenced segment *lazily*: the header, footer, and
//!    trailer index are checksum-verified up front, but block bodies stay
//!    on disk — a clean region is rebuilt segment-backed, reading blocks
//!    on demand through the store's [`BlockCache`]. Block CRCs are
//!    verified on fill, so rot still surfaces as a typed
//!    [`RecoveryError::Segment`]/[`crate::StoreError`] the moment the
//!    data is actually read (and `store_fsck` scrubs every block);
//! 3. scan the WAL, replaying only frames with `lsn > flushed_lsn`
//!    (frames at or below it are already inside segments — the replay is
//!    idempotent across the flush/truncate race), and **truncate** at the
//!    first torn or corrupt frame instead of erroring — a torn tail is
//!    the expected fingerprint of a crash mid-append;
//! 4. report everything: segments loaded, frames replayed and skipped,
//!    valid vs dropped WAL bytes, and why truncation happened.
//!
//! The crash-anywhere property tests assert that for *every* enumerable
//! crash point, `recover` yields a store whose scans are bit-identical
//! to a never-crashed oracle restricted to acknowledged writes, and that
//! `wal_bytes_valid + wal_bytes_dropped` equals the WAL file length (no
//! byte is unaccounted for).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::blockcache::BlockCache;
use crate::encoding::crc32;
use crate::region::{KeyRange, RowData};
use crate::segment::{SegmentError, SegmentReader};
use crate::wal::{self, WalRecord, WalTruncation, WAL_FILE};

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MANIFEST_MAGIC: u32 = 0x4d46_5331; // "MFS1"

/// Errors from the reopen path. Torn WAL tails are *not* errors (they
/// are truncated and reported); these are the conditions recovery cannot
/// repair without losing committed data.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem trouble reading or preparing the directory.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// The MANIFEST exists but fails its magic/checksum/decode — at-rest
    /// corruption of the committed catalog.
    ManifestCorrupt { path: String, detail: String },
    /// A manifest-referenced segment failed verification.
    Segment(SegmentError),
    /// Replay hit a state inconsistency (e.g. a put for a table the log
    /// never created) — the directory mixes files from different stores.
    InconsistentLog { detail: String },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io { path, source } => {
                write!(f, "recovery I/O failure at `{path}`: {source}")
            }
            RecoveryError::ManifestCorrupt { path, detail } => {
                write!(f, "manifest `{path}` is corrupt: {detail}")
            }
            RecoveryError::Segment(e) => write!(f, "{e}"),
            RecoveryError::InconsistentLog { detail } => {
                write!(f, "write-ahead log is inconsistent: {detail}")
            }
        }
    }
}
impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io { source, .. } => Some(source),
            RecoveryError::Segment(e) => Some(e),
            RecoveryError::ManifestCorrupt { .. } | RecoveryError::InconsistentLog { .. } => None,
        }
    }
}
impl From<SegmentError> for RecoveryError {
    fn from(e: SegmentError) -> Self {
        RecoveryError::Segment(e)
    }
}

fn io_err(path: &Path, source: std::io::Error) -> RecoveryError {
    RecoveryError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// One table described by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestTable {
    pub name: String,
    pub families: Vec<String>,
    pub split_threshold: u64,
}

/// The committed catalog: what the store looked like at the last flush.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Every frame with `lsn <= flushed_lsn` is captured by the segments.
    pub flushed_lsn: u64,
    /// Logical clock high-water mark at flush time.
    pub clock: u64,
    /// Next region id to allocate.
    pub next_region_id: u64,
    /// Flush generation (names the next batch of segment files).
    pub generation: u64,
    pub tables: Vec<ManifestTable>,
    /// Live segment file names (relative to the store directory).
    pub segments: Vec<String>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        body.put_u64(self.flushed_lsn);
        body.put_u64(self.clock);
        body.put_u64(self.next_region_id);
        body.put_u64(self.generation);
        body.put_u32(self.tables.len() as u32);
        for t in &self.tables {
            put_str(&mut body, &t.name);
            body.put_u32(t.families.len() as u32);
            for f in &t.families {
                put_str(&mut body, f);
            }
            body.put_u64(t.split_threshold);
        }
        body.put_u32(self.segments.len() as u32);
        for s in &self.segments {
            put_str(&mut body, s);
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(&MANIFEST_MAGIC.to_be_bytes());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&crc32(&body).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(data: &[u8]) -> Result<Manifest, String> {
        if data.len() < 12 {
            return Err(format!("file too short ({} bytes)", data.len()));
        }
        if u32::from_be_bytes(data[0..4].try_into().unwrap()) != MANIFEST_MAGIC {
            return Err("bad magic".to_string());
        }
        let len = u32::from_be_bytes(data[4..8].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(data[8..12].try_into().unwrap());
        if data.len() < 12 + len {
            return Err("torn body".to_string());
        }
        let body = &data[12..12 + len];
        if crc32(body) != crc {
            return Err("checksum mismatch".to_string());
        }
        let mut buf = body;
        let flushed_lsn = take_u64(&mut buf)?;
        let clock = take_u64(&mut buf)?;
        let next_region_id = take_u64(&mut buf)?;
        let generation = take_u64(&mut buf)?;
        let n_tables = take_u32(&mut buf)? as usize;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = take_str(&mut buf)?;
            let n_fam = take_u32(&mut buf)? as usize;
            let mut families = Vec::with_capacity(n_fam);
            for _ in 0..n_fam {
                families.push(take_str(&mut buf)?);
            }
            let split_threshold = take_u64(&mut buf)?;
            tables.push(ManifestTable {
                name,
                families,
                split_threshold,
            });
        }
        let n_segs = take_u32(&mut buf)? as usize;
        let mut segments = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            segments.push(take_str(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(format!("{} trailing bytes", buf.len()));
        }
        Ok(Manifest {
            flushed_lsn,
            clock,
            next_region_id,
            generation,
            tables,
            segments,
        })
    }
}

/// Write the manifest atomically: temp file, then rename over MANIFEST.
/// Rename is atomic on every platform we run on, so a crash leaves either
/// the old manifest or the new one — never a torn hybrid.
pub fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), std::io::Error> {
    let tmp = dir.join("MANIFEST.tmp");
    let target = dir.join(MANIFEST_FILE);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&m.encode())?;
    drop(f);
    std::fs::rename(&tmp, &target)
}

/// Read the manifest; `Ok(None)` when the store never flushed.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, RecoveryError> {
    let path = dir.join(MANIFEST_FILE);
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, e)),
    };
    Manifest::decode(&data)
        .map(Some)
        .map_err(|detail| RecoveryError::ManifestCorrupt {
            path: path.display().to_string(),
            detail,
        })
}

/// One recovered region: its identity, range, and rows — either
/// materialized (WAL replay touched it) or still backed by an open
/// segment reader (`base` is `Some` and `rows` is empty).
#[derive(Debug)]
pub struct RecoveredRegion {
    pub id: u64,
    pub range: KeyRange,
    pub rows: BTreeMap<Bytes, RowData>,
    /// The verified-but-unread segment this region is lazily backed by.
    /// Invariant: `base.is_some()` implies `rows.is_empty()`.
    pub base: Option<Arc<SegmentReader>>,
}

/// One recovered table.
#[derive(Debug)]
pub struct RecoveredTable {
    pub name: String,
    pub families: Vec<String>,
    pub split_threshold: u64,
    /// Regions sorted by start key, ranges covering the key space.
    pub regions: Vec<RecoveredRegion>,
}

/// Everything `MiniStore::open` needs to rebuild itself.
#[derive(Debug)]
pub struct RecoveredState {
    pub tables: Vec<RecoveredTable>,
    /// Logical clock to resume from (`max assigned timestamp + 1`).
    pub clock: u64,
    pub next_region_id: u64,
    pub generation: u64,
    /// LSN the reopened WAL writer continues from.
    pub next_lsn: u64,
    pub flushed_lsn: u64,
    /// Length the WAL file was truncated to (valid frames only).
    pub wal_len: u64,
}

/// The typed account of one recovery: what was kept, what was dropped,
/// and why. `wal_bytes_valid + wal_bytes_dropped == ` the WAL's on-disk
/// length before truncation — no byte goes unaccounted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segment files opened (header/footer/trailer checksum-verified).
    pub segments_loaded: u64,
    /// Rows the loaded segments hold (from trailer metadata — *not*
    /// materialized; blocks are read on demand through the cache).
    pub segment_rows: u64,
    /// Blocks indexed across all loaded segments.
    pub segment_blocks: u64,
    /// Blocks recovery actually read (CRC-verified on fill) to promote
    /// regions the WAL replay mutated. The read-amplification proof:
    /// `segment_blocks_read ≤ segment_blocks`, with equality only when
    /// every region was written after its flush.
    pub segment_blocks_read: u64,
    /// WAL frames replayed (lsn above the manifest's flush mark).
    pub frames_replayed: u64,
    /// Records inside replayed frames.
    pub records_replayed: u64,
    /// Valid frames skipped because a flush already captured them.
    pub frames_skipped: u64,
    /// WAL bytes covered by valid frames.
    pub wal_bytes_valid: u64,
    /// WAL bytes dropped at the torn/corrupt tail.
    pub wal_bytes_dropped: u64,
    /// Why the tail was dropped; `None` when the log ended cleanly.
    pub truncation: Option<WalTruncation>,
    /// Orphan `seg-*.seg` files not referenced by the manifest (partial
    /// flushes from a crash) — ignored by recovery, listed for fsck.
    pub orphan_segments: Vec<String>,
}

impl RecoveryReport {
    /// Fold another shard's report into this one: numeric fields sum,
    /// the first truncation seen wins (per-shard detail stays in the
    /// per-shard reports), orphan lists concatenate. The sharded reopen
    /// path aggregates every shard's recovery through this instead of
    /// reporting whichever shard recovered last.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.segments_loaded += other.segments_loaded;
        self.segment_rows += other.segment_rows;
        self.segment_blocks += other.segment_blocks;
        self.segment_blocks_read += other.segment_blocks_read;
        self.frames_replayed += other.frames_replayed;
        self.records_replayed += other.records_replayed;
        self.frames_skipped += other.frames_skipped;
        self.wal_bytes_valid += other.wal_bytes_valid;
        self.wal_bytes_dropped += other.wal_bytes_dropped;
        if self.truncation.is_none() {
            self.truncation = other.truncation.clone();
        }
        self.orphan_segments
            .extend(other.orphan_segments.iter().cloned());
    }

    /// Human-readable one-screen summary (used by `store_fsck`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "segments loaded     : {} ({} rows)\n",
            self.segments_loaded, self.segment_rows
        ));
        out.push_str(&format!(
            "segment blocks      : {} indexed, {} read for replay\n",
            self.segment_blocks, self.segment_blocks_read
        ));
        out.push_str(&format!(
            "wal frames replayed : {} ({} records)\n",
            self.frames_replayed, self.records_replayed
        ));
        out.push_str(&format!(
            "wal frames skipped  : {} (already flushed)\n",
            self.frames_skipped
        ));
        out.push_str(&format!(
            "wal bytes           : {} valid, {} dropped\n",
            self.wal_bytes_valid, self.wal_bytes_dropped
        ));
        match &self.truncation {
            Some(t) => out.push_str(&format!("wal tail truncated  : {t}\n")),
            None => out.push_str("wal tail            : clean\n"),
        }
        if !self.orphan_segments.is_empty() {
            out.push_str(&format!(
                "orphan segments     : {}\n",
                self.orphan_segments.join(", ")
            ));
        }
        out
    }
}

/// Recover a store directory. Returns the rebuilt state and the report;
/// also physically truncates the WAL to its valid prefix so subsequent
/// appends never interleave with a torn tail. Clean regions come back
/// segment-backed; `cache` serves the block reads replay needs to
/// promote the regions it mutates (and is the same cache the reopened
/// store keeps using).
pub fn recover(
    dir: &Path,
    cache: &Arc<BlockCache>,
) -> Result<(RecoveredState, RecoveryReport), RecoveryError> {
    let mut report = RecoveryReport::default();

    // 1. The committed catalog.
    let manifest = read_manifest(dir)?.unwrap_or_default();

    // 2. Committed segments (and note orphans for the report).
    let mut tables: BTreeMap<String, RecoveredTable> = BTreeMap::new();
    for t in &manifest.tables {
        tables.insert(
            t.name.clone(),
            RecoveredTable {
                name: t.name.clone(),
                families: t.families.clone(),
                split_threshold: t.split_threshold,
                regions: Vec::new(),
            },
        );
    }
    let mut max_region_id = 0u64;
    for seg_name in &manifest.segments {
        let reader = Arc::new(SegmentReader::open(&dir.join(seg_name))?);
        let meta = reader.meta().clone();
        report.segments_loaded += 1;
        report.segment_rows += meta.row_count;
        report.segment_blocks += reader.block_count() as u64;
        max_region_id = max_region_id.max(meta.region_id);
        let table = tables
            .get_mut(&meta.table)
            .ok_or_else(|| RecoveryError::InconsistentLog {
                detail: format!(
                    "segment `{seg_name}` references unknown table `{}`",
                    meta.table
                ),
            })?;
        table.regions.push(RecoveredRegion {
            id: meta.region_id,
            range: meta.range,
            rows: BTreeMap::new(),
            base: Some(reader),
        });
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("seg-")
                && name.ends_with(".seg")
                && !manifest.segments.iter().any(|s| s == &name)
            {
                report.orphan_segments.push(name);
            }
        }
        report.orphan_segments.sort();
    }

    // 3. The WAL tail.
    let wal_path = dir.join(WAL_FILE);
    let scan = wal::read_wal(&wal_path).map_err(|e| io_err(&wal_path, e))?;
    report.wal_bytes_valid = scan.valid_bytes;
    report.wal_bytes_dropped = scan.total_bytes - scan.valid_bytes;
    report.truncation = scan.truncation;

    let mut clock = manifest.clock;
    let mut max_lsn = manifest.flushed_lsn;
    for frame in &scan.frames {
        max_lsn = max_lsn.max(frame.lsn);
        if frame.lsn <= manifest.flushed_lsn {
            report.frames_skipped += 1;
            continue;
        }
        report.frames_replayed += 1;
        for record in &frame.records {
            report.records_replayed += 1;
            apply_record(
                &mut tables,
                record,
                &mut clock,
                &mut max_region_id,
                cache,
                &mut report,
            )?;
        }
    }

    // Physically drop the torn tail so future appends stay clean.
    if report.wal_bytes_dropped > 0 {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .map_err(|e| io_err(&wal_path, e))?;
        f.set_len(scan.valid_bytes)
            .map_err(|e| io_err(&wal_path, e))?;
    }

    // Every table needs at least one region covering the key space.
    let mut next_region_id = manifest.next_region_id.max(max_region_id + 1).max(1);
    let mut out_tables = Vec::new();
    for (_, mut t) in tables {
        if t.regions.is_empty() {
            t.regions.push(RecoveredRegion {
                id: next_region_id,
                range: KeyRange::all(),
                rows: BTreeMap::new(),
                base: None,
            });
            next_region_id += 1;
        }
        t.regions.sort_by(|a, b| a.range.start.cmp(&b.range.start));
        out_tables.push(t);
    }

    Ok((
        RecoveredState {
            tables: out_tables,
            clock: clock + 1,
            next_region_id,
            generation: manifest.generation + 1,
            next_lsn: max_lsn + 1,
            flushed_lsn: manifest.flushed_lsn,
            wal_len: scan.valid_bytes,
        },
        report,
    ))
}

/// Promote a segment-backed recovered region before replay mutates it:
/// read every block once (CRC-verified, through the shared cache) into
/// `rows` and drop the base. No-op for materialized regions.
fn promote(
    region: &mut RecoveredRegion,
    cache: &BlockCache,
    report: &mut RecoveryReport,
) -> Result<(), RecoveryError> {
    let Some(reader) = region.base.take() else {
        return Ok(());
    };
    debug_assert!(region.rows.is_empty(), "lazy regions carry no rows");
    for idx in 0..reader.block_count() {
        let block = cache.get_or_load(&reader, idx)?;
        report.segment_blocks_read += 1;
        for (key, data) in block.iter() {
            region.rows.insert(key.clone(), data.clone());
        }
    }
    Ok(())
}

/// Apply one replayed record to the recovered table map. Pure in-memory
/// except for block reads that promote segment-backed regions; never
/// writes to the log (recovery must not re-log what it replays).
fn apply_record(
    tables: &mut BTreeMap<String, RecoveredTable>,
    record: &WalRecord,
    clock: &mut u64,
    max_region_id: &mut u64,
    cache: &BlockCache,
    report: &mut RecoveryReport,
) -> Result<(), RecoveryError> {
    match record {
        WalRecord::CreateTable {
            name,
            families,
            split_threshold,
            root_region_id,
        } => {
            // Re-created tables (logged before a flush captured them)
            // are idempotent.
            *max_region_id = (*max_region_id).max(*root_region_id);
            tables
                .entry(name.clone())
                .or_insert_with(|| RecoveredTable {
                    name: name.clone(),
                    families: families.clone(),
                    split_threshold: *split_threshold,
                    regions: vec![RecoveredRegion {
                        id: *root_region_id,
                        range: KeyRange::all(),
                        rows: BTreeMap::new(),
                        base: None,
                    }],
                });
            Ok(())
        }
        WalRecord::Put {
            table,
            row,
            family,
            column,
            value,
            timestamp,
        } => {
            *clock = (*clock).max(*timestamp);
            let t = lookup(tables, table)?;
            let region = region_for(t, row, table)?;
            promote(region, cache, report)?;
            let versions = region
                .rows
                .entry(row.clone())
                .or_default()
                .entry(family.clone())
                .or_default()
                .entry(column.clone())
                .or_default();
            // Timestamp-sorted descending insert, mirroring the live
            // write path, so replay order == WAL order == live order.
            let pos = versions
                .iter()
                .position(|v| v.timestamp <= *timestamp)
                .unwrap_or(versions.len());
            versions.insert(pos, crate::kv::CellVersion::new(*timestamp, value.clone()));
            versions.truncate(crate::region::MAX_VERSIONS);
            Ok(())
        }
        WalRecord::DeleteRow { table, row } => {
            let t = lookup(tables, table)?;
            let region = region_for(t, row, table)?;
            promote(region, cache, report)?;
            region.rows.remove(row);
            Ok(())
        }
        WalRecord::RegionSplit {
            table,
            parent_id,
            new_id,
            split_key,
        } => {
            *max_region_id = (*max_region_id).max(*new_id);
            let t = lookup(tables, table)?;
            let Some(parent) = t.regions.iter_mut().find(|r| r.id == *parent_id) else {
                return Err(RecoveryError::InconsistentLog {
                    detail: format!("split of unknown region {parent_id} in `{table}`"),
                });
            };
            promote(parent, cache, report)?;
            let upper_rows = parent.rows.split_off(split_key);
            let upper = RecoveredRegion {
                id: *new_id,
                range: KeyRange {
                    start: split_key.clone(),
                    end: parent.range.end.clone(),
                },
                rows: upper_rows,
                base: None,
            };
            parent.range.end = Some(split_key.clone());
            t.regions.push(upper);
            Ok(())
        }
        // Commit markers are bookkeeping for the sharded pre-pass (which
        // runs *before* per-shard recovery and truncates uncommitted
        // batches); by the time a frame replays here its batch is known
        // committed, so the marker itself applies nothing.
        WalRecord::BatchMarker { .. } => Ok(()),
    }
}

fn lookup<'t>(
    tables: &'t mut BTreeMap<String, RecoveredTable>,
    name: &str,
) -> Result<&'t mut RecoveredTable, RecoveryError> {
    tables
        .get_mut(name)
        .ok_or_else(|| RecoveryError::InconsistentLog {
            detail: format!("record references unknown table `{name}`"),
        })
}

fn region_for<'t>(
    t: &'t mut RecoveredTable,
    row: &[u8],
    table: &str,
) -> Result<&'t mut RecoveredRegion, RecoveryError> {
    t.regions
        .iter_mut()
        .find(|r| r.range.contains(row))
        .ok_or_else(|| RecoveryError::InconsistentLog {
            detail: format!("no region covers a replayed row in `{table}`"),
        })
}

/// Segment file name for a region flushed at a generation.
pub fn segment_file_name(generation: u64, region_id: u64) -> String {
    format!("seg-{generation:06}-r{region_id:06}.seg")
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> Result<String, String> {
    if buf.len() < 4 {
        return Err("truncated length prefix".to_string());
    }
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err("truncated string".to_string());
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| "invalid UTF-8".to_string())?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, String> {
    if buf.len() < 8 {
        return Err("truncated u64".to_string());
    }
    Ok(buf.get_u64())
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, String> {
    if buf.len() < 4 {
        return Err("truncated u32".to_string());
    }
    Ok(buf.get_u32())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cfstore-rec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn manifest_roundtrips_atomically() {
        let dir = tmp_dir("manifest");
        let m = Manifest {
            flushed_lsn: 42,
            clock: 99,
            next_region_id: 7,
            generation: 3,
            tables: vec![ManifestTable {
                name: "Jobs".into(),
                families: vec!["f".into()],
                split_threshold: 256,
            }],
            segments: vec![segment_file_name(3, 1), segment_file_name(3, 2)],
        };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap(), m);
        assert!(!dir.join("MANIFEST.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_reads_as_none_corrupt_is_typed() {
        let dir = tmp_dir("badmanifest");
        assert!(read_manifest(&dir).unwrap().is_none());
        std::fs::write(dir.join(MANIFEST_FILE), b"garbage-bytes").unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(RecoveryError::ManifestCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_recovers_to_empty_state() {
        let dir = tmp_dir("empty");
        let cache = Arc::new(BlockCache::new(1 << 20));
        let (state, report) = recover(&dir, &cache).unwrap();
        assert!(state.tables.is_empty());
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(report.wal_bytes_dropped, 0);
        assert!(report.truncation.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
