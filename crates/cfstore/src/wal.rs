//! The write-ahead log: length+CRC-framed, append-only, group-committed.
//!
//! Every durable mutation of a [`crate::MiniStore`] — table creation,
//! puts, row deletes, region splits — is encoded as a [`WalRecord`] and
//! appended as part of a *frame* before it touches the in-memory state
//! (log-then-apply). A frame is the unit of atomicity: either every
//! record in it replays on recovery or none does, so multi-cell writes
//! like a whole profile survive crashes all-or-nothing.
//!
//! ## Frame format
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────────────┐
//! │ len u32 │ crc u32 │ body: lsn u64 · count u32 · records  │
//! └─────────┴─────────┴──────────────────────────────────────┘
//! ```
//!
//! `len` is the body length in bytes; `crc` is CRC-32 (IEEE) over the
//! body. The recovery path ([`read_wal`]) walks frames until the file
//! ends cleanly, a frame is torn (fewer bytes than `len` promises), its
//! checksum mismatches, or a record fails to decode — and reports where
//! and why it stopped instead of erroring, because a torn tail is the
//! *expected* artifact of a crash mid-append.
//!
//! ## Crash injection
//!
//! [`CrashSpec`] deterministically kills the store at an enumerable
//! point — after the Nth WAL byte reaches the file (tearing the write in
//! progress at exactly that offset), while writing the Nth segment of a
//! flush, or while logging the Nth region split. Like mrsim's `FaultSpec`
//! (PR 2), the default spec is fully inert and the property tests
//! enumerate crash points to assert the recovery invariants.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::encoding::crc32;

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A table came into existence with a fixed family set. The id of
    /// its initial all-covering region is logged so replay reproduces
    /// region identity (and thus META entries) exactly.
    CreateTable {
        name: String,
        families: Vec<String>,
        split_threshold: u64,
        root_region_id: u64,
    },
    /// One cell write, with the timestamp the store assigned at commit
    /// time so replay reproduces version order exactly.
    Put {
        table: String,
        row: Bytes,
        family: String,
        column: Bytes,
        value: Bytes,
        timestamp: u64,
    },
    /// A whole row removed.
    DeleteRow { table: String, row: Bytes },
    /// A region split at a chosen key. Logging the split key (rather
    /// than re-deriving the median on replay) makes the post-recovery
    /// region topology identical to the pre-crash one.
    RegionSplit {
        table: String,
        parent_id: u64,
        new_id: u64,
        split_key: Bytes,
    },
    /// Sharded-mode commit marker, logged as the *first* record of every
    /// frame a [`crate::shard::ShardedStore`] writes. `gsn` is the
    /// store-wide global sequence number of the batch and `participants`
    /// the shard ids the batch touched. Shard-aware recovery treats a
    /// gsn as committed only when every participant holds its frame
    /// (durable in its WAL, or already flushed past it) — otherwise the
    /// whole cross-shard batch is dropped on every shard, keeping
    /// multi-shard writes atomic. Replaying the marker itself is a
    /// no-op.
    BatchMarker { gsn: u64, participants: Vec<u32> },
}

const TAG_CREATE_TABLE: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_DELETE_ROW: u8 = 3;
const TAG_REGION_SPLIT: u8 = 4;
const TAG_BATCH_MARKER: u8 = 5;

/// Why a WAL scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTruncation {
    /// Fewer bytes on disk than the frame header promised — the classic
    /// torn write of a crash mid-append.
    Torn { offset: u64 },
    /// A complete frame whose body no longer matches its CRC.
    BadChecksum { offset: u64 },
    /// A frame whose body decoded to garbage (bad tag, truncated field).
    BadRecord { offset: u64, detail: String },
}

impl WalTruncation {
    /// Byte offset of the first dropped byte.
    pub fn offset(&self) -> u64 {
        match self {
            WalTruncation::Torn { offset }
            | WalTruncation::BadChecksum { offset }
            | WalTruncation::BadRecord { offset, .. } => *offset,
        }
    }
}

impl std::fmt::Display for WalTruncation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalTruncation::Torn { offset } => write!(f, "torn frame at byte {offset}"),
            WalTruncation::BadChecksum { offset } => {
                write!(f, "frame checksum mismatch at byte {offset}")
            }
            WalTruncation::BadRecord { offset, detail } => {
                write!(f, "undecodable frame at byte {offset}: {detail}")
            }
        }
    }
}

/// Errors from the WAL writer.
#[derive(Debug)]
pub enum WalError {
    /// The injected [`CrashSpec`] fired; the store is dead until reopened.
    Crashed,
    /// A real I/O failure underneath the log.
    Io(std::io::Error),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Crashed => write!(f, "injected crash point fired"),
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
        }
    }
}
impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Crashed => None,
            WalError::Io(e) => Some(e),
        }
    }
}
impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Deterministic crash points for the durability property tests.
///
/// All fields are `None` by default (fully inert). Mirrors the mrsim
/// `FaultSpec` convention: an inert spec routes through exactly the
/// non-injected code path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSpec {
    /// Die once this many total bytes have reached the WAL file. The
    /// write in progress is torn at exactly this offset, so the crash
    /// point enumerates every possible torn-frame shape.
    pub after_wal_bytes: Option<u64>,
    /// Die while flushing: segments with index `< n` are written fully,
    /// segment `n` is torn at half its bytes, and the manifest never
    /// swaps — the classic mid-flush crash.
    pub during_flush_segment: Option<u32>,
    /// Die while logging the `n`th region split (0-based): the split's
    /// WAL frame is torn halfway, so recovery replays the puts that
    /// triggered the split but not the split itself.
    pub during_split: Option<u32>,
}

impl CrashSpec {
    /// A spec that crashes after `n` WAL bytes.
    pub fn after_wal_bytes(n: u64) -> Self {
        CrashSpec {
            after_wal_bytes: Some(n),
            ..CrashSpec::default()
        }
    }

    /// True when no crash point can fire.
    pub fn is_inert(&self) -> bool {
        self.after_wal_bytes.is_none()
            && self.during_flush_segment.is_none()
            && self.during_split.is_none()
    }
}

/// When appended frames are pushed from the group-commit buffer to the
/// file (and thereby become durable / acknowledged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every operation's frame hits the file before the call returns —
    /// an acknowledged write is a durable write.
    EveryOp,
    /// Frames accumulate and are written together once `n` are pending
    /// (or on an explicit [`WalWriter::sync`]). Higher throughput; a
    /// crash can lose the un-synced tail, never a synced prefix.
    GroupCommit(usize),
}

/// The append side of the log: frame encoding, group-commit buffering,
/// and the crash-injection bookkeeping shared with the flush path.
pub struct WalWriter {
    file: File,
    /// Group-commit buffer of fully framed bytes not yet written.
    buf: Vec<u8>,
    pending_frames: usize,
    policy: SyncPolicy,
    next_lsn: u64,
    /// Total bytes that have reached the file (the crash-byte currency).
    bytes_written: u64,
    /// Region splits logged so far (for [`CrashSpec::during_split`]).
    splits_logged: u32,
    /// Segment files fully written by flushes (for
    /// [`CrashSpec::during_flush_segment`]).
    pub(crate) segments_written: u32,
    crash: CrashSpec,
    /// Set once any crash point fires; every later call fails fast.
    crashed: bool,
}

impl WalWriter {
    /// Open (or create) the log at `path`, appending after `existing_len`
    /// valid bytes (recovery truncates the file to that length first).
    pub fn open(
        path: &Path,
        existing_len: u64,
        next_lsn: u64,
        policy: SyncPolicy,
        crash: CrashSpec,
    ) -> Result<Self, WalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            file,
            buf: Vec::new(),
            pending_frames: 0,
            policy,
            next_lsn,
            bytes_written: existing_len,
            splits_logged: 0,
            segments_written: 0,
            crash,
            crashed: false,
        })
    }

    /// Whether an injected crash point already fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The LSN the next appended frame will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Cumulative bytes that have reached the file since open. *Not*
    /// reset by [`WalWriter::reset_after_flush`] (it is the crash-budget
    /// currency), so callers tracking WAL growth between flushes must
    /// remember their own baseline.
    pub(crate) fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Append one frame holding `records` (atomic as a unit on replay).
    /// Returns the frame's LSN. Depending on the [`SyncPolicy`] the frame
    /// may still sit in the group-commit buffer when this returns.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<u64, WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, records);
        self.next_lsn += 1;

        // Mid-split crash point: tear this frame halfway regardless of
        // where the byte budget stands.
        let is_split = records
            .iter()
            .any(|r| matches!(r, WalRecord::RegionSplit { .. }));
        if is_split {
            let n = self.splits_logged;
            self.splits_logged += 1;
            if self.crash.during_split == Some(n) {
                // Force-flush anything already buffered, then tear.
                let _ = self.write_through(&[]);
                let half = frame.len() / 2;
                let _ = self.file.write_all(&frame[..half]);
                self.bytes_written += half as u64;
                self.crashed = true;
                return Err(WalError::Crashed);
            }
        }

        self.buf.extend_from_slice(&frame);
        self.pending_frames += 1;
        let should_flush = match self.policy {
            SyncPolicy::EveryOp => true,
            SyncPolicy::GroupCommit(n) => self.pending_frames >= n.max(1),
        };
        if should_flush {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Append one frame with a caller-assigned LSN. The sharded store
    /// derives frame LSNs from the global sequence number (`gsn *
    /// LSN_STRIDE + seq`), so per-shard LSNs jump forward rather than
    /// incrementing — `lsn` must be ≥ the writer's current `next_lsn`
    /// so replay order stays monotone within each shard's log.
    pub fn append_at(&mut self, lsn: u64, records: &[WalRecord]) -> Result<u64, WalError> {
        debug_assert!(
            lsn >= self.next_lsn,
            "append_at must not move the LSN backwards ({lsn} < {})",
            self.next_lsn
        );
        self.next_lsn = lsn;
        self.append(records)
    }

    /// Force the group-commit buffer to the file. After `Ok`, every
    /// previously appended frame is durable.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.buf);
        self.pending_frames = 0;
        self.write_through(&buf)
    }

    /// Write raw bytes to the file honouring the crash-byte budget;
    /// tears the write at the budget boundary when it fires.
    fn write_through(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if let Some(limit) = self.crash.after_wal_bytes {
            if self.bytes_written + bytes.len() as u64 > limit {
                let keep = (limit.saturating_sub(self.bytes_written)) as usize;
                self.file.write_all(&bytes[..keep])?;
                self.bytes_written += keep as u64;
                self.crashed = true;
                return Err(WalError::Crashed);
            }
        }
        self.file.write_all(bytes)?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Reset the log after a successful flush persisted everything
    /// through `flushed_lsn` into segments: the file is truncated to
    /// empty and appends continue with fresh byte accounting.
    pub fn reset_after_flush(&mut self) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        self.buf.clear();
        self.pending_frames = 0;
        self.file.set_len(0)?;
        // NOTE: the crash byte budget keeps counting cumulative bytes, so
        // `after_wal_bytes` enumerates crash points across flush
        // boundaries instead of resetting with the file.
        Ok(())
    }

    /// Mid-flush crash check: returns `Err(Crashed)` (and poisons the
    /// writer) when segment number `segments_written` is the configured
    /// victim. The flush path calls this before completing each segment.
    pub(crate) fn check_flush_crash(&mut self) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        if self.crash.during_flush_segment == Some(self.segments_written) {
            self.crashed = true;
            return Err(WalError::Crashed);
        }
        Ok(())
    }
}

/// Encode one frame: `len · crc · body(lsn · count · records)`.
fn encode_frame(lsn: u64, records: &[WalRecord]) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u64(lsn);
    body.put_u32(records.len() as u32);
    for r in records {
        encode_record(&mut body, r);
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&body).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn encode_record(buf: &mut BytesMut, r: &WalRecord) {
    match r {
        WalRecord::CreateTable {
            name,
            families,
            split_threshold,
            root_region_id,
        } => {
            buf.put_u8(TAG_CREATE_TABLE);
            put_bytes(buf, name.as_bytes());
            buf.put_u32(families.len() as u32);
            for f in families {
                put_bytes(buf, f.as_bytes());
            }
            buf.put_u64(*split_threshold);
            buf.put_u64(*root_region_id);
        }
        WalRecord::Put {
            table,
            row,
            family,
            column,
            value,
            timestamp,
        } => {
            buf.put_u8(TAG_PUT);
            put_bytes(buf, table.as_bytes());
            put_bytes(buf, row);
            put_bytes(buf, family.as_bytes());
            put_bytes(buf, column);
            put_bytes(buf, value);
            buf.put_u64(*timestamp);
        }
        WalRecord::DeleteRow { table, row } => {
            buf.put_u8(TAG_DELETE_ROW);
            put_bytes(buf, table.as_bytes());
            put_bytes(buf, row);
        }
        WalRecord::RegionSplit {
            table,
            parent_id,
            new_id,
            split_key,
        } => {
            buf.put_u8(TAG_REGION_SPLIT);
            put_bytes(buf, table.as_bytes());
            buf.put_u64(*parent_id);
            buf.put_u64(*new_id);
            put_bytes(buf, split_key);
        }
        WalRecord::BatchMarker { gsn, participants } => {
            buf.put_u8(TAG_BATCH_MARKER);
            buf.put_u64(*gsn);
            buf.put_u32(participants.len() as u32);
            for p in participants {
                buf.put_u32(*p);
            }
        }
    }
}

fn take_bytes(buf: &mut &[u8]) -> Result<Bytes, String> {
    if buf.len() < 4 {
        return Err("truncated length prefix".to_string());
    }
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err(format!("field of {len} bytes exceeds remaining input"));
    }
    let out = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    Ok(out)
}

fn take_string(buf: &mut &[u8]) -> Result<String, String> {
    let b = take_bytes(buf)?;
    String::from_utf8(b.to_vec()).map_err(|_| "invalid UTF-8".to_string())
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, String> {
    if buf.len() < 8 {
        return Err("truncated u64".to_string());
    }
    Ok(buf.get_u64())
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, String> {
    if buf.len() < 4 {
        return Err("truncated u32".to_string());
    }
    Ok(buf.get_u32())
}

fn decode_record(buf: &mut &[u8]) -> Result<WalRecord, String> {
    if buf.is_empty() {
        return Err("missing record tag".to_string());
    }
    let tag = buf.get_u8();
    match tag {
        TAG_CREATE_TABLE => {
            let name = take_string(buf)?;
            let n = take_u32(buf)? as usize;
            let mut families = Vec::with_capacity(n);
            for _ in 0..n {
                families.push(take_string(buf)?);
            }
            let split_threshold = take_u64(buf)?;
            let root_region_id = take_u64(buf)?;
            Ok(WalRecord::CreateTable {
                name,
                families,
                split_threshold,
                root_region_id,
            })
        }
        TAG_PUT => Ok(WalRecord::Put {
            table: take_string(buf)?,
            row: take_bytes(buf)?,
            family: take_string(buf)?,
            column: take_bytes(buf)?,
            value: take_bytes(buf)?,
            timestamp: take_u64(buf)?,
        }),
        TAG_DELETE_ROW => Ok(WalRecord::DeleteRow {
            table: take_string(buf)?,
            row: take_bytes(buf)?,
        }),
        TAG_REGION_SPLIT => Ok(WalRecord::RegionSplit {
            table: take_string(buf)?,
            parent_id: take_u64(buf)?,
            new_id: take_u64(buf)?,
            split_key: take_bytes(buf)?,
        }),
        TAG_BATCH_MARKER => {
            let gsn = take_u64(buf)?;
            let n = take_u32(buf)? as usize;
            let mut participants = Vec::with_capacity(n);
            for _ in 0..n {
                participants.push(take_u32(buf)?);
            }
            Ok(WalRecord::BatchMarker { gsn, participants })
        }
        t => Err(format!("unknown record tag {t:#x}")),
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    pub lsn: u64,
    pub records: Vec<WalRecord>,
}

/// The result of scanning a WAL file: every valid frame in order, the
/// number of bytes they span, and why the scan stopped early (if it did).
#[derive(Debug)]
pub struct WalScan {
    pub frames: Vec<WalFrame>,
    /// Byte offset of each valid frame, parallel to `frames`. Shard-aware
    /// recovery uses these to truncate a log at an exact frame boundary
    /// when aborting an uncommitted cross-shard batch.
    pub frame_offsets: Vec<u64>,
    /// Bytes covered by valid frames (the truncation point on recovery).
    pub valid_bytes: u64,
    /// Total file length; `total_bytes - valid_bytes` is the dropped tail.
    pub total_bytes: u64,
    /// `None` when the file ended cleanly on a frame boundary.
    pub truncation: Option<WalTruncation>,
}

/// Scan the WAL at `path`, stopping (without erroring) at the first torn
/// or corrupt frame. A missing file scans as empty.
pub fn read_wal(path: &Path) -> Result<WalScan, std::io::Error> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let total_bytes = data.len() as u64;
    let mut frames = Vec::new();
    let mut frame_offsets = Vec::new();
    let mut offset = 0usize;
    let mut truncation = None;
    while offset < data.len() {
        let rest = &data[offset..];
        if rest.len() < 8 {
            truncation = Some(WalTruncation::Torn {
                offset: offset as u64,
            });
            break;
        }
        let len = u32::from_be_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 8 + len {
            truncation = Some(WalTruncation::Torn {
                offset: offset as u64,
            });
            break;
        }
        let body = &rest[8..8 + len];
        if crc32(body) != crc {
            truncation = Some(WalTruncation::BadChecksum {
                offset: offset as u64,
            });
            break;
        }
        match decode_frame_body(body) {
            Ok(frame) => {
                frames.push(frame);
                frame_offsets.push(offset as u64);
            }
            Err(detail) => {
                truncation = Some(WalTruncation::BadRecord {
                    offset: offset as u64,
                    detail,
                });
                break;
            }
        }
        offset += 8 + len;
    }
    Ok(WalScan {
        frames,
        frame_offsets,
        valid_bytes: offset as u64,
        total_bytes,
        truncation,
    })
}

fn decode_frame_body(body: &[u8]) -> Result<WalFrame, String> {
    let mut buf = body;
    let lsn = take_u64(&mut buf)?;
    let count = take_u32(&mut buf)? as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(decode_record(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(format!("{} trailing bytes after records", buf.len()));
    }
    Ok(WalFrame { lsn, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cfstore-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                families: vec!["f".into(), "g".into()],
                split_threshold: 256,
                root_region_id: 1,
            },
            WalRecord::Put {
                table: "t".into(),
                row: Bytes::from("row1"),
                family: "f".into(),
                column: Bytes::from("c"),
                value: Bytes::from("v"),
                timestamp: 7,
            },
            WalRecord::DeleteRow {
                table: "t".into(),
                row: Bytes::from("row0"),
            },
            WalRecord::RegionSplit {
                table: "t".into(),
                parent_id: 1,
                new_id: 2,
                split_key: Bytes::from("m"),
            },
            WalRecord::BatchMarker {
                gsn: 9,
                participants: vec![0, 2, 3],
            },
        ]
    }

    #[test]
    fn frames_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut w =
            WalWriter::open(&path, 0, 1, SyncPolicy::EveryOp, CrashSpec::default()).unwrap();
        for r in sample_records() {
            w.append(std::slice::from_ref(&r)).unwrap();
        }
        w.append(&sample_records()).unwrap(); // multi-record frame
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 6);
        assert_eq!(scan.frame_offsets.len(), 6);
        assert_eq!(scan.frame_offsets[0], 0);
        assert!(scan.truncation.is_none());
        assert_eq!(scan.valid_bytes, scan.total_bytes);
        assert_eq!(scan.frames[0].lsn, 1);
        assert_eq!(scan.frames[5].records, sample_records());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_not_errored() {
        let dir = tmp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut w =
            WalWriter::open(&path, 0, 1, SyncPolicy::EveryOp, CrashSpec::default()).unwrap();
        for r in sample_records() {
            w.append(std::slice::from_ref(&r)).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Tear 3 bytes off the last frame.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 4);
        assert!(matches!(scan.truncation, Some(WalTruncation::Torn { .. })));
        assert_eq!(scan.total_bytes, (full.len() - 3) as u64);
        assert!(scan.valid_bytes < scan.total_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_stops_the_scan() {
        let dir = tmp_dir("corrupt");
        let path = dir.join(WAL_FILE);
        let mut w =
            WalWriter::open(&path, 0, 1, SyncPolicy::EveryOp, CrashSpec::default()).unwrap();
        let recs = sample_records();
        w.append(&recs[..1]).unwrap();
        let first_len = std::fs::metadata(&path).unwrap().len() as usize;
        w.append(&recs[1..2]).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        data[first_len + 10] ^= 0xff; // flip a byte inside the 2nd frame body
        std::fs::write(&path, &data).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(matches!(
            scan.truncation,
            Some(WalTruncation::BadChecksum { .. })
        ));
        assert_eq!(scan.valid_bytes, first_len as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_n_bytes_tears_exactly_there() {
        let dir = tmp_dir("crashbyte");
        let path = dir.join(WAL_FILE);
        // First, measure a clean run.
        let mut w =
            WalWriter::open(&path, 0, 1, SyncPolicy::EveryOp, CrashSpec::default()).unwrap();
        for r in sample_records() {
            w.append(std::slice::from_ref(&r)).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        drop(w);
        std::fs::remove_file(&path).unwrap();

        let limit = clean_len / 2;
        let mut w = WalWriter::open(
            &path,
            0,
            1,
            SyncPolicy::EveryOp,
            CrashSpec::after_wal_bytes(limit),
        )
        .unwrap();
        let mut acked = 0;
        for r in sample_records() {
            match w.append(std::slice::from_ref(&r)) {
                Ok(_) => acked += 1,
                Err(WalError::Crashed) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(w.is_crashed());
        assert!(matches!(
            w.append(&sample_records()),
            Err(WalError::Crashed)
        ));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), limit);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), acked);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_threshold() {
        let dir = tmp_dir("group");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::open(
            &path,
            0,
            1,
            SyncPolicy::GroupCommit(3),
            CrashSpec::default(),
        )
        .unwrap();
        let recs = sample_records();
        w.append(&recs[..1]).unwrap();
        w.append(&recs[..1]).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0, "still buffered");
        w.append(&recs[..1]).unwrap(); // third append flushes the group
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        w.append(&recs[..1]).unwrap();
        w.sync().unwrap(); // explicit sync drains the partial group
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inert_spec_never_fires() {
        assert!(CrashSpec::default().is_inert());
        assert!(!CrashSpec::after_wal_bytes(10).is_inert());
    }
}
