//! Server-side filters (the "filter-reaching mechanism" of §5.3).
//!
//! Filters are shipped to region servers and evaluated during the scan,
//! so only passing rows travel back to the client — the optimization
//! PStorM relies on to keep matching scalable as the store grows.

use bytes::Bytes;

use crate::kv::RowResult;

/// A predicate evaluated at the region server against a materialized row.
pub trait Filter: Send + Sync {
    fn matches(&self, row: &RowResult) -> bool;

    /// A short description for diagnostics.
    fn describe(&self) -> String {
        "filter".to_string()
    }
}

/// Pass rows whose row key starts with a prefix — the idiom for feature-
/// type-prefixed row keys in the PStorM data model (Table 5.1).
pub struct RowPrefixFilter {
    pub prefix: Bytes,
}

impl Filter for RowPrefixFilter {
    fn matches(&self, row: &RowResult) -> bool {
        row.row.starts_with(&self.prefix)
    }
    fn describe(&self) -> String {
        format!("RowPrefixFilter({:?})", self.prefix)
    }
}

/// Comparison operators for column-value filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Equal,
    NotEqual,
    Less,
    LessOrEqual,
    Greater,
    GreaterOrEqual,
}

/// Pass rows whose column's latest value compares against a constant
/// (bytewise, like HBase's `SingleColumnValueFilter`). Rows missing the
/// column are dropped.
pub struct SingleColumnValueFilter {
    pub family: String,
    pub column: Bytes,
    pub op: CompareOp,
    pub value: Bytes,
}

impl Filter for SingleColumnValueFilter {
    fn matches(&self, row: &RowResult) -> bool {
        let Some(v) = row.value(&self.family, &self.column) else {
            return false;
        };
        let ord = v.as_ref().cmp(self.value.as_ref());
        match self.op {
            CompareOp::Equal => ord.is_eq(),
            CompareOp::NotEqual => ord.is_ne(),
            CompareOp::Less => ord.is_lt(),
            CompareOp::LessOrEqual => ord.is_le(),
            CompareOp::Greater => ord.is_gt(),
            CompareOp::GreaterOrEqual => ord.is_ge(),
        }
    }
    fn describe(&self) -> String {
        format!(
            "SingleColumnValueFilter({}:{:?} {:?})",
            self.family, self.column, self.op
        )
    }
}

/// An arbitrary predicate — what PStorM uses to push its Euclidean-
/// distance and Jaccard filters down to the region servers.
pub struct PredicateFilter<F: Fn(&RowResult) -> bool + Send + Sync> {
    pub name: String,
    pub pred: F,
}

impl<F: Fn(&RowResult) -> bool + Send + Sync> Filter for PredicateFilter<F> {
    fn matches(&self, row: &RowResult) -> bool {
        (self.pred)(row)
    }
    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// Conjunction of filters (HBase `FilterList` with `MUST_PASS_ALL`).
pub struct FilterList {
    pub filters: Vec<Box<dyn Filter>>,
}

impl Filter for FilterList {
    fn matches(&self, row: &RowResult) -> bool {
        self.filters.iter().all(|f| f.matches(row))
    }
    fn describe(&self) -> String {
        format!(
            "FilterList[{}]",
            self.filters
                .iter()
                .map(|f| f.describe())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::CellVersion;

    fn row(key: &str, col_val: Option<(&str, &str)>) -> RowResult {
        let mut r = RowResult::new(Bytes::copy_from_slice(key.as_bytes()));
        if let Some((c, v)) = col_val {
            r.families.entry("f".to_string()).or_default().insert(
                Bytes::copy_from_slice(c.as_bytes()),
                CellVersion::new(1, Bytes::copy_from_slice(v.as_bytes())),
            );
        }
        r
    }

    #[test]
    fn prefix_filter() {
        let f = RowPrefixFilter {
            prefix: Bytes::from("Static/"),
        };
        assert!(f.matches(&row("Static/job1", None)));
        assert!(!f.matches(&row("Dynamic/job1", None)));
    }

    #[test]
    fn column_value_filter_ops() {
        let mk = |op| SingleColumnValueFilter {
            family: "f".to_string(),
            column: Bytes::from("c"),
            op,
            value: Bytes::from("m"),
        };
        let lo = row("r", Some(("c", "a")));
        let eq = row("r", Some(("c", "m")));
        let hi = row("r", Some(("c", "z")));
        assert!(mk(CompareOp::Less).matches(&lo));
        assert!(!mk(CompareOp::Less).matches(&eq));
        assert!(mk(CompareOp::Equal).matches(&eq));
        assert!(mk(CompareOp::GreaterOrEqual).matches(&hi));
        assert!(mk(CompareOp::NotEqual).matches(&hi));
    }

    #[test]
    fn missing_column_never_matches() {
        let f = SingleColumnValueFilter {
            family: "f".to_string(),
            column: Bytes::from("c"),
            op: CompareOp::NotEqual,
            value: Bytes::from("x"),
        };
        assert!(!f.matches(&row("r", None)));
    }

    #[test]
    fn filter_list_is_conjunction() {
        let list = FilterList {
            filters: vec![
                Box::new(RowPrefixFilter {
                    prefix: Bytes::from("S"),
                }),
                Box::new(PredicateFilter {
                    name: "nonempty".to_string(),
                    pred: |r: &RowResult| !r.is_empty(),
                }),
            ],
        };
        assert!(list.matches(&row("S1", Some(("c", "v")))));
        assert!(!list.matches(&row("S1", None)));
        assert!(!list.matches(&row("D1", Some(("c", "v")))));
    }
}
