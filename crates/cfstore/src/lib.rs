//! # cfstore — a miniature HBase
//!
//! The storage substrate for the PStorM profile store: a column-family
//! store with row-key-ordered regions, median-key region splits, a META
//! catalog, multi-version cells, and — crucially for PStorM — *server-side
//! filter pushdown* with parallel region scans (§5.3 of the paper).
//!
//! Since PR 4 the store is also durable (DESIGN.md §11): mutations are
//! write-ahead logged before they apply, flushes persist immutable
//! checksummed segment files per region behind an atomically swapped
//! MANIFEST, and reopening a store directory replays the WAL tail over
//! the loaded segments — truncating (and accounting for) any torn tail a
//! crash left behind. Crash points are injected deterministically via
//! [`CrashSpec`] so property tests can enumerate "crash anywhere,
//! reopen, invariants hold".
//!
//! Since PR 6 the read and write hot paths are lazy and asynchronous:
//! reopening a flushed store keeps clean regions *segment-backed* — rows
//! are read block-at-a-time through a bounded LRU [`BlockCache`] instead
//! of being materialized wholesale — and flushes can run on a background
//! flusher thread with a compaction policy that rewrites only dirty
//! regions, reusing clean segments by reference (DESIGN.md §12).
//!
//! * [`kv`] — cells, puts, row results.
//! * [`filter`] — pushdown predicates (`RowPrefixFilter`,
//!   `SingleColumnValueFilter`, arbitrary predicates, conjunctions).
//! * [`region`] — sorted row partitions with scan metrics and splits.
//! * [`store`] — tables, META, the client API, durable mode.
//! * [`shard`] — N replicated store shards behind one API: commit rule,
//!   read-path healing, whole-shard rebuild (DESIGN.md §13), and
//!   crash-safe online resharding (DESIGN.md §15).
//! * [`wal`] — the length+CRC-framed write-ahead log and crash injection.
//! * [`segment`] — immutable sorted segment files with block checksums.
//! * [`blockcache`] — the bounded deterministic LRU over segment blocks.
//! * [`recovery`] — the reopen path: manifest, replay, `RecoveryReport`.
//! * [`encoding`] — the binary codec for cell values.

pub mod blockcache;
pub mod encoding;
pub mod filter;
pub mod kv;
pub mod recovery;
pub mod region;
pub mod segment;
pub mod shard;
pub mod store;
pub mod wal;

pub use blockcache::{BlockCache, BlockCacheStats};
pub use filter::{
    CompareOp, Filter, FilterList, PredicateFilter, RowPrefixFilter, SingleColumnValueFilter,
};
pub use kv::{CellVersion, Put, RowResult};
pub use recovery::{Manifest, RecoveryError, RecoveryReport};
pub use region::{KeyRange, Region, RowData, ScanMetrics};
pub use segment::{SegmentError, SegmentReader};
pub use shard::resharding::{Reshard, ReshardPhase, ReshardStatus, Topology};
pub use shard::{ShardOptions, ShardedMeta, ShardedRecoveryReport, ShardedStore};
pub use store::{MetaEntry, MiniStore, Scan, StoreError, StoreOptions};
pub use wal::{CrashSpec, SyncPolicy, WalTruncation};
