//! # cfstore — a miniature HBase
//!
//! The storage substrate for the PStorM profile store: a column-family
//! store with row-key-ordered regions, median-key region splits, a META
//! catalog, multi-version cells, and — crucially for PStorM — *server-side
//! filter pushdown* with parallel region scans (§5.3 of the paper).
//!
//! * [`kv`] — cells, puts, row results.
//! * [`filter`] — pushdown predicates (`RowPrefixFilter`,
//!   `SingleColumnValueFilter`, arbitrary predicates, conjunctions).
//! * [`region`] — sorted row partitions with scan metrics and splits.
//! * [`store`] — tables, META, the client API.
//! * [`encoding`] — the binary codec for cell values.

pub mod encoding;
pub mod filter;
pub mod kv;
pub mod region;
pub mod store;

pub use filter::{
    CompareOp, Filter, FilterList, PredicateFilter, RowPrefixFilter, SingleColumnValueFilter,
};
pub use kv::{CellVersion, Put, RowResult};
pub use region::{KeyRange, Region, ScanMetrics};
pub use store::{MetaEntry, MiniStore, Scan, StoreError};
