//! Cell-value encoding.
//!
//! HBase cells are raw bytes; this module provides the small binary codec
//! PStorM uses to serialize feature values and profiles into cells, with
//! order-preserving encodings where sort order matters (f64 keys).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes while decoding.
    Truncated,
    /// A tag byte did not match any known variant.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A tenant id failed [`validate_tenant`] (empty, too long, or
    /// containing a character outside `[A-Za-z0-9_.-]`).
    BadTenant(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated value"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in encoded string"),
            CodecError::BadTenant(t) => write!(
                f,
                "invalid tenant id {t:?} (want 1..={MAX_TENANT_LEN} chars of [A-Za-z0-9_.-])"
            ),
        }
    }
}
impl std::error::Error for CodecError {}

/// The implicit tenant that every legacy single-tenant path maps to. Its
/// namespace prefix is the **empty string**, so default-tenant row keys
/// are byte-for-byte the original single-tenant layout — golden traces
/// and on-disk stores written before multi-tenancy keep working unchanged.
pub const DEFAULT_TENANT: &str = "default";

/// Maximum tenant id length accepted by [`validate_tenant`].
pub const MAX_TENANT_LEN: usize = 64;

/// Check that a tenant id is well-formed: non-empty, at most
/// [`MAX_TENANT_LEN`] bytes, drawn from `[A-Za-z0-9_.-]`. The character
/// set deliberately excludes `/` — the row-key namespace separator — so a
/// tenant id can never smuggle extra path segments into a key.
pub fn validate_tenant(tenant: &str) -> Result<(), CodecError> {
    let ok = !tenant.is_empty()
        && tenant.len() <= MAX_TENANT_LEN
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(CodecError::BadTenant(tenant.to_string()))
    }
}

/// The row-key namespace prefix of a tenant.
///
/// [`DEFAULT_TENANT`] maps to the empty prefix (the legacy key layout);
/// any other valid tenant `x` maps to `t/x/`. The `t/` envelope cannot
/// collide with the feature-type prefixes (`Static/`, `Dynamic/`,
/// `CostFactor/`, `Profile/`, `Meta/`, `Plan/`), and the trailing slash
/// guarantees prefix-freedom between tenants (`t/a/` never prefixes
/// `t/ab/...`).
///
/// # Examples
///
/// ```
/// use cfstore::encoding::{split_tenant, tenant_prefix, DEFAULT_TENANT};
///
/// assert_eq!(tenant_prefix(DEFAULT_TENANT).unwrap(), "");
/// assert_eq!(tenant_prefix("acme").unwrap(), "t/acme/");
/// assert!(tenant_prefix("no/slashes").is_err());
/// assert!(tenant_prefix("").is_err());
///
/// // The decode direction: every key splits into (tenant, legacy key).
/// assert_eq!(split_tenant(b"t/acme/Profile/wc"), ("acme", &b"Profile/wc"[..]));
/// assert_eq!(split_tenant(b"Profile/wc"), (DEFAULT_TENANT, &b"Profile/wc"[..]));
/// ```
pub fn tenant_prefix(tenant: &str) -> Result<String, CodecError> {
    validate_tenant(tenant)?;
    if tenant == DEFAULT_TENANT {
        Ok(String::new())
    } else {
        Ok(format!("t/{tenant}/"))
    }
}

/// Split a row key into `(tenant, namespace-relative key)` — the inverse
/// of prepending [`tenant_prefix`]. Keys without a well-formed `t/<id>/`
/// envelope (including every legacy key) belong to [`DEFAULT_TENANT`] and
/// are returned whole.
pub fn split_tenant(row: &[u8]) -> (&str, &[u8]) {
    if let Some(rest) = row.strip_prefix(b"t/") {
        if let Some(slash) = rest.iter().position(|b| *b == b'/') {
            if let Ok(tenant) = std::str::from_utf8(&rest[..slash]) {
                if validate_tenant(tenant).is_ok() {
                    return (tenant, &rest[slash + 1..]);
                }
            }
        }
    }
    (DEFAULT_TENANT, row)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time so the integrity checks need no runtime initialisation.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) checksum over a byte slice — the per-cell integrity
/// check stamped on every stored [`crate::kv::CellVersion`].
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Encode an `f64` as 8 big-endian bytes whose bytewise order matches the
/// numeric order (IEEE sign-flip trick). Used for normalization bounds and
/// numeric feature cells.
pub fn encode_f64(v: f64) -> Bytes {
    let bits = v.to_bits();
    let flipped = if bits >> 63 == 0 {
        bits ^ (1 << 63)
    } else {
        !bits
    };
    let mut b = BytesMut::with_capacity(8);
    b.put_u64(flipped);
    b.freeze()
}

/// Decode an order-preserving `f64`.
pub fn decode_f64(bytes: &[u8]) -> Result<f64, CodecError> {
    if bytes.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let mut buf = bytes;
    let flipped = buf.get_u64();
    let bits = if flipped >> 63 == 1 {
        flipped ^ (1 << 63)
    } else {
        !flipped
    };
    Ok(f64::from_bits(bits))
}

/// Encode a UTF-8 string with a u32 length prefix.
pub fn encode_str(s: &str) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + s.len());
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
    b.freeze()
}

/// Decode a length-prefixed string, returning the remainder.
pub fn decode_str(bytes: &[u8]) -> Result<(String, &[u8]), CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let mut buf = bytes;
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err(CodecError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| CodecError::BadUtf8)?;
    Ok((s.to_string(), &buf[len..]))
}

/// Encode a vector of f64s with a u32 count prefix.
pub fn encode_f64_vec(v: &[f64]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + v.len() * 8);
    b.put_u32(v.len() as u32);
    for x in v {
        b.put_f64(*x);
    }
    b.freeze()
}

/// Decode a vector of f64s.
pub fn decode_f64_vec(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let mut buf = bytes;
    let n = buf.get_u32() as usize;
    if buf.len() < n * 8 {
        return Err(CodecError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f64()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        for v in [-1e30, -1.5, -0.0, 0.0, 1e-300, 2.5, 7.1e18] {
            let enc = encode_f64(v);
            assert_eq!(decode_f64(&enc).unwrap(), v);
        }
    }

    #[test]
    fn f64_encoding_is_order_preserving() {
        let vals = [-100.0, -1.0, -0.5, 0.0, 0.25, 1.0, 1e9];
        let encs: Vec<Bytes> = vals.iter().map(|v| encode_f64(*v)).collect();
        for w in encs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn str_roundtrip_with_remainder() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&encode_str("hello"));
        b.extend_from_slice(b"REST");
        let (s, rest) = decode_str(&b).unwrap();
        assert_eq!(s, "hello");
        assert_eq!(rest, b"REST");
    }

    #[test]
    fn f64_vec_roundtrip() {
        let v = vec![1.0, 2.5, -3.75];
        assert_eq!(decode_f64_vec(&encode_f64_vec(&v)).unwrap(), v);
        assert_eq!(
            decode_f64_vec(&encode_f64_vec(&[])).unwrap(),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // Single-bit flips change the checksum.
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }

    #[test]
    fn tenant_prefix_roundtrips_through_split() {
        for tenant in ["acme", "zen-corp", "a", "T.9_x"] {
            let prefix = tenant_prefix(tenant).unwrap();
            let key = format!("{prefix}Profile/wc");
            assert_eq!(split_tenant(key.as_bytes()), (tenant, &b"Profile/wc"[..]));
        }
        // The default tenant is the empty prefix: legacy layout.
        assert_eq!(tenant_prefix(DEFAULT_TENANT).unwrap(), "");
        assert_eq!(
            split_tenant(b"Dynamic/wc"),
            (DEFAULT_TENANT, &b"Dynamic/wc"[..])
        );
    }

    #[test]
    fn tenant_prefixes_are_prefix_free() {
        let a = tenant_prefix("a").unwrap();
        let ab = tenant_prefix("ab").unwrap();
        assert!(!ab.starts_with(&a), "{a:?} must not prefix {ab:?}");
    }

    #[test]
    fn bad_tenant_ids_are_rejected() {
        for bad in ["", "a/b", "a b", "t/x", "ü", &"x".repeat(65)] {
            assert!(
                matches!(tenant_prefix(bad), Err(CodecError::BadTenant(_))),
                "{bad:?} should be rejected"
            );
        }
        // A malformed envelope decodes as a default-tenant key, whole.
        assert_eq!(
            split_tenant(b"t/no-close"),
            (DEFAULT_TENANT, &b"t/no-close"[..])
        );
        assert_eq!(split_tenant(b"t//x"), (DEFAULT_TENANT, &b"t//x"[..]));
    }

    #[test]
    fn truncated_inputs_error() {
        assert_eq!(decode_f64(&[1, 2, 3]).unwrap_err(), CodecError::Truncated);
        assert_eq!(
            decode_str(&[0, 0, 0, 9, b'x']).unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(
            decode_f64_vec(&[0, 0, 0, 2, 0]).unwrap_err(),
            CodecError::Truncated
        );
    }
}
