//! Online, crash-proven topology changes for [`ShardedStore`]
//! (DESIGN.md §15).
//!
//! A [`Reshard`] plan — grow/shrink N, change R, or rebalance hot slots
//! — executes as an epoch-stamped state machine journaled in the
//! `TOPOLOGY` file next to the `SHARDS` catalog:
//!
//! ```text
//! Prepare ── Begin{epoch, old, new}         (journal append, new dirs)
//!    │
//! Copy ───── Copied{epoch, unit} per unit   (merge-install + flush)
//!    │
//! Verify ─── Verified{epoch}                (target vs. old-placement truth)
//!    │
//! Cutover ── Cutover{epoch}                 (THE atomic commit point)
//!    │
//! GC ─────── prune → swap SHARDS → cleanup  (idempotent, journal deleted)
//! ```
//!
//! Between `Begin` and `Cutover` the store keeps serving: reads consult
//! the old-epoch placement only, while writes are **dual-applied** to
//! the union of old and new replica sets under the same global gsn and
//! clock, so every copy of a row stays bit-identical. Appending the
//! `Cutover` record is the commit point: a crash that tears it reopens
//! into the old epoch, a crash after it reopens into the new one, and
//! in either case the journal makes the migration resumable — every
//! step is idempotent, so redoing a half-finished unit is harmless.
//!
//! The journal uses the WAL's framing discipline (`len · crc32 · body`
//! behind a file magic): a torn tail is truncated and resolved, while a
//! CRC-valid-but-undecodable record or a bad file magic is *unresolvable*
//! — no crash of our writer can produce it — and `store_fsck` reports it
//! with exit code 3.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use super::{shard_dir_name, GlobalState, ShardedInner, ShardedMeta, ShardedStore};
use crate::recovery::RecoveryError;
use crate::region::RowData;
use crate::store::StoreError;

/// The resharding journal file at the root of a sharded store directory.
pub const TOPOLOGY_FILE: &str = "TOPOLOGY";
/// `"TOP1"` — magic prefix of the journal file.
const TOPOLOGY_MAGIC: u32 = 0x544f_5031;

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

/// A placement topology: shard count, replication factor, and optional
/// per-slot replica-set overrides (the rebalance mechanism — a hot slot
/// can be pinned to an explicit replica set instead of the default
/// `{s, s+1, …}` window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    pub shards: u32,
    pub replication: u32,
    /// `slot → replica set` exceptions to the modular default.
    pub overrides: BTreeMap<u32, Vec<u32>>,
}

impl Topology {
    /// The default modular placement with no overrides.
    pub fn uniform(shards: u32, replication: u32) -> Self {
        Topology {
            shards,
            replication,
            overrides: BTreeMap::new(),
        }
    }

    /// The slot a row key hashes to under this topology.
    pub fn slot_of_row(&self, row: &[u8]) -> u32 {
        super::slot_of(row, self.shards)
    }

    /// The replica set of a slot, primary first.
    pub fn replicas(&self, slot: u32) -> Vec<u32> {
        match self.overrides.get(&slot) {
            Some(set) => set.clone(),
            None => super::replica_set(slot, self.shards, self.replication),
        }
    }

    /// The replica set of a row, primary first.
    pub fn replicas_of_row(&self, row: &[u8]) -> Vec<u32> {
        self.replicas(self.slot_of_row(row))
    }

    /// Whether `shard` holds a copy of `row` under this topology.
    pub fn owns(&self, shard: u32, row: &[u8]) -> bool {
        self.replicas_of_row(row).contains(&shard)
    }

    /// Structural validity: `1 ≤ R ≤ N`, overrides name real slots and
    /// distinct in-range shards, and each override keeps R copies.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 || self.replication == 0 || self.replication > self.shards {
            return Err(format!(
                "invalid shard layout: {} shards, replication {}",
                self.shards, self.replication
            ));
        }
        for (slot, set) in &self.overrides {
            if *slot >= self.shards {
                return Err(format!("override for slot {slot} ≥ {} shards", self.shards));
            }
            let unique: BTreeSet<u32> = set.iter().copied().collect();
            if set.len() != self.replication as usize
                || unique.len() != set.len()
                || set.iter().any(|g| *g >= self.shards)
            {
                return Err(format!(
                    "override for slot {slot} must name {} distinct shards < {}",
                    self.replication, self.shards
                ));
            }
        }
        Ok(())
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.shards.to_be_bytes());
        out.extend_from_slice(&self.replication.to_be_bytes());
        out.extend_from_slice(&(self.overrides.len() as u32).to_be_bytes());
        for (slot, set) in &self.overrides {
            out.extend_from_slice(&slot.to_be_bytes());
            out.extend_from_slice(&(set.len() as u32).to_be_bytes());
            for g in set {
                out.extend_from_slice(&g.to_be_bytes());
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let shards = take_u32(buf, pos)?;
        let replication = take_u32(buf, pos)?;
        let count = take_u32(buf, pos)?;
        let mut overrides = BTreeMap::new();
        for _ in 0..count {
            let slot = take_u32(buf, pos)?;
            let len = take_u32(buf, pos)?;
            let mut set = Vec::with_capacity(len as usize);
            for _ in 0..len {
                set.push(take_u32(buf, pos)?);
            }
            overrides.insert(slot, set);
        }
        Some(Topology {
            shards,
            replication,
            overrides,
        })
    }
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_be_bytes(b.try_into().ok()?))
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_be_bytes(b.try_into().ok()?))
}

// ---------------------------------------------------------------------
// SHARDS catalog v2
// ---------------------------------------------------------------------

/// The decoded `SHARDS` catalog: the steady-state topology and the
/// epoch of the last completed reshard (0 at creation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    pub topology: Topology,
    pub epoch: u64,
}

/// Write the catalog atomically (tmp + rename). Epoch-0 topologies with
/// no overrides use the original 8-byte v1 body so pre-reshard layouts
/// stay byte-identical; anything richer appends `epoch · overrides`.
pub(crate) fn write_catalog(dir: &Path, catalog: &Catalog) -> std::io::Result<()> {
    let mut body = Vec::with_capacity(8);
    body.extend_from_slice(&catalog.topology.shards.to_be_bytes());
    body.extend_from_slice(&catalog.topology.replication.to_be_bytes());
    if catalog.epoch != 0 || !catalog.topology.overrides.is_empty() {
        body.extend_from_slice(&catalog.epoch.to_be_bytes());
        body.extend_from_slice(&(catalog.topology.overrides.len() as u32).to_be_bytes());
        for (slot, set) in &catalog.topology.overrides {
            body.extend_from_slice(&slot.to_be_bytes());
            body.extend_from_slice(&(set.len() as u32).to_be_bytes());
            for g in set {
                body.extend_from_slice(&g.to_be_bytes());
            }
        }
    }
    let mut buf = Vec::with_capacity(12 + body.len());
    buf.extend_from_slice(&super::SHARDS_MAGIC.to_be_bytes());
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crate::encoding::crc32(&body).to_be_bytes());
    buf.extend_from_slice(&body);
    let tmp = dir.join("SHARDS.tmp");
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, dir.join(super::SHARDS_FILE))
}

/// Read the catalog: `Ok(None)` when absent (fresh directory). Both the
/// v1 8-byte body and the extended epoch/overrides body decode.
pub fn read_catalog(dir: &Path) -> Result<Option<Catalog>, RecoveryError> {
    let path = dir.join(super::SHARDS_FILE);
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(RecoveryError::Io {
                path: path.display().to_string(),
                source: e,
            })
        }
    };
    let corrupt = |detail: &str| RecoveryError::ManifestCorrupt {
        path: path.display().to_string(),
        detail: detail.to_string(),
    };
    if data.len() < 12 || data[0..4] != super::SHARDS_MAGIC.to_be_bytes() {
        return Err(corrupt("bad magic or truncated header"));
    }
    let len = u32::from_be_bytes(data[4..8].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(data[8..12].try_into().expect("4 bytes"));
    if data.len() != 12 + len || len < 8 {
        return Err(corrupt("bad body length"));
    }
    let body = &data[12..];
    if crate::encoding::crc32(body) != crc {
        return Err(corrupt("body checksum mismatch"));
    }
    let mut pos = 0usize;
    let shards = take_u32(body, &mut pos).expect("len ≥ 8");
    let replication = take_u32(body, &mut pos).expect("len ≥ 8");
    let (epoch, overrides) = if pos == body.len() {
        (0, BTreeMap::new())
    } else {
        let epoch = take_u64(body, &mut pos).ok_or_else(|| corrupt("truncated epoch"))?;
        let count = take_u32(body, &mut pos).ok_or_else(|| corrupt("truncated overrides"))?;
        let mut overrides = BTreeMap::new();
        for _ in 0..count {
            let slot = take_u32(body, &mut pos).ok_or_else(|| corrupt("truncated override"))?;
            let n = take_u32(body, &mut pos).ok_or_else(|| corrupt("truncated override"))?;
            let mut set = Vec::with_capacity(n as usize);
            for _ in 0..n {
                set.push(take_u32(body, &mut pos).ok_or_else(|| corrupt("truncated override"))?);
            }
            overrides.insert(slot, set);
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes after overrides"));
        }
        (epoch, overrides)
    };
    Ok(Some(Catalog {
        topology: Topology {
            shards,
            replication,
            overrides,
        },
        epoch,
    }))
}

// ---------------------------------------------------------------------
// TOPOLOGY journal
// ---------------------------------------------------------------------

/// One journal record. The writer appends them strictly in protocol
/// order; [`resolve_journal`] rejects any sequence the protocol cannot
/// produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A reshard began: old and new topologies, stamped with the epoch
    /// the new topology will carry.
    Begin {
        epoch: u64,
        old: Topology,
        new: Topology,
    },
    /// Target shard `unit` holds (and has flushed) its complete
    /// new-epoch ownership.
    Copied { epoch: u64, unit: u32 },
    /// A previously-`Copied` unit lost its shard to a crash; reopen
    /// appends this so the resume re-copies it.
    Invalidated { epoch: u64, unit: u32 },
    /// Every unit compared clean against old-placement truth.
    Verified { epoch: u64 },
    /// THE commit point: reads and writes switch to the new topology.
    Cutover { epoch: u64 },
}

const TAG_BEGIN: u8 = 1;
const TAG_COPIED: u8 = 2;
const TAG_INVALIDATED: u8 = 3;
const TAG_VERIFIED: u8 = 4;
const TAG_CUTOVER: u8 = 5;

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            JournalRecord::Begin { epoch, old, new } => {
                b.push(TAG_BEGIN);
                b.extend_from_slice(&epoch.to_be_bytes());
                old.encode(&mut b);
                new.encode(&mut b);
            }
            JournalRecord::Copied { epoch, unit } => {
                b.push(TAG_COPIED);
                b.extend_from_slice(&epoch.to_be_bytes());
                b.extend_from_slice(&unit.to_be_bytes());
            }
            JournalRecord::Invalidated { epoch, unit } => {
                b.push(TAG_INVALIDATED);
                b.extend_from_slice(&epoch.to_be_bytes());
                b.extend_from_slice(&unit.to_be_bytes());
            }
            JournalRecord::Verified { epoch } => {
                b.push(TAG_VERIFIED);
                b.extend_from_slice(&epoch.to_be_bytes());
            }
            JournalRecord::Cutover { epoch } => {
                b.push(TAG_CUTOVER);
                b.extend_from_slice(&epoch.to_be_bytes());
            }
        }
        b
    }

    fn decode(body: &[u8]) -> Option<Self> {
        let tag = *body.first()?;
        let mut pos = 1usize;
        let epoch = take_u64(body, &mut pos)?;
        let rec = match tag {
            TAG_BEGIN => {
                let old = Topology::decode(body, &mut pos)?;
                let new = Topology::decode(body, &mut pos)?;
                JournalRecord::Begin { epoch, old, new }
            }
            TAG_COPIED => JournalRecord::Copied {
                epoch,
                unit: take_u32(body, &mut pos)?,
            },
            TAG_INVALIDATED => JournalRecord::Invalidated {
                epoch,
                unit: take_u32(body, &mut pos)?,
            },
            TAG_VERIFIED => JournalRecord::Verified { epoch },
            TAG_CUTOVER => JournalRecord::Cutover { epoch },
            _ => return None,
        };
        if pos != body.len() {
            return None;
        }
        Some(rec)
    }
}

/// What a raw read of the `TOPOLOGY` file found.
#[derive(Debug)]
pub struct JournalScan {
    /// Intact records, append order (the torn tail is dropped).
    pub records: Vec<JournalRecord>,
    /// Bytes up to the end of the last intact frame; reopen truncates
    /// the file here before resuming.
    pub valid_bytes: u64,
    /// Physical file length.
    pub total_bytes: u64,
}

/// Read the journal. `Ok(None)` when absent. A torn tail (short frame,
/// CRC mismatch, or a header shorter than the magic) is *resolvable* —
/// it is dropped and reported via `valid_bytes < total_bytes`. A wrong
/// magic or a CRC-valid record that fails to decode is **unresolvable**
/// (no crash of our writer produces it) and errors.
pub fn read_journal(dir: &Path) -> Result<Option<JournalScan>, RecoveryError> {
    let path = dir.join(TOPOLOGY_FILE);
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(RecoveryError::Io {
                path: path.display().to_string(),
                source: e,
            })
        }
    };
    let corrupt = |detail: String| RecoveryError::ManifestCorrupt {
        path: path.display().to_string(),
        detail,
    };
    let total_bytes = data.len() as u64;
    if data.len() < 4 {
        // A torn header write: nothing usable, nothing migrating.
        return Ok(Some(JournalScan {
            records: Vec::new(),
            valid_bytes: 0,
            total_bytes,
        }));
    }
    if data[0..4] != TOPOLOGY_MAGIC.to_be_bytes() {
        return Err(corrupt("bad TOPOLOGY magic".to_string()));
    }
    let mut records = Vec::new();
    let mut pos = 4usize;
    let mut valid_bytes = 4u64;
    while pos + 8 <= data.len() {
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > data.len() {
            break; // torn tail
        }
        let body = &data[pos + 8..pos + 8 + len];
        if crate::encoding::crc32(body) != crc {
            break; // torn tail
        }
        let rec = JournalRecord::decode(body).ok_or_else(|| {
            corrupt(format!(
                "CRC-valid record at offset {pos} does not decode — \
                 not producible by a crash"
            ))
        })?;
        records.push(rec);
        pos += 8 + len;
        valid_bytes = pos as u64;
    }
    Ok(Some(JournalScan {
        records,
        valid_bytes,
        total_bytes,
    }))
}

/// Where a journal leaves the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// No `Begin` record — no migration (an empty or header-only file
    /// left by a crash during `Prepare`; reopen deletes it).
    None,
    /// Migration in flight, commit point not reached: the old topology
    /// is active and `copied` units can be skipped on resume.
    PreCutover {
        epoch: u64,
        old: Topology,
        new: Topology,
        copied: BTreeSet<u32>,
        verified: bool,
    },
    /// Commit point reached: the new topology is active; only GC
    /// remains.
    PostCutover {
        epoch: u64,
        old: Topology,
        new: Topology,
    },
}

/// Interpret an intact record sequence, rejecting anything the
/// protocol's writer cannot have produced (those are unresolvable
/// corruption, not crash states).
pub fn resolve_journal(records: &[JournalRecord]) -> Result<Resolution, String> {
    let Some(first) = records.first() else {
        return Ok(Resolution::None);
    };
    let JournalRecord::Begin { epoch, old, new } = first else {
        return Err("journal does not start with Begin".to_string());
    };
    old.validate()?;
    new.validate()?;
    let (epoch, old, new) = (*epoch, old.clone(), new.clone());
    let mut copied: BTreeSet<u32> = BTreeSet::new();
    let mut verified = false;
    let mut cut_over = false;
    for rec in &records[1..] {
        if cut_over {
            return Err("journal records after Cutover".to_string());
        }
        match rec {
            JournalRecord::Begin { .. } => return Err("second Begin in journal".to_string()),
            JournalRecord::Copied { epoch: e, unit } => {
                if *e != epoch || *unit >= new.shards {
                    return Err(format!("Copied({e}, {unit}) contradicts Begin"));
                }
                copied.insert(*unit);
            }
            JournalRecord::Invalidated { epoch: e, unit } => {
                if *e != epoch || *unit >= new.shards {
                    return Err(format!("Invalidated({e}, {unit}) contradicts Begin"));
                }
                copied.remove(unit);
                verified = false;
            }
            JournalRecord::Verified { epoch: e } => {
                if *e != epoch {
                    return Err(format!("Verified({e}) contradicts Begin epoch {epoch}"));
                }
                verified = true;
            }
            JournalRecord::Cutover { epoch: e } => {
                if *e != epoch {
                    return Err(format!("Cutover({e}) contradicts Begin epoch {epoch}"));
                }
                if !verified {
                    return Err("Cutover without Verified".to_string());
                }
                cut_over = true;
            }
        }
    }
    Ok(if cut_over {
        Resolution::PostCutover { epoch, old, new }
    } else {
        Resolution::PreCutover {
            epoch,
            old,
            new,
            copied,
            verified,
        }
    })
}

/// Append-only journal writer with the same crash-injection discipline
/// as the WAL: `crash_after_bytes` counts cumulative `TOPOLOGY` bytes
/// written this session and tears the append that crosses the budget.
pub(crate) struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
    bytes_written: u64,
    crash_after_bytes: Option<u64>,
    crashed: bool,
}

impl JournalWriter {
    /// Create a fresh journal (truncating any stale file) and write the
    /// file magic. The magic counts against the crash budget too — a
    /// torn header resolves to "no migration".
    pub(crate) fn create(dir: &Path, crash_after_bytes: Option<u64>) -> Result<Self, StoreError> {
        let path = dir.join(TOPOLOGY_FILE);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", path.display())))?;
        let mut w = JournalWriter {
            file,
            path,
            bytes_written: 0,
            crash_after_bytes,
            crashed: false,
        };
        w.write_through(&TOPOLOGY_MAGIC.to_be_bytes())?;
        Ok(w)
    }

    /// Reattach to an existing journal, truncating a torn tail first.
    pub(crate) fn open_existing(
        dir: &Path,
        valid_bytes: u64,
        crash_after_bytes: Option<u64>,
    ) -> Result<Self, StoreError> {
        let path = dir.join(TOPOLOGY_FILE);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
        file.set_len(valid_bytes)
            .and_then(|()| file.sync_all())
            .map_err(|e| StoreError::Io(format!("truncate {}: {e}", path.display())))?;
        use std::io::Seek as _;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| StoreError::Io(format!("seek {}: {e}", path.display())))?;
        Ok(JournalWriter {
            file,
            path,
            bytes_written: 0,
            crash_after_bytes,
            crashed: false,
        })
    }

    pub(crate) fn append(&mut self, rec: &JournalRecord) -> Result<(), StoreError> {
        let body = rec.encode();
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crate::encoding::crc32(&body).to_be_bytes());
        frame.extend_from_slice(&body);
        self.write_through(&frame)
    }

    /// Write with the crash budget applied: if the budget lands inside
    /// `buf`, only the prefix reaches the file (then fsync — the torn
    /// bytes are durable, exactly like a real power cut mid-write).
    fn write_through(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        let io = |e: std::io::Error| StoreError::Io(format!("{}: {e}", self.path.display()));
        if let Some(budget) = self.crash_after_bytes {
            let remaining = budget.saturating_sub(self.bytes_written);
            if (buf.len() as u64) > remaining {
                let keep = &buf[..remaining as usize];
                if !keep.is_empty() {
                    self.file.write_all(keep).map_err(io)?;
                }
                self.file.sync_all().map_err(io)?;
                self.bytes_written += remaining;
                self.crashed = true;
                return Err(StoreError::Crashed);
            }
        }
        self.file.write_all(buf).map_err(io)?;
        self.file.sync_all().map_err(io)?;
        self.bytes_written += buf.len() as u64;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Plans and status
// ---------------------------------------------------------------------

/// A requested topology change: the *target* topology. Build with
/// [`Reshard::to`] (grow/shrink/R-change) and optionally pin hot slots
/// with [`Reshard::with_override`], or derive a rebalance plan from
/// read-amp counters with [`rebalance_hot_slots`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reshard {
    pub shards: u32,
    pub replication: u32,
    pub overrides: BTreeMap<u32, Vec<u32>>,
}

impl Reshard {
    /// Target `shards × replication` with default placement.
    pub fn to(shards: u32, replication: u32) -> Self {
        Reshard {
            shards,
            replication,
            overrides: BTreeMap::new(),
        }
    }

    /// Pin one slot's replica set explicitly.
    pub fn with_override(mut self, slot: u32, replicas: Vec<u32>) -> Self {
        self.overrides.insert(slot, replicas);
        self
    }

    pub(crate) fn into_topology(self) -> Topology {
        Topology {
            shards: self.shards,
            replication: self.replication,
            overrides: self.overrides,
        }
    }
}

/// Derive a rebalance plan from the per-region read-amplification
/// counters (`cfstore.region.<id>.rows_scanned`): slots whose primary is
/// the most-scanned shard are re-pinned onto a replica window starting
/// at the least-scanned shard. Returns `None` when the counters show no
/// imbalance (or are absent).
pub fn rebalance_hot_slots(
    meta: &ShardedMeta,
    counters: &BTreeMap<String, u64>,
    max_moves: usize,
) -> Option<Reshard> {
    let mut load = vec![0u64; meta.shards as usize];
    for (shard, entry) in &meta.regions {
        let key = format!("cfstore.region.{}.rows_scanned", entry.region_id);
        load[*shard as usize] += counters.get(&key).copied().unwrap_or(0);
    }
    let hottest = (0..meta.shards).max_by_key(|g| load[*g as usize])?;
    let coldest = (0..meta.shards).min_by_key(|g| load[*g as usize])?;
    if load[hottest as usize] == load[coldest as usize] {
        return None;
    }
    let mut plan = Reshard::to(meta.shards, meta.replication);
    let mut moves = 0usize;
    for (slot, set) in meta.placement.iter().enumerate() {
        if moves >= max_moves {
            break;
        }
        if set.first() == Some(&hottest) {
            let new_set: Vec<u32> = (0..meta.replication)
                .map(|j| (coldest + j) % meta.shards)
                .collect();
            if new_set != *set {
                plan = plan.with_override(slot as u32, new_set);
                moves += 1;
            }
        }
    }
    if moves == 0 {
        None
    } else {
        Some(plan)
    }
}

/// Where a migration stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardPhase {
    /// Copying units into their new-epoch placement.
    Copy,
    /// All units copied; verifying against old-placement truth.
    Verify,
    /// Verified; the next step appends the `Cutover` record.
    Cutover,
    /// Cut over; pruning, catalog swap, and cleanup remain.
    Gc,
    /// Migration complete, journal deleted.
    Done,
}

/// A point-in-time summary of a migration (also the return value of the
/// driving calls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardStatus {
    pub epoch: u64,
    pub phase: ReshardPhase,
    /// Copy units in the target topology (= its shard count).
    pub units_total: u32,
    pub units_copied: u32,
    /// Rows merge-installed by this store handle (not carried across
    /// reopens — the journal, not this number, is the source of truth).
    pub rows_copied: u64,
}

/// Crate-internal in-flight migration state (behind the global lock).
pub(crate) struct Migration {
    pub(crate) epoch: u64,
    pub(crate) target: Topology,
    pub(crate) copied: BTreeSet<u32>,
    pub(crate) verified: bool,
    pub(crate) cut_over: bool,
    pub(crate) gc_pruned: bool,
    pub(crate) catalog_swapped: bool,
    pub(crate) rows_copied: u64,
    pub(crate) journal: JournalWriter,
}

impl Migration {
    pub(crate) fn status(&self) -> ReshardStatus {
        let phase = if !self.cut_over {
            if (self.copied.len() as u32) < self.target.shards {
                ReshardPhase::Copy
            } else if !self.verified {
                ReshardPhase::Verify
            } else {
                ReshardPhase::Cutover
            }
        } else {
            ReshardPhase::Gc
        };
        ReshardStatus {
            epoch: self.epoch,
            phase,
            units_total: self.target.shards,
            units_copied: self.copied.len() as u32,
            rows_copied: self.rows_copied,
        }
    }
}

// ---------------------------------------------------------------------
// The state machine
// ---------------------------------------------------------------------

impl ShardedStore {
    /// Start a reshard: validate the plan, journal `Begin`, and create
    /// (grow) any missing target shard directories with the current
    /// schemas. Returns without copying — drive the migration with
    /// [`ShardedStore::reshard_step`] / [`ShardedStore::resume_reshard`],
    /// or use [`ShardedStore::reshard`] to run it to completion.
    pub fn begin_reshard(&self, plan: Reshard) -> Result<ReshardStatus, StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if st.poisoned {
            return Err(StoreError::Crashed);
        }
        if st.migration.is_some() {
            return Err(StoreError::Io(
                "a reshard is already in flight; resume or abort it first".to_string(),
            ));
        }
        let target = plan.into_topology();
        target.validate().map_err(StoreError::Io)?;
        if target == st.active {
            return Err(StoreError::Io(
                "reshard target equals the active topology".to_string(),
            ));
        }
        let epoch = st.epoch + 1;
        let mut journal = JournalWriter::create(&inner.dir, inner.crash_topology)?;
        let begin = JournalRecord::Begin {
            epoch,
            old: st.active.clone(),
            new: target.clone(),
        };
        if let Err(e) = journal.append(&begin) {
            if e == StoreError::Crashed {
                st.poisoned = true;
            }
            return Err(e);
        }
        // Grow: open the new shard directories and mirror every schema,
        // flushed so the shards are durably nonempty before any write
        // names them as participants.
        if let Err(e) = ensure_target_shards(inner, &mut st, &target) {
            st.poisoned = true;
            return Err(e);
        }
        st.migration = Some(Migration {
            epoch,
            target,
            copied: BTreeSet::new(),
            verified: false,
            cut_over: false,
            gc_pruned: false,
            catalog_swapped: false,
            rows_copied: 0,
            journal,
        });
        inner.obs().incr("cfstore.reshard.begins", 1);
        Ok(st.migration.as_ref().expect("just set").status())
    }

    /// Advance the in-flight migration by one unit of work: copy one
    /// target shard, verify, cut over, or one GC step. Each step is
    /// idempotent against the journal, so a crash between (or inside)
    /// steps is always resumable. The global lock is released between
    /// calls — interleave reads and writes freely.
    pub fn reshard_step(&self) -> Result<ReshardStatus, StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if st.poisoned {
            return Err(StoreError::Crashed);
        }
        if st.migration.is_none() {
            return Err(StoreError::Io("no reshard in flight".to_string()));
        }
        let result = step_inner(inner, &mut st);
        if let Err(e) = &result {
            if *e == StoreError::Crashed {
                st.poisoned = true;
            }
        }
        result
    }

    /// Drive an in-flight migration to completion. `Ok(None)` when no
    /// migration is in flight (nothing to resume — reopening after a
    /// completed reshard lands here).
    pub fn resume_reshard(&self) -> Result<Option<ReshardStatus>, StoreError> {
        if self.reshard_status().is_none() {
            return Ok(None);
        }
        let reg = self.inner.obs();
        let _span = reg.span("cfstore.reshard.run");
        loop {
            let status = self.reshard_step()?;
            if status.phase == ReshardPhase::Done {
                return Ok(Some(status));
            }
        }
    }

    /// Run a full reshard synchronously: begin + every step. On a clean
    /// run the store comes out in the new topology with the journal
    /// deleted; on an error mid-way the journal keeps the migration
    /// resumable after reopen.
    pub fn reshard(&self, plan: Reshard) -> Result<ReshardStatus, StoreError> {
        let reg = self.inner.obs();
        let _span = reg.span("cfstore.reshard.run");
        self.begin_reshard(plan)?;
        loop {
            let status = self.reshard_step()?;
            if status.phase == ReshardPhase::Done {
                return Ok(status);
            }
        }
    }

    /// Abandon a migration that has **not** cut over: superset rows are
    /// pruned back to the active topology, grow-created shard
    /// directories are deleted, and the journal is removed. A migration
    /// past its commit point can only roll forward.
    pub fn abort_reshard(&self) -> Result<(), StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if st.poisoned {
            return Err(StoreError::Crashed);
        }
        let Some(m) = &st.migration else {
            return Err(StoreError::Io("no reshard in flight".to_string()));
        };
        if m.cut_over {
            return Err(StoreError::Io(
                "reshard is past its commit point; it can only roll forward".to_string(),
            ));
        }
        let active = st.active.clone();
        prune_to_ownership(&mut st, &active)?;
        st.shards.truncate(active.shards as usize);
        st.migration = None;
        remove_extra_shard_dirs(&inner.dir, active.shards)?;
        let path = inner.dir.join(TOPOLOGY_FILE);
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", path.display()))),
        }
        inner.obs().incr("cfstore.reshard.aborts", 1);
        Ok(())
    }

    /// The in-flight migration, if any.
    pub fn reshard_status(&self) -> Option<ReshardStatus> {
        let st = self.inner.state.lock();
        st.migration.as_ref().map(|m| m.status())
    }

    /// The active topology (epoch-current placement).
    pub fn topology(&self) -> Topology {
        self.inner.state.lock().active.clone()
    }
}

fn step_inner(inner: &ShardedInner, st: &mut GlobalState) -> Result<ReshardStatus, StoreError> {
    let m = st.migration.as_ref().expect("caller checked");
    if !m.cut_over {
        let next_unit = (0..m.target.shards).find(|u| !m.copied.contains(u));
        if let Some(unit) = next_unit {
            return copy_unit(inner, st, unit);
        }
        if !m.verified {
            return verify_units(inner, st);
        }
        return do_cutover(inner, st);
    }
    gc_step(inner, st)
}

/// Mirror every schema onto target-only shards (grow), opening their
/// directories. Idempotent: re-opening an existing shard is a plain
/// reopen and re-creating an existing table is tolerated.
fn ensure_target_shards(
    inner: &ShardedInner,
    st: &mut GlobalState,
    target: &Topology,
) -> Result<(), StoreError> {
    let io = |e: RecoveryError| StoreError::Io(format!("open target shard: {e}"));
    for g in st.shards.len() as u32..target.shards {
        let (mut store, _) =
            crate::store::MiniStore::open_with_opts(&inner.dir.join(shard_dir_name(g)), {
                inner.store_opts(g)
            })
            .map_err(io)?;
        store.set_obs(inner.obs());
        st.shards.push(store);
    }
    let schemas = st.schemas.clone();
    for g in 0..target.shards {
        for (table, (families, threshold)) in &schemas {
            let fams: Vec<&str> = families.iter().map(|f| f.as_str()).collect();
            match st.shards[g as usize].create_table_with_threshold(table, &fams, *threshold) {
                Ok(()) | Err(StoreError::TableExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        st.shards[g as usize].flush()?;
    }
    Ok(())
}

/// Copy one target unit: merge-install every row the unit owns under
/// the target topology, sourced from clean old-placement replicas (the
/// authority for all data pre-cutover — dual-apply keeps it current),
/// flush the unit, then journal `Copied`. Merge, not wholesale: on a
/// shard serving both epochs a wholesale install would clobber its
/// old-epoch rows.
fn copy_unit(
    inner: &ShardedInner,
    st: &mut GlobalState,
    unit: u32,
) -> Result<ReshardStatus, StoreError> {
    let m = st.migration.as_ref().expect("caller checked");
    let target = m.target.clone();
    let active = st.active.clone();
    let schemas = st.schemas.clone();
    // Resumed migrations may hit a unit whose tables were never created
    // (crash between Begin and the grow-shard flush).
    for (table, (families, threshold)) in &schemas {
        let fams: Vec<&str> = families.iter().map(|f| f.as_str()).collect();
        match st.shards[unit as usize].create_table_with_threshold(table, &fams, *threshold) {
            Ok(()) | Err(StoreError::TableExists(_)) => {}
            Err(e) => return Err(e),
        }
    }
    let mut rows_copied = 0u64;
    let mut exports: BTreeMap<(u32, String), BTreeMap<Bytes, RowData>> = BTreeMap::new();
    for table in schemas.keys() {
        let mut rows: BTreeMap<Bytes, RowData> = BTreeMap::new();
        for s in 0..active.shards {
            let donor = export_slot_from_peers(st, &active, s, table, None, &mut exports)?;
            for (row, data) in donor {
                if target.owns(unit, &row) {
                    rows.insert(row, data);
                }
            }
        }
        rows_copied += st.shards[unit as usize].merge_table_rows(table, rows)?;
    }
    st.shards[unit as usize].flush()?;
    let m = st.migration.as_mut().expect("caller checked");
    m.journal.append(&JournalRecord::Copied {
        epoch: m.epoch,
        unit,
    })?;
    m.copied.insert(unit);
    m.rows_copied += rows_copied;
    let status = m.status();
    let reg = inner.obs();
    reg.incr("cfstore.reshard.units_copied", 1);
    reg.incr("cfstore.reshard.rows_copied", rows_copied);
    Ok(status)
}

/// Export the rows of one active slot from the first clean replica,
/// caching exports per `(donor, table)`. `skip` excludes a shard from
/// donating (the shard being healed).
pub(super) fn export_slot_from_peers(
    st: &GlobalState,
    topo: &Topology,
    slot: u32,
    table: &str,
    skip: Option<u32>,
    exports: &mut BTreeMap<(u32, String), BTreeMap<Bytes, RowData>>,
) -> Result<BTreeMap<Bytes, RowData>, StoreError> {
    let mut last_err: Option<StoreError> = None;
    for d in topo.replicas(slot) {
        if Some(d) == skip {
            continue;
        }
        let key = (d, table.to_string());
        if !exports.contains_key(&key) {
            match st.shards[d as usize].export_table_rows(table) {
                Ok(map) => {
                    exports.insert(key.clone(), map);
                }
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            }
        }
        let donor = &exports[&key];
        return Ok(donor
            .iter()
            .filter(|(row, _)| topo.slot_of_row(row) == slot)
            .map(|(row, data)| (row.clone(), data.clone()))
            .collect());
    }
    Err(last_err.unwrap_or_else(|| {
        StoreError::Io(format!(
            "slot {slot} has no clean replica to export table `{table}` from"
        ))
    }))
}

/// Compare every target unit's new-epoch ownership against
/// old-placement truth, cell-for-cell, then journal `Verified`.
fn verify_units(inner: &ShardedInner, st: &mut GlobalState) -> Result<ReshardStatus, StoreError> {
    let m = st.migration.as_ref().expect("caller checked");
    let target = m.target.clone();
    let active = st.active.clone();
    let schemas = st.schemas.clone();
    let mut exports: BTreeMap<(u32, String), BTreeMap<Bytes, RowData>> = BTreeMap::new();
    for table in schemas.keys() {
        let mut truth: BTreeMap<Bytes, RowData> = BTreeMap::new();
        for s in 0..active.shards {
            truth.extend(export_slot_from_peers(
                st,
                &active,
                s,
                table,
                None,
                &mut exports,
            )?);
        }
        for unit in 0..target.shards {
            let held = st.shards[unit as usize].export_table_rows(table)?;
            for (row, data) in &truth {
                if !target.owns(unit, row) {
                    continue;
                }
                if held.get(row) != Some(data) {
                    return Err(StoreError::Io(format!(
                        "reshard verify failed: unit {unit} row {:?} of `{table}` \
                         disagrees with old-placement truth",
                        String::from_utf8_lossy(row)
                    )));
                }
            }
        }
    }
    let m = st.migration.as_mut().expect("caller checked");
    m.journal
        .append(&JournalRecord::Verified { epoch: m.epoch })?;
    m.verified = true;
    inner.obs().incr("cfstore.reshard.verifies", 1);
    Ok(m.status())
}

/// Append the `Cutover` record — the atomic commit point — then swap
/// the active topology. A torn append leaves the store in the old epoch
/// (and poisoned, like any mid-protocol crash).
fn do_cutover(inner: &ShardedInner, st: &mut GlobalState) -> Result<ReshardStatus, StoreError> {
    let m = st.migration.as_mut().expect("caller checked");
    m.journal
        .append(&JournalRecord::Cutover { epoch: m.epoch })?;
    m.cut_over = true;
    st.epoch = m.epoch;
    st.active = m.target.clone();
    let status = st.migration.as_ref().expect("caller checked").status();
    inner.obs().incr("cfstore.reshard.cutovers", 1);
    Ok(status)
}

/// One GC step: prune every surviving shard to its exact new ownership,
/// then swap the catalog, then delete dropped dirs + the journal. Three
/// separate steps so a crash between any two reopens resumable; each is
/// idempotent.
fn gc_step(inner: &ShardedInner, st: &mut GlobalState) -> Result<ReshardStatus, StoreError> {
    let m = st.migration.as_ref().expect("caller checked");
    let (epoch, pruned, swapped) = (m.epoch, m.gc_pruned, m.catalog_swapped);
    let active = st.active.clone();
    if !pruned {
        prune_to_ownership(st, &active)?;
        let m = st.migration.as_mut().expect("caller checked");
        m.gc_pruned = true;
        return Ok(m.status());
    }
    if !swapped {
        write_catalog(
            &inner.dir,
            &Catalog {
                topology: active.clone(),
                epoch,
            },
        )
        .map_err(|e| StoreError::Io(format!("swap SHARDS catalog: {e}")))?;
        st.shards.truncate(active.shards as usize);
        let m = st.migration.as_mut().expect("caller checked");
        m.catalog_swapped = true;
        return Ok(m.status());
    }
    remove_extra_shard_dirs(&inner.dir, active.shards)?;
    let path = inner.dir.join(TOPOLOGY_FILE);
    match std::fs::remove_file(&path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::Io(format!("{}: {e}", path.display()))),
    }
    let rows_copied = st.migration.as_ref().expect("caller checked").rows_copied;
    st.migration = None;
    inner.obs().incr("cfstore.reshard.completions", 1);
    Ok(ReshardStatus {
        epoch,
        phase: ReshardPhase::Done,
        units_total: active.shards,
        units_copied: active.shards,
        rows_copied,
    })
}

/// Wholesale-reinstall every shard `0..topo.shards` with exactly the
/// rows it owns under `topo` (sourced from its own contents), flushing
/// each. Also flushes so no shard's WAL still holds frames naming
/// participants outside the new topology as unflushed state.
fn prune_to_ownership(st: &mut GlobalState, topo: &Topology) -> Result<(), StoreError> {
    let schemas = st.schemas.clone();
    for g in 0..topo.shards {
        for table in schemas.keys() {
            let held = st.shards[g as usize].export_table_rows(table)?;
            let keep: BTreeMap<Bytes, RowData> = held
                .into_iter()
                .filter(|(row, _)| topo.owns(g, row))
                .collect();
            st.shards[g as usize].heal_table(table, keep)?;
        }
        st.shards[g as usize].flush()?;
    }
    Ok(())
}

/// Delete any `shard-NNN` directory with `NNN ≥ keep` (dropped by a
/// shrink, or created by an aborted grow). Idempotent.
fn remove_extra_shard_dirs(dir: &Path, keep: u32) -> Result<(), StoreError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| StoreError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::Io(format!("{}: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = name
            .strip_prefix("shard-")
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        if id >= keep {
            let p = entry.path();
            match std::fs::remove_dir_all(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StoreError::Io(format!("{}: {e}", p.display()))),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Put;
    use crate::shard::{ShardOptions, ShardedStore};
    use crate::store::{MiniStore, Scan};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cfstore-reshard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn opts(n: u32, r: u32) -> ShardOptions {
        ShardOptions {
            shards: n,
            replication: r,
            ..ShardOptions::default()
        }
    }

    /// A sharded store plus a never-resharded single-store oracle fed
    /// the identical workload.
    fn seeded(dir: &Path, n: u32, r: u32, rows: usize) -> (ShardedStore, MiniStore) {
        let (store, _) = ShardedStore::open_with_opts(dir, opts(n, r)).unwrap();
        let oracle = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        oracle.create_table("t", &["f"]).unwrap();
        for i in 0..rows {
            let p = Put::new(format!("row{i:04}"), "f", "c", format!("v{i}"));
            store.put("t", p.clone()).unwrap();
            oracle.put("t", p).unwrap();
        }
        (store, oracle)
    }

    fn assert_matches_oracle(store: &ShardedStore, oracle: &MiniStore) {
        let (got, _) = store.scan("t", &Scan::all()).unwrap();
        let (want, _) = oracle.scan("t", &Scan::all()).unwrap();
        assert_eq!(got, want, "sharded scan must match the oracle");
    }

    #[test]
    fn topology_codec_and_validation() {
        let mut t = Topology::uniform(5, 2);
        t.overrides.insert(3, vec![0, 4]);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(Topology::decode(&buf, &mut pos), Some(t.clone()));
        assert_eq!(pos, buf.len());
        assert!(t.validate().is_ok());
        assert_eq!(t.replicas(3), vec![0, 4], "override wins");
        assert_eq!(t.replicas(2), vec![2, 3], "modular default elsewhere");

        assert!(Topology::uniform(0, 1).validate().is_err());
        assert!(Topology::uniform(2, 3).validate().is_err());
        let mut bad = Topology::uniform(3, 2);
        bad.overrides.insert(9, vec![0, 1]);
        assert!(bad.validate().is_err(), "override slot out of range");
        let mut bad = Topology::uniform(3, 2);
        bad.overrides.insert(0, vec![1, 1]);
        assert!(bad.validate().is_err(), "duplicate replicas");
        let mut bad = Topology::uniform(3, 2);
        bad.overrides.insert(0, vec![1]);
        assert!(bad.validate().is_err(), "override must keep R copies");
    }

    #[test]
    fn catalog_v1_body_stays_byte_identical_and_v2_roundtrips() {
        let dir = tmp_dir("catalog");
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = Catalog {
            topology: Topology::uniform(4, 2),
            epoch: 0,
        };
        write_catalog(&dir, &v1).unwrap();
        let data = std::fs::read(dir.join(super::super::SHARDS_FILE)).unwrap();
        assert_eq!(data.len(), 20, "epoch-0 catalog keeps the 8-byte v1 body");
        assert_eq!(read_catalog(&dir).unwrap(), Some(v1));

        let mut topo = Topology::uniform(5, 3);
        topo.overrides.insert(1, vec![4, 0, 2]);
        let v2 = Catalog {
            topology: topo,
            epoch: 7,
        };
        write_catalog(&dir, &v2).unwrap();
        assert_eq!(read_catalog(&dir).unwrap(), Some(v2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_torn_tail_resolves_bad_magic_errors() {
        let dir = tmp_dir("journal");
        std::fs::create_dir_all(&dir).unwrap();
        let old = Topology::uniform(3, 2);
        let new = Topology::uniform(4, 2);
        let begin = JournalRecord::Begin {
            epoch: 1,
            old: old.clone(),
            new: new.clone(),
        };
        let mut w = JournalWriter::create(&dir, None).unwrap();
        w.append(&begin).unwrap();
        w.append(&JournalRecord::Copied { epoch: 1, unit: 0 })
            .unwrap();
        drop(w);
        let clean_len = std::fs::metadata(dir.join(TOPOLOGY_FILE)).unwrap().len();

        // Tear the last frame: resolvable, the Copied record drops out.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(TOPOLOGY_FILE))
            .unwrap();
        f.set_len(clean_len - 3).unwrap();
        drop(f);
        let scan = read_journal(&dir).unwrap().unwrap();
        assert!(scan.valid_bytes < scan.total_bytes);
        assert_eq!(scan.records, vec![begin.clone()]);
        match resolve_journal(&scan.records).unwrap() {
            Resolution::PreCutover {
                epoch,
                copied,
                verified,
                ..
            } => {
                assert_eq!(epoch, 1);
                assert!(copied.is_empty());
                assert!(!verified);
            }
            other => panic!("expected PreCutover, got {other:?}"),
        }

        // Wrong magic: unresolvable.
        std::fs::write(dir.join(TOPOLOGY_FILE), b"NOPE....").unwrap();
        assert!(read_journal(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_rejects_sequences_the_writer_cannot_produce() {
        let old = Topology::uniform(3, 2);
        let new = Topology::uniform(4, 2);
        let begin = JournalRecord::Begin {
            epoch: 1,
            old: old.clone(),
            new: new.clone(),
        };
        // Not starting with Begin.
        assert!(resolve_journal(&[JournalRecord::Verified { epoch: 1 }]).is_err());
        // Cutover without Verified.
        assert!(resolve_journal(&[begin.clone(), JournalRecord::Cutover { epoch: 1 }]).is_err());
        // Epoch mismatch.
        assert!(
            resolve_journal(&[begin.clone(), JournalRecord::Copied { epoch: 2, unit: 0 }]).is_err()
        );
        // Unit outside the target topology.
        assert!(
            resolve_journal(&[begin.clone(), JournalRecord::Copied { epoch: 1, unit: 4 }]).is_err()
        );
        // Records after Cutover.
        assert!(resolve_journal(&[
            begin.clone(),
            JournalRecord::Verified { epoch: 1 },
            JournalRecord::Cutover { epoch: 1 },
            JournalRecord::Copied { epoch: 1, unit: 0 },
        ])
        .is_err());
        // Invalidated clears Verified, so a Cutover after it is invalid.
        assert!(resolve_journal(&[
            begin.clone(),
            JournalRecord::Copied { epoch: 1, unit: 0 },
            JournalRecord::Verified { epoch: 1 },
            JournalRecord::Invalidated { epoch: 1, unit: 0 },
            JournalRecord::Cutover { epoch: 1 },
        ])
        .is_err());
        // The happy path resolves.
        let full = [
            begin,
            JournalRecord::Copied { epoch: 1, unit: 0 },
            JournalRecord::Verified { epoch: 1 },
            JournalRecord::Cutover { epoch: 1 },
        ];
        assert!(matches!(
            resolve_journal(&full).unwrap(),
            Resolution::PostCutover { epoch: 1, .. }
        ));
    }

    #[test]
    fn grow_reshard_end_to_end() {
        let dir = tmp_dir("grow");
        let (store, oracle) = seeded(&dir, 3, 2, 40);
        let status = store.reshard(Reshard::to(4, 2)).unwrap();
        assert_eq!(status.phase, ReshardPhase::Done);
        assert_eq!(status.epoch, 1);
        assert_eq!(store.shard_count(), 4);
        assert!(!dir.join(TOPOLOGY_FILE).exists(), "journal deleted by GC");
        assert_matches_oracle(&store, &oracle);
        drop(store);
        // Reopen: the new topology is durable; no migration in flight.
        let (store, rep) = ShardedStore::open(&dir).unwrap();
        assert!(rep.reshard_in_flight.is_none());
        assert!(rep.lost_shards.is_empty());
        assert_eq!(store.shard_count(), 4);
        assert_matches_oracle(&store, &oracle);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shrink_reshard_end_to_end() {
        let dir = tmp_dir("shrink");
        let (store, oracle) = seeded(&dir, 3, 2, 40);
        let status = store.reshard(Reshard::to(2, 2)).unwrap();
        assert_eq!(status.phase, ReshardPhase::Done);
        assert_eq!(store.shard_count(), 2);
        assert!(
            !dir.join(super::shard_dir_name(2)).exists(),
            "dropped shard dir removed"
        );
        assert_matches_oracle(&store, &oracle);
        drop(store);
        let (store, rep) = ShardedStore::open(&dir).unwrap();
        assert!(rep.lost_shards.is_empty());
        assert_matches_oracle(&store, &oracle);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replication_change_keeps_replicas_identical() {
        let dir = tmp_dir("rchange");
        let (store, oracle) = seeded(&dir, 3, 1, 40);
        store.reshard(Reshard::to(3, 2)).unwrap();
        assert_eq!(store.replication(), 2);
        assert_matches_oracle(&store, &oracle);
        // Every row now has two bit-identical copies.
        for i in 0..40 {
            let row = format!("row{i:04}");
            let reps = store.replica_shards(row.as_bytes());
            assert_eq!(reps.len(), 2);
            let a = store.shard_scan(reps[0], "t", &Scan::all()).unwrap().0;
            let b = store.shard_scan(reps[1], "t", &Scan::all()).unwrap().0;
            let find = |rows: &[crate::kv::RowResult]| {
                rows.iter().find(|r| r.row == row.as_bytes()).cloned()
            };
            assert_eq!(find(&a), find(&b), "replicas disagree on {row}");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_migration_writes_dual_apply_and_reads_serve_old_epoch() {
        let dir = tmp_dir("midmig");
        let (store, oracle) = seeded(&dir, 3, 2, 30);
        store.begin_reshard(Reshard::to(4, 2)).unwrap();
        // Copy one unit, then write while the migration is parked.
        let st = store.reshard_step().unwrap();
        assert_eq!(st.phase, ReshardPhase::Copy);
        assert_eq!(store.shard_count(), 3, "old epoch serves until cutover");
        for i in 30..45 {
            let p = Put::new(format!("row{i:04}"), "f", "c", format!("v{i}"));
            store.put("t", p.clone()).unwrap();
            oracle.put("t", p).unwrap();
        }
        store.delete_row("t", b"row0005").unwrap();
        oracle.delete_row("t", b"row0005").unwrap();
        assert_matches_oracle(&store, &oracle);
        // Finish: the dual-applied writes are already in place on the
        // targets, so verify passes and the result matches the oracle.
        let done = store.resume_reshard().unwrap().unwrap();
        assert_eq!(done.phase, ReshardPhase::Done);
        assert_eq!(store.shard_count(), 4);
        assert_matches_oracle(&store, &oracle);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_before_cutover_restores_the_old_world() {
        let dir = tmp_dir("abort");
        let (store, oracle) = seeded(&dir, 3, 2, 30);
        store.begin_reshard(Reshard::to(4, 2)).unwrap();
        store.reshard_step().unwrap();
        store.abort_reshard().unwrap();
        assert_eq!(store.shard_count(), 3);
        assert!(store.reshard_status().is_none());
        assert!(!dir.join(TOPOLOGY_FILE).exists());
        assert!(!dir.join(super::shard_dir_name(3)).exists());
        assert_matches_oracle(&store, &oracle);
        // The store is still fully operational: a second plan runs clean.
        store.reshard(Reshard::to(4, 2)).unwrap();
        assert_matches_oracle(&store, &oracle);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_append_reopens_resumable() {
        let dir = tmp_dir("tornj");
        let (store, oracle) = seeded(&dir, 3, 2, 30);
        drop(store);
        // Reopen with a TOPOLOGY crash budget that survives Begin but
        // tears the first Copied append.
        let (store, _) = ShardedStore::open_with_opts(
            &dir,
            ShardOptions {
                crash_topology: Some(60),
                ..opts(3, 2)
            },
        )
        .unwrap();
        store.begin_reshard(Reshard::to(4, 2)).unwrap();
        let err = loop {
            match store.reshard_step() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err, StoreError::Crashed);
        assert!(store.is_crashed());
        drop(store);
        // Reopen clean: the migration is in flight and resumes to done.
        let (store, rep) = ShardedStore::open(&dir).unwrap();
        assert_eq!(rep.reshard_in_flight, Some(1));
        assert!(rep.lost_shards.is_empty());
        assert_eq!(store.shard_count(), 3, "pre-cutover: old epoch");
        let done = store.resume_reshard().unwrap().unwrap();
        assert_eq!(done.phase, ReshardPhase::Done);
        assert_eq!(store.shard_count(), 4);
        assert_matches_oracle(&store, &oracle);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebalance_plan_pins_hot_primaries_on_the_cold_shard() {
        let meta = ShardedMeta {
            shards: 3,
            replication: 2,
            placement: (0..3).map(|s| super::super::replica_set(s, 3, 2)).collect(),
            regions: (0..3)
                .map(|g| {
                    (
                        g,
                        crate::store::MetaEntry {
                            table: "t".to_string(),
                            start_key: Bytes::new(),
                            region_id: g as u64,
                            region_server: g,
                        },
                    )
                })
                .collect(),
        };
        let mut counters = BTreeMap::new();
        counters.insert("cfstore.region.0.rows_scanned".to_string(), 1000u64);
        counters.insert("cfstore.region.2.rows_scanned".to_string(), 5u64);
        let plan = rebalance_hot_slots(&meta, &counters, 4).expect("imbalance found");
        assert_eq!(plan.shards, 3);
        assert_eq!(plan.replication, 2);
        // Slot 0's primary (the hot shard 0) is re-pinned onto the
        // coldest shard (shard 1, which scanned nothing at all).
        assert_eq!(plan.overrides.get(&0), Some(&vec![1, 2]));
        assert!(plan.into_topology().validate().is_ok());
        // Balanced counters produce no plan.
        assert!(rebalance_hot_slots(&meta, &BTreeMap::new(), 4).is_none());
    }
}
