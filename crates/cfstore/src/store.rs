//! The store: tables, the META catalog, region assignment, and the
//! client API (create/put/get/scan/delete) with server-side filter
//! pushdown, parallel region scans, and an optional HBase-shaped
//! durability layer (write-ahead log + flushed segments + recovery).
//!
//! A store opened with [`MiniStore::new`] is purely in-memory, exactly
//! as before. A store opened with [`MiniStore::open`] is backed by a
//! directory: every mutation is written to the WAL *before* it touches
//! memory (log-then-apply), [`MiniStore::flush`] persists dirty regions
//! as immutable segment files and swaps the MANIFEST atomically, and
//! reopening the directory replays the WAL tail over lazily opened
//! segments (clean regions stay segment-backed, reading blocks through
//! a shared [`BlockCache`]). Durable mutations are serialized under one
//! lock so the WAL order is exactly the apply order — replay is then a
//! faithful rerun.
//!
//! [`StoreOptions::background_flush_wal_bytes`] moves flushing off the
//! write path: a background flusher thread wakes whenever the WAL grows
//! past the threshold and runs the same compacting flush a caller
//! would. Because every flush happens under the durable lock and the
//! WAL always covers the memstore, flush *timing* is irrelevant to
//! crash safety — the crash-at-every-WAL-byte property tests run with
//! the flusher enabled.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::blockcache::{BlockCache, BlockCacheStats};
use crate::filter::Filter;
use crate::kv::{Put, RowResult};
use crate::recovery::{self, Manifest, ManifestTable, RecoveryError, RecoveryReport};
use crate::region::{KeyRange, Region, ScanMetrics};
use crate::segment::{self, SegmentError};
use crate::wal::{CrashSpec, SyncPolicy, WalError, WalRecord, WalWriter, WAL_FILE};

/// Rows per region before a split is triggered.
pub(crate) const DEFAULT_SPLIT_THRESHOLD: usize = 256;

/// Store errors. Kept `Clone + Eq` (I/O failures are carried as rendered
/// strings) so callers and property tests can compare outcomes; the
/// richer typed chain for reopen failures lives in
/// [`crate::recovery::RecoveryError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    TableExists(String),
    NoSuchTable(String),
    NoSuchColumnFamily {
        table: String,
        family: String,
    },
    /// A stored cell's value no longer matches its write-time CRC-32 —
    /// at-rest corruption detected on read.
    Corruption {
        row: String,
        column: String,
    },
    /// An injected [`CrashSpec`] point fired (or a previous one already
    /// poisoned the store). The store refuses all further durable
    /// mutations until the directory is reopened through recovery.
    Crashed,
    /// A real I/O failure underneath the durability layer.
    Io(String),
    /// A segment block failed its CRC when a lazy read finally touched
    /// it — at-rest corruption of flushed data, surfaced on the read
    /// path (the reopen path only verifies segment metadata up front).
    SegmentCorrupt {
        file: String,
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StoreError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            StoreError::NoSuchColumnFamily { table, family } => {
                write!(
                    f,
                    "table `{table}` has no column family `{family}` \
                     (families are fixed at table creation, as in HBase)"
                )
            }
            StoreError::Corruption { row, column } => {
                write!(
                    f,
                    "checksum mismatch in row `{row}`, column `{column}`: \
                     stored cell is corrupt"
                )
            }
            StoreError::Crashed => {
                write!(f, "store crashed (injected crash point); reopen to recover")
            }
            StoreError::Io(detail) => write!(f, "store I/O failure: {detail}"),
            StoreError::SegmentCorrupt { file, detail } => {
                write!(f, "segment `{file}` is corrupt: {detail}")
            }
        }
    }
}
impl std::error::Error for StoreError {}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Crashed => StoreError::Crashed,
            WalError::Io(io) => StoreError::Io(io.to_string()),
        }
    }
}

impl From<SegmentError> for StoreError {
    fn from(e: SegmentError) -> Self {
        match e {
            SegmentError::Corrupt { file, detail } => StoreError::SegmentCorrupt { file, detail },
            SegmentError::Io(io) => StoreError::Io(format!("segment I/O: {io}")),
        }
    }
}

/// A scan request.
pub struct Scan {
    /// Inclusive start row.
    pub start: Bytes,
    /// Exclusive stop row; `None` scans to the end of the table.
    pub stop: Option<Bytes>,
    /// Server-side filter, evaluated at the regions.
    pub filter: Option<Box<dyn Filter>>,
}

impl Scan {
    /// Full-table scan.
    pub fn all() -> Self {
        Scan {
            start: Bytes::new(),
            stop: None,
            filter: None,
        }
    }

    /// Scan rows with a given prefix (start = prefix, stop = prefix+1).
    pub fn prefix(prefix: &[u8]) -> Self {
        let mut stop = prefix.to_vec();
        for i in (0..stop.len()).rev() {
            if stop[i] < 0xff {
                stop[i] += 1;
                stop.truncate(i + 1);
                return Scan {
                    start: Bytes::copy_from_slice(prefix),
                    stop: Some(Bytes::from(stop)),
                    filter: None,
                };
            }
        }
        Scan {
            start: Bytes::copy_from_slice(prefix),
            stop: None,
            filter: None,
        }
    }

    pub fn with_filter(mut self, filter: Box<dyn Filter>) -> Self {
        self.filter = Some(filter);
        self
    }
}

/// One table: a fixed set of column families and a list of regions sorted
/// by start key.
struct Table {
    families: Vec<String>,
    regions: RwLock<Vec<Arc<Region>>>,
    split_threshold: usize,
}

/// An entry of the META catalog: `(table, start_key, region_id) → region
/// server` (§5.2.2's key shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaEntry {
    pub table: String,
    pub start_key: Bytes,
    pub region_id: u64,
    pub region_server: u32,
}

/// One logical operation inside a cross-shard batch, before the owning
/// shard lowers it to [`WalRecord`]s (allocating region ids locally; cell
/// timestamps were already stamped by the sharded store's global clock).
#[derive(Debug, Clone)]
pub(crate) enum ShardOp {
    CreateTable {
        name: String,
        families: Vec<String>,
        split_threshold: u64,
    },
    Put {
        table: String,
        put: Put,
        timestamp: u64,
    },
    DeleteRow {
        table: String,
        row: Bytes,
    },
}

/// The durable half of a store: the WAL writer plus flush bookkeeping.
/// All durable mutations lock this, so WAL order == apply order.
struct DurableState {
    dir: PathBuf,
    wal: WalWriter,
    /// Flush generation; names the next batch of segment files.
    generation: u64,
    /// `wal.bytes_written()` at the last flush reset (the WAL byte
    /// counter is cumulative across flushes — it is the crash-budget
    /// currency); the background-flush trigger measures growth against
    /// this baseline.
    wal_bytes_at_reset: u64,
}

/// How to open a durable store: sync policy, crash injection, block
/// cache budget, and the optional background flusher.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// WAL sync policy (default: [`SyncPolicy::EveryOp`]).
    pub sync: SyncPolicy,
    /// Injected crash points (default: never fires).
    pub crash: CrashSpec,
    /// Byte budget of the shared segment [`BlockCache`] (default 8 MiB).
    /// `0` disables caching: lazy reads still work, block-at-a-time,
    /// but nothing is retained.
    pub block_cache_bytes: u64,
    /// When `Some(n)`, a background flusher thread runs [`MiniStore::flush`]
    /// whenever the WAL has grown `n` bytes past the last flush, taking
    /// segment writing off the put path. `None` (the default) keeps
    /// flushing fully caller-driven.
    pub background_flush_wal_bytes: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            sync: SyncPolicy::EveryOp,
            crash: CrashSpec::default(),
            block_cache_bytes: 8 << 20,
            background_flush_wal_bytes: None,
        }
    }
}

/// Wake-up state shared between writers and the background flusher.
#[derive(Default)]
struct FlushSignal {
    flush_pending: bool,
    shutdown: bool,
}

/// std primitives here (not `parking_lot`) because the wake-up needs a
/// condition variable paired with its mutex.
struct FlusherShared {
    signal: std::sync::Mutex<FlushSignal>,
    cv: std::sync::Condvar,
}

/// Everything the store owns, shareable with the background flusher.
struct StoreInner {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    clock: AtomicU64,
    next_region_id: AtomicU64,
    /// Simulated region-server count for META assignment reporting.
    region_servers: u32,
    /// Observability sink for the `cfstore.*` counters (DESIGN.md §10);
    /// disabled (a single branch per operation) unless a caller attaches
    /// an enabled registry via [`MiniStore::set_obs`]. Behind a lock so
    /// the flusher thread sees registry swaps; reads clone the (cheap,
    /// `Arc`-backed) registry.
    obs: RwLock<obs::Registry>,
    /// The shared segment block cache every lazy region reads through.
    cache: Arc<BlockCache>,
    /// `Some` when the store is backed by a directory (WAL + segments);
    /// `None` for the classic in-memory store.
    durable: Option<Mutex<DurableState>>,
    /// WAL-growth threshold that triggers a background flush.
    background_flush_wal_bytes: Option<u64>,
    /// Present iff a background flusher thread is running.
    flush_shared: Option<Arc<FlusherShared>>,
}

/// The miniature column-family store. A thin handle around the shared
/// `StoreInner`; dropping the handle shuts down and joins the
/// background flusher (when one is configured).
pub struct MiniStore {
    inner: Arc<StoreInner>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// The background flusher: wait for a WAL-growth signal, run the same
/// compacting flush a caller would, repeat. Flush failures (an injected
/// crash point, real I/O trouble) poison the store for writers exactly
/// as a foreground flush would; the flusher just waits for the next
/// signal (which a poisoned store never sends).
fn flusher_loop(inner: Arc<StoreInner>, shared: Arc<FlusherShared>) {
    loop {
        {
            let mut g = shared.signal.lock().expect("flusher signal lock");
            while !g.flush_pending && !g.shutdown {
                g = shared.cv.wait(g).expect("flusher signal wait");
            }
            if g.shutdown {
                return;
            }
            g.flush_pending = false;
        }
        if inner.flush().is_ok() {
            inner.obs().incr("cfstore.flush.background", 1);
        }
    }
}

impl MiniStore {
    /// An empty store with no tables and observability disabled.
    pub fn new() -> Self {
        MiniStore {
            inner: Arc::new(StoreInner {
                tables: RwLock::new(BTreeMap::new()),
                clock: AtomicU64::new(1),
                next_region_id: AtomicU64::new(1),
                region_servers: 4,
                obs: RwLock::new(obs::Registry::disabled()),
                cache: Arc::new(BlockCache::new(0)),
                durable: None,
                background_flush_wal_bytes: None,
                flush_shared: None,
            }),
            flusher: None,
        }
    }

    /// Open (or create) a durable store at `dir`, running recovery:
    /// open manifest-referenced segments (metadata checksum-verified,
    /// blocks lazy), replay the WAL tail, and truncate any torn tail.
    /// Returns the store plus the [`RecoveryReport`] accounting for
    /// every replayed and dropped byte.
    pub fn open(dir: &Path) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::open_with_opts(dir, StoreOptions::default())
    }

    /// [`MiniStore::open`] with an explicit sync policy and crash spec
    /// (the property tests' historical entry point).
    pub fn open_with(
        dir: &Path,
        policy: SyncPolicy,
        crash: CrashSpec,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::open_with_opts(
            dir,
            StoreOptions {
                sync: policy,
                crash,
                ..StoreOptions::default()
            },
        )
    }

    /// [`MiniStore::open`] with full [`StoreOptions`] control.
    pub fn open_with_opts(
        dir: &Path,
        opts: StoreOptions,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        std::fs::create_dir_all(dir).map_err(|e| RecoveryError::Io {
            path: dir.display().to_string(),
            source: e,
        })?;
        let cache = Arc::new(BlockCache::new(opts.block_cache_bytes));
        let (state, report) = recovery::recover(dir, &cache)?;
        let wal_path = dir.join(WAL_FILE);
        let wal = WalWriter::open(
            &wal_path,
            state.wal_len,
            state.next_lsn,
            opts.sync,
            opts.crash,
        )
        .map_err(|e| RecoveryError::Io {
            path: wal_path.display().to_string(),
            source: match e {
                WalError::Io(io) => io,
                WalError::Crashed => std::io::Error::other("crash during open"),
            },
        })?;
        let wal_bytes_at_reset = wal.bytes_written();
        let mut tables = BTreeMap::new();
        for t in state.tables {
            let regions: Vec<Arc<Region>> = t
                .regions
                .into_iter()
                .map(|r| match r.base {
                    Some(reader) => {
                        Arc::new(Region::from_segment(r.id, r.range, reader, cache.clone()))
                    }
                    None => Arc::new(Region::from_parts(r.id, r.range, r.rows)),
                })
                .collect();
            tables.insert(
                t.name,
                Arc::new(Table {
                    families: t.families,
                    regions: RwLock::new(regions),
                    split_threshold: t.split_threshold as usize,
                }),
            );
        }
        let flush_shared = opts.background_flush_wal_bytes.map(|_| {
            Arc::new(FlusherShared {
                signal: std::sync::Mutex::new(FlushSignal::default()),
                cv: std::sync::Condvar::new(),
            })
        });
        let inner = Arc::new(StoreInner {
            tables: RwLock::new(tables),
            clock: AtomicU64::new(state.clock),
            next_region_id: AtomicU64::new(state.next_region_id),
            region_servers: 4,
            obs: RwLock::new(obs::Registry::disabled()),
            cache,
            durable: Some(Mutex::new(DurableState {
                dir: dir.to_path_buf(),
                wal,
                generation: state.generation,
                wal_bytes_at_reset,
            })),
            background_flush_wal_bytes: opts.background_flush_wal_bytes,
            flush_shared: flush_shared.clone(),
        });
        let flusher = flush_shared.map(|shared| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("cfstore-flusher".to_string())
                .spawn(move || flusher_loop(inner, shared))
                .expect("spawn background flusher")
        });
        Ok((MiniStore { inner, flusher }, report))
    }

    /// Whether this store is backed by a directory.
    pub fn is_durable(&self) -> bool {
        self.inner.durable.is_some()
    }

    /// Whether an injected crash point has poisoned the store.
    pub fn is_crashed(&self) -> bool {
        self.inner
            .durable
            .as_ref()
            .map(|m| m.lock().wal.is_crashed())
            .unwrap_or(false)
    }

    /// Attach an observability registry. Subsequent operations count
    /// puts, gets, scans, scanned/returned rows, checksum-verified
    /// cells, and block-cache traffic against it (`cfstore.*` counters).
    pub fn set_obs(&mut self, obs: obs::Registry) {
        self.inner.cache.set_obs(obs.clone());
        *self.inner.obs.write() = obs;
    }

    /// Occupancy of the shared segment block cache.
    pub fn cache_stats(&self) -> BlockCacheStats {
        self.inner.cache.stats()
    }

    /// Create a table with a fixed set of column families.
    pub fn create_table(&self, name: &str, families: &[&str]) -> Result<(), StoreError> {
        self.create_table_with_threshold(name, families, DEFAULT_SPLIT_THRESHOLD)
    }

    /// Create a table with a custom region-split threshold (used by the
    /// store-scalability benchmarks).
    pub fn create_table_with_threshold(
        &self,
        name: &str,
        families: &[&str],
        split_threshold: usize,
    ) -> Result<(), StoreError> {
        self.inner
            .create_table_with_threshold(name, families, split_threshold)
    }

    /// Write one cell. In durable mode the cell is WAL-logged (and, under
    /// [`SyncPolicy::EveryOp`], durable) before it becomes visible.
    pub fn put(&self, table: &str, put: Put) -> Result<(), StoreError> {
        self.put_batch(table, vec![put])
    }

    /// Write a batch of cells as one atomic unit: in durable mode the
    /// whole batch is a single WAL frame, so recovery replays all of it
    /// or none of it — multi-row values (a whole profile) never reappear
    /// half-written after a crash.
    pub fn put_batch(&self, table: &str, puts: Vec<Put>) -> Result<(), StoreError> {
        self.inner.put_batch(table, puts)
    }

    /// Read one row (checksum-verified).
    pub fn get(&self, table: &str, row: &[u8]) -> Result<Option<RowResult>, StoreError> {
        self.inner.get(table, row)
    }

    /// Chaos hook: corrupt the latest version of one stored cell in place
    /// (bit-flip without a checksum update), so the next read of that row
    /// fails with [`StoreError::Corruption`]. Returns whether a cell was
    /// actually hit.
    pub fn corrupt_cell(
        &self,
        table: &str,
        row: &[u8],
        family: &str,
        column: &[u8],
    ) -> Result<bool, StoreError> {
        self.inner.corrupt_cell(table, row, family, column)
    }

    /// Delete one row.
    pub fn delete_row(&self, table: &str, row: &[u8]) -> Result<bool, StoreError> {
        self.inner.delete_row(table, row)
    }

    /// Flush dirty regions to immutable segment files and swap the
    /// MANIFEST atomically; clean regions' existing segments are reused
    /// by reference (size-tiered compaction's degenerate-but-correct
    /// base case), and the WAL is truncated afterwards. A no-op for
    /// in-memory stores.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    /// Scan with server-side filtering; regions are scanned in parallel
    /// (one logical region server each) and results merged in key order.
    pub fn scan(
        &self,
        table: &str,
        scan: &Scan,
    ) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        self.inner.scan(table, scan)
    }

    /// The META catalog: one entry per region, keyed like §5.2.2 describes.
    pub fn meta_entries(&self) -> Vec<MetaEntry> {
        self.inner.meta_entries()
    }

    /// Number of regions backing a table.
    pub fn region_count(&self, table: &str) -> Result<usize, StoreError> {
        self.inner.region_count(table)
    }

    // ---- sharded-mode support (crate-internal, driven by `shard.rs`) ----

    /// Lower a cross-shard batch to WAL records (marker first) and append
    /// them as one frame at `lsn_base = gsn * LSN_STRIDE`. Only the log is
    /// touched — the sharded store appends to *every* participant before
    /// applying anywhere, so a torn append on a later participant leaves
    /// no half-applied memory to undo. Returns the lowered records for
    /// the apply stage.
    pub(crate) fn append_sharded_frame(
        &self,
        lsn_base: u64,
        gsn: u64,
        participants: &[u32],
        ops: &[ShardOp],
    ) -> Result<Vec<WalRecord>, StoreError> {
        self.inner
            .append_sharded_frame(lsn_base, gsn, participants, ops)
    }

    /// Apply the records of an already-appended sharded frame to memory,
    /// running the usual split check afterwards (splits are WAL-logged at
    /// the LSNs following the frame, inside the same gsn stride).
    pub(crate) fn apply_sharded_records(&self, records: &[WalRecord]) -> Result<(), StoreError> {
        self.inner.apply_sharded_records(records)
    }

    /// Materialize every region that owns one of `rows`, surfacing any
    /// segment corruption *before* a batch is framed.
    pub(crate) fn prepare_rows(&self, table: &str, rows: &[Bytes]) -> Result<(), StoreError> {
        self.inner.prepare_rows(table, rows)
    }

    /// Replace a table's contents wholesale with rows copied from a
    /// healthy replica (see [`Region::install_rows`]); not WAL-logged —
    /// the caller makes the repair durable with an immediate flush.
    /// Returns the number of rows installed.
    pub(crate) fn heal_table(
        &self,
        table: &str,
        rows: BTreeMap<Bytes, crate::region::RowData>,
    ) -> Result<u64, StoreError> {
        self.inner.heal_table(table, rows)
    }

    /// Merge rows into a table *without* disturbing rows outside the
    /// given set — the resharding copier installs a unit's backlog
    /// while dual-applied writes the target already holds survive.
    /// Like [`MiniStore::heal_table`], not WAL-logged; the caller
    /// flushes immediately after. Returns the number of rows merged.
    pub(crate) fn merge_table_rows(
        &self,
        table: &str,
        rows: BTreeMap<Bytes, crate::region::RowData>,
    ) -> Result<u64, StoreError> {
        self.inner.merge_table_rows(table, rows)
    }

    /// Export a table's full contents — every row, every retained cell
    /// version — verifying each version's checksum so a heal never copies
    /// corruption from its donor.
    pub(crate) fn export_table_rows(
        &self,
        table: &str,
    ) -> Result<BTreeMap<Bytes, crate::region::RowData>, StoreError> {
        self.inner.export_table_rows(table)
    }

    /// `(name, families, split_threshold)` for every table — the schema a
    /// shard rebuild replays onto a fresh replacement shard.
    pub(crate) fn table_schemas(&self) -> Vec<(String, Vec<String>, usize)> {
        self.inner.table_schemas()
    }

    /// Current logical-clock value (the next timestamp this store would
    /// assign). The sharded store resumes its global clock from the max
    /// across shards.
    pub(crate) fn clock_value(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// WAL growth since the last flush — the sharded flusher's per-shard
    /// trigger currency.
    pub(crate) fn wal_bytes_since_flush(&self) -> u64 {
        self.inner
            .durable
            .as_ref()
            .map(|m| {
                let d = m.lock();
                d.wal.bytes_written() - d.wal_bytes_at_reset
            })
            .unwrap_or(0)
    }

    /// Cumulative WAL bytes written this session, *across* flush
    /// truncations — the same currency [`CrashSpec::after_wal_bytes`]
    /// budgets count, so the crash harnesses can measure a clean run
    /// and sweep every byte of it. Zero for an in-memory store.
    pub fn wal_bytes_written(&self) -> u64 {
        self.inner
            .durable
            .as_ref()
            .map(|m| m.lock().wal.bytes_written())
            .unwrap_or(0)
    }
}

impl Drop for MiniStore {
    fn drop(&mut self) {
        if let Some(handle) = self.flusher.take() {
            if let Some(shared) = &self.inner.flush_shared {
                shared.signal.lock().expect("flusher signal lock").shutdown = true;
                shared.cv.notify_all();
            }
            let _ = handle.join();
        }
    }
}

impl StoreInner {
    /// Snapshot the current registry (cheap: `Arc` clone).
    fn obs(&self) -> obs::Registry {
        self.obs.read().clone()
    }

    fn create_table_with_threshold(
        &self,
        name: &str,
        families: &[&str],
        split_threshold: usize,
    ) -> Result<(), StoreError> {
        // Lock order everywhere: durable state first, then the catalog,
        // then region internals — so flushes and mutations never deadlock.
        let mut durable = self.durable.as_ref().map(|m| m.lock());
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        let root_region_id = self.next_region_id.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = durable.as_mut() {
            d.wal.append(&[WalRecord::CreateTable {
                name: name.to_string(),
                families: families.iter().map(|f| f.to_string()).collect(),
                split_threshold: split_threshold as u64,
                root_region_id,
            }])?;
        }
        let region = Arc::new(Region::new(root_region_id, KeyRange::all()));
        tables.insert(
            name.to_string(),
            Arc::new(Table {
                families: families.iter().map(|f| f.to_string()).collect(),
                regions: RwLock::new(vec![region]),
                split_threshold,
            }),
        );
        Ok(())
    }

    fn table(&self, name: &str) -> Result<Arc<Table>, StoreError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    fn put_batch(&self, table: &str, puts: Vec<Put>) -> Result<(), StoreError> {
        self.obs().incr("cfstore.puts", puts.len() as u64);
        let t = self.table(table)?;
        for put in &puts {
            if !t.families.iter().any(|f| f == &put.family) {
                return Err(StoreError::NoSuchColumnFamily {
                    table: table.to_string(),
                    family: put.family.clone(),
                });
            }
        }
        let mut durable = self.durable.as_ref().map(|m| m.lock());
        let mut stamped = Vec::with_capacity(puts.len());
        if let Some(d) = durable.as_mut() {
            // Log-then-apply: stamp every cell, frame the whole batch,
            // and only touch memory once the log accepted it. A torn
            // frame means the caller never saw an ack and recovery drops
            // the tail — nothing to undo.
            let mut records = Vec::with_capacity(puts.len());
            for put in puts {
                let ts = self.clock.fetch_add(1, Ordering::Relaxed);
                records.push(WalRecord::Put {
                    table: table.to_string(),
                    row: put.row.clone(),
                    family: put.family.clone(),
                    column: put.column.clone(),
                    value: put.value.clone(),
                    timestamp: ts,
                });
                stamped.push((put, ts));
            }
            d.wal.append(&records)?;
            // Wake the background flusher once the WAL has grown past
            // the configured threshold since the last flush. Signalled
            // under the durable lock (the flusher blocks on it), so the
            // wake-up cannot race a concurrent flush's reset.
            if let (Some(threshold), Some(shared)) =
                (self.background_flush_wal_bytes, &self.flush_shared)
            {
                if d.wal.bytes_written() - d.wal_bytes_at_reset >= threshold {
                    let mut g = shared.signal.lock().expect("flusher signal lock");
                    if !g.flush_pending {
                        g.flush_pending = true;
                        shared.cv.notify_one();
                    }
                }
            }
        } else {
            for put in puts {
                let ts = self.clock.fetch_add(1, Ordering::Relaxed);
                stamped.push((put, ts));
            }
        }
        let mut touched: Vec<Arc<Region>> = Vec::new();
        for (put, ts) in stamped {
            let region = Self::apply_put(&t, put, ts)?;
            if !touched.iter().any(|r| r.id == region.id) {
                touched.push(region);
            }
        }
        // Split check (amortized: only when a region grew large).
        for region in touched {
            if region.row_count() > t.split_threshold {
                self.split_region(table, &t, &region, durable.as_deref_mut())?;
            }
        }
        Ok(())
    }

    /// Apply one stamped cell to the region owning its row. A concurrent
    /// split can shrink the chosen region's range between lookup and
    /// write; `Region::put` detects this under its lock and we retry
    /// against the refreshed region list. Writing to a segment-backed
    /// region promotes it, which can surface a typed corruption error.
    fn apply_put(t: &Table, put: Put, ts: u64) -> Result<Arc<Region>, StoreError> {
        loop {
            let region = {
                let regions = t.regions.read();
                regions
                    .iter()
                    .find(|r| r.contains_key(&put.row))
                    .cloned()
                    .expect("region ranges cover the key space")
            };
            if region.put(put.clone(), ts)? {
                return Ok(region);
            }
        }
    }

    /// Split one oversized region at its median key. In durable mode the
    /// split point and new region id are WAL-logged *before* the split is
    /// applied, so replay reproduces the exact region topology.
    fn split_region(
        &self,
        table: &str,
        t: &Table,
        region: &Arc<Region>,
        durable: Option<&mut DurableState>,
    ) -> Result<(), StoreError> {
        let mut regions = t.regions.write();
        let Some(split_key) = region.median_key() else {
            return Ok(());
        };
        let new_id = self.next_region_id.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = durable {
            d.wal.append(&[WalRecord::RegionSplit {
                table: table.to_string(),
                parent_id: region.id,
                new_id,
                split_key: split_key.clone(),
            }])?;
        }
        let Some(upper) = region.split_at(&split_key, new_id) else {
            return Ok(());
        };
        let pos = regions
            .iter()
            .position(|r| r.id == region.id)
            .expect("region still registered");
        regions.insert(pos + 1, Arc::new(upper));
        let obs = self.obs();
        obs.event(
            "cfstore.region.split",
            &[
                ("table", obs::Value::from(table)),
                ("parent", obs::Value::from(region.id)),
                ("new", obs::Value::from(new_id)),
            ],
        );
        obs.incr("cfstore.region.splits", 1);
        Ok(())
    }

    fn get(&self, table: &str, row: &[u8]) -> Result<Option<RowResult>, StoreError> {
        let obs = self.obs();
        obs.incr("cfstore.gets", 1);
        let t = self.table(table)?;
        let regions = t.regions.read();
        let result = match regions.iter().find(|r| r.contains_key(row)) {
            Some(r) => r.get(row)?,
            None => None,
        };
        if let Some(row) = &result {
            obs.incr("cfstore.cells_verified", row.cell_count() as u64);
        }
        Ok(result)
    }

    fn corrupt_cell(
        &self,
        table: &str,
        row: &[u8],
        family: &str,
        column: &[u8],
    ) -> Result<bool, StoreError> {
        let t = self.table(table)?;
        let regions = t.regions.read();
        Ok(regions
            .iter()
            .any(|r| r.contains_key(row) && r.corrupt_cell(row, family, column)))
    }

    fn delete_row(&self, table: &str, row: &[u8]) -> Result<bool, StoreError> {
        let t = self.table(table)?;
        let mut durable = self.durable.as_ref().map(|m| m.lock());
        if let Some(d) = durable.as_mut() {
            d.wal.append(&[WalRecord::DeleteRow {
                table: table.to_string(),
                row: Bytes::copy_from_slice(row),
            }])?;
        }
        loop {
            let region = {
                let regions = t.regions.read();
                regions.iter().find(|r| r.contains_key(row)).cloned()
            };
            let Some(region) = region else {
                return Ok(false);
            };
            // `None` means a concurrent split moved the key: re-resolve.
            if let Some(existed) = region.delete_row(row)? {
                return Ok(existed);
            }
        }
    }

    /// The compacting flush (DESIGN.md §12): rewrite only *dirty*
    /// regions; a clean region's existing segment file is carried into
    /// the new manifest by name, so a manifest may mix generations.
    /// Region dirty bits are cleared only after the manifest swap — a
    /// crash mid-flush leaves every region dirty and the next flush
    /// simply retries. Runs under the durable lock, whether called by a
    /// client or by the background flusher.
    fn flush(&self) -> Result<(), StoreError> {
        let Some(m) = &self.durable else {
            return Ok(());
        };
        let mut d = m.lock();
        // Push any group-commit tail out first: everything logged must be
        // durable before the manifest claims to supersede it.
        d.wal.sync()?;
        let flushed_lsn = d.wal.next_lsn() - 1;
        let generation = d.generation + 1;
        let tables = self.tables.read();
        let mut manifest_tables = Vec::new();
        let mut seg_names = Vec::new();
        let mut newly_flushed: Vec<(Arc<Region>, String)> = Vec::new();
        let mut reused = 0u64;
        for (name, t) in tables.iter() {
            manifest_tables.push(ManifestTable {
                name: name.clone(),
                families: t.families.clone(),
                split_threshold: t.split_threshold as u64,
            });
            for r in t.regions.read().iter() {
                if !r.is_dirty() {
                    if let Some(file) = r.flushed_file() {
                        // Clean region: its segment already captures the
                        // exact current rows (no mutation since it was
                        // written — splits and writes both mark dirty).
                        seg_names.push(file);
                        reused += 1;
                        continue;
                    }
                }
                let rows = r.export_rows()?;
                let bytes = segment::encode_segment(name, r.id, &r.range(), &rows);
                let file = recovery::segment_file_name(generation, r.id);
                let path = d.dir.join(&file);
                match d.wal.check_flush_crash() {
                    Ok(()) => {
                        std::fs::write(&path, &bytes).map_err(|e| StoreError::Io(e.to_string()))?;
                        d.wal.segments_written += 1;
                        seg_names.push(file.clone());
                        newly_flushed.push((r.clone(), file));
                    }
                    Err(WalError::Crashed) => {
                        // Tear the victim segment halfway and die: the
                        // manifest never swaps, so recovery sees this
                        // file only as an orphan.
                        let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
                        return Err(StoreError::Crashed);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        let manifest = Manifest {
            flushed_lsn,
            clock: self.clock.load(Ordering::Relaxed),
            next_region_id: self.next_region_id.load(Ordering::Relaxed),
            generation,
            tables: manifest_tables,
            segments: seg_names.clone(),
        };
        recovery::write_manifest(&d.dir, &manifest).map_err(|e| StoreError::Io(e.to_string()))?;
        d.wal.reset_after_flush()?;
        d.wal_bytes_at_reset = d.wal.bytes_written();
        d.generation = generation;
        // Only after the manifest swap do the rewritten regions become
        // clean (crash-safe ordering: an un-swapped manifest must leave
        // them dirty so the retry rewrites them).
        let written = newly_flushed.len() as u64;
        for (r, file) in newly_flushed {
            r.mark_flushed(file);
        }
        let mut superseded = 0u64;
        if let Ok(entries) = std::fs::read_dir(&d.dir) {
            for entry in entries.flatten() {
                let fname = entry.file_name().to_string_lossy().into_owned();
                if fname.starts_with("seg-")
                    && fname.ends_with(".seg")
                    && !seg_names.contains(&fname)
                    && std::fs::remove_file(entry.path()).is_ok()
                {
                    superseded += 1;
                }
            }
        }
        let obs = self.obs();
        obs.event(
            "cfstore.flush",
            &[
                ("segments", obs::Value::from(seg_names.len())),
                ("written", obs::Value::from(written)),
                ("reused", obs::Value::from(reused)),
                ("superseded", obs::Value::from(superseded)),
                ("flushed_lsn", obs::Value::from(flushed_lsn)),
            ],
        );
        obs.incr("cfstore.flushes", 1);
        obs.incr("cfstore.flush.segments_written", written);
        obs.incr("cfstore.flush.segments_reused", reused);
        Ok(())
    }

    fn scan(&self, table: &str, scan: &Scan) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        let t = self.table(table)?;
        let regions: Vec<Arc<Region>> = {
            let guard = t.regions.read();
            guard
                .iter()
                .filter(|r| range_overlaps(&r.range(), &scan.start, scan.stop.as_deref()))
                .cloned()
                .collect()
        };
        let filter = scan.filter.as_deref();
        let mut partials: Vec<(Vec<RowResult>, ScanMetrics)> = Vec::with_capacity(regions.len());
        if regions.len() <= 1 {
            for r in &regions {
                partials.push(r.scan(&scan.start, scan.stop.as_deref(), filter)?);
            }
        } else {
            let results = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = regions
                    .iter()
                    .map(|r| {
                        let start = &scan.start;
                        let stop = scan.stop.as_deref();
                        s.spawn(move |_| r.scan(start, stop, filter))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region scan panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("scan scope");
            for result in results {
                partials.push(result?);
            }
        }
        // Per-region read-amplification counters (rows each region
        // touched vs returned), recorded before the merge flattens the
        // partials. Key formatting is gated so the disabled-registry
        // fast path stays allocation-free.
        let obs = self.obs();
        if obs.is_enabled() {
            for (region, (_, m)) in regions.iter().zip(&partials) {
                obs.incr(
                    &format!("cfstore.region.{}.rows_scanned", region.id),
                    m.rows_scanned,
                );
                obs.incr(
                    &format!("cfstore.region.{}.rows_returned", region.id),
                    m.rows_returned,
                );
            }
        }
        let mut rows = Vec::new();
        let mut metrics = ScanMetrics::default();
        for (mut part, m) in partials {
            rows.append(&mut part);
            metrics.merge(m);
        }
        rows.sort_by(|a, b| a.row.cmp(&b.row));
        // Counters are recorded once per scan from the merged metrics, so
        // parallel region scans never contend on the registry mutex.
        obs.incr("cfstore.scans", 1);
        obs.incr("cfstore.rows_scanned", metrics.rows_scanned);
        obs.incr("cfstore.rows_returned", metrics.rows_returned);
        obs.incr("cfstore.cells_verified", metrics.cells_scanned);
        Ok((rows, metrics))
    }

    fn meta_entries(&self) -> Vec<MetaEntry> {
        let tables = self.tables.read();
        let mut entries = Vec::new();
        for (name, t) in tables.iter() {
            for r in t.regions.read().iter() {
                entries.push(MetaEntry {
                    table: name.clone(),
                    start_key: r.range().start.clone(),
                    region_id: r.id,
                    region_server: (r.id % self.region_servers as u64) as u32,
                });
            }
        }
        entries
    }

    fn region_count(&self, table: &str) -> Result<usize, StoreError> {
        Ok(self.table(table)?.regions.read().len())
    }

    // ---- sharded-mode support ----

    fn append_sharded_frame(
        &self,
        lsn_base: u64,
        gsn: u64,
        participants: &[u32],
        ops: &[ShardOp],
    ) -> Result<Vec<WalRecord>, StoreError> {
        let mut records = Vec::with_capacity(ops.len() + 1);
        records.push(WalRecord::BatchMarker {
            gsn,
            participants: participants.to_vec(),
        });
        for op in ops {
            records.push(match op {
                ShardOp::CreateTable {
                    name,
                    families,
                    split_threshold,
                } => WalRecord::CreateTable {
                    name: name.clone(),
                    families: families.clone(),
                    split_threshold: *split_threshold,
                    root_region_id: self.next_region_id.fetch_add(1, Ordering::Relaxed),
                },
                ShardOp::Put {
                    table,
                    put,
                    timestamp,
                } => WalRecord::Put {
                    table: table.clone(),
                    row: put.row.clone(),
                    family: put.family.clone(),
                    column: put.column.clone(),
                    value: put.value.clone(),
                    timestamp: *timestamp,
                },
                ShardOp::DeleteRow { table, row } => WalRecord::DeleteRow {
                    table: table.clone(),
                    row: row.clone(),
                },
            });
        }
        let mut d = self
            .durable
            .as_ref()
            .expect("sharded shards are always durable")
            .lock();
        d.wal.append_at(lsn_base, &records)?;
        Ok(records)
    }

    /// Apply an already-logged sharded frame. The batch path promoted
    /// every target region *before* the frame was appended anywhere
    /// ([`StoreInner::prepare_rows`]), so nothing here can fail with a
    /// corruption error; the only fallible part is WAL-logging a split
    /// this batch triggers, and by then the frame is durable on every
    /// participant — recovery replays it whole.
    fn apply_sharded_records(&self, records: &[WalRecord]) -> Result<(), StoreError> {
        let mut durable = self.durable.as_ref().map(|m| m.lock());
        let mut touched: Vec<(String, Arc<Table>, Arc<Region>)> = Vec::new();
        let mut puts = 0u64;
        for record in records {
            match record {
                WalRecord::BatchMarker { .. } => {}
                WalRecord::CreateTable {
                    name,
                    families,
                    split_threshold,
                    root_region_id,
                } => {
                    let mut tables = self.tables.write();
                    if tables.contains_key(name) {
                        return Err(StoreError::TableExists(name.clone()));
                    }
                    let region = Arc::new(Region::new(*root_region_id, KeyRange::all()));
                    tables.insert(
                        name.clone(),
                        Arc::new(Table {
                            families: families.clone(),
                            regions: RwLock::new(vec![region]),
                            split_threshold: *split_threshold as usize,
                        }),
                    );
                }
                WalRecord::Put {
                    table,
                    row,
                    family,
                    column,
                    value,
                    timestamp,
                } => {
                    puts += 1;
                    // Keep the shard's own clock (and therefore its
                    // manifest's clock field) ahead of every globally
                    // stamped timestamp it stores, so a reopened sharded
                    // store resumes its global clock correctly even when
                    // every frame was flushed out of the WALs.
                    self.clock.fetch_max(*timestamp + 1, Ordering::Relaxed);
                    let t = self.table(table)?;
                    let put = Put {
                        row: row.clone(),
                        family: family.clone(),
                        column: column.clone(),
                        value: value.clone(),
                    };
                    let region = Self::apply_put(&t, put, *timestamp)?;
                    if !touched
                        .iter()
                        .any(|(name, _, r)| name == table && r.id == region.id)
                    {
                        touched.push((table.clone(), t, region));
                    }
                }
                WalRecord::DeleteRow { table, row } => {
                    let t = self.table(table)?;
                    loop {
                        let region = {
                            let regions = t.regions.read();
                            regions.iter().find(|r| r.contains_key(row)).cloned()
                        };
                        let Some(region) = region else {
                            break;
                        };
                        if region.delete_row(row)?.is_some() {
                            break;
                        }
                    }
                }
                WalRecord::RegionSplit { .. } => {
                    debug_assert!(false, "sharded frames never carry split records");
                }
            }
        }
        for (name, t, region) in touched {
            if region.row_count() > t.split_threshold {
                self.split_region(&name, &t, &region, durable.as_deref_mut())?;
            }
        }
        if puts > 0 {
            self.obs().incr("cfstore.puts", puts);
        }
        Ok(())
    }

    fn prepare_rows(&self, table: &str, rows: &[Bytes]) -> Result<(), StoreError> {
        let t = self.table(table)?;
        let regions = t.regions.read();
        for row in rows {
            if let Some(r) = regions.iter().find(|r| r.contains_key(row)) {
                r.prepare_for_write()?;
            }
        }
        Ok(())
    }

    fn heal_table(
        &self,
        table: &str,
        rows: BTreeMap<Bytes, crate::region::RowData>,
    ) -> Result<u64, StoreError> {
        let t = self.table(table)?;
        // Hold the durable lock so no flush snapshots a half-installed
        // table; the heal itself is deliberately *not* WAL-logged (a
        // replay would try to promote the corrupt base this heal is
        // replacing) — durability comes from the flush the caller runs
        // right after.
        let _durable = self.durable.as_ref().map(|m| m.lock());
        let regions = t.regions.read();
        let healed = rows.len() as u64;
        for region in regions.iter() {
            let range = region.range();
            let lower = std::ops::Bound::Included(range.start.clone());
            let upper = match &range.end {
                Some(end) => std::ops::Bound::Excluded(end.clone()),
                None => std::ops::Bound::Unbounded,
            };
            let mine: BTreeMap<Bytes, crate::region::RowData> = rows
                .range::<Bytes, _>((lower, upper))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            region.install_rows(mine);
        }
        Ok(healed)
    }

    fn merge_table_rows(
        &self,
        table: &str,
        rows: BTreeMap<Bytes, crate::region::RowData>,
    ) -> Result<u64, StoreError> {
        let t = self.table(table)?;
        // Same durability story as heal_table: not WAL-logged, the
        // caller flushes right after. Unlike a heal, existing rows
        // outside `rows` survive — a migration target keeps its
        // dual-applied writes while the copier installs the backlog.
        let _durable = self.durable.as_ref().map(|m| m.lock());
        let regions = t.regions.read();
        let merged = rows.len() as u64;
        for region in regions.iter() {
            let range = region.range();
            let lower = std::ops::Bound::Included(range.start.clone());
            let upper = match &range.end {
                Some(end) => std::ops::Bound::Excluded(end.clone()),
                None => std::ops::Bound::Unbounded,
            };
            let mine: BTreeMap<Bytes, crate::region::RowData> = rows
                .range::<Bytes, _>((lower, upper))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let mut all = region.export_rows()?;
            all.extend(mine);
            region.install_rows(all);
        }
        Ok(merged)
    }

    fn export_table_rows(
        &self,
        table: &str,
    ) -> Result<BTreeMap<Bytes, crate::region::RowData>, StoreError> {
        let t = self.table(table)?;
        let regions: Vec<Arc<Region>> = t.regions.read().iter().cloned().collect();
        let mut out = BTreeMap::new();
        for r in regions {
            for (key, data) in r.export_rows()? {
                // A heal donor must be provably clean: verify *every*
                // retained version, not just the latest a read would
                // check, so corruption never propagates between replicas.
                for cols in data.values() {
                    for (col, versions) in cols {
                        for v in versions {
                            if !v.verify() {
                                return Err(StoreError::Corruption {
                                    row: String::from_utf8_lossy(&key).into_owned(),
                                    column: String::from_utf8_lossy(col).into_owned(),
                                });
                            }
                        }
                    }
                }
                out.insert(key, data);
            }
        }
        Ok(out)
    }

    fn table_schemas(&self) -> Vec<(String, Vec<String>, usize)> {
        self.tables
            .read()
            .iter()
            .map(|(name, t)| (name.clone(), t.families.clone(), t.split_threshold))
            .collect()
    }
}

impl Default for MiniStore {
    fn default() -> Self {
        Self::new()
    }
}

fn range_overlaps(range: &KeyRange, start: &[u8], stop: Option<&[u8]>) -> bool {
    let starts_before_range_end = match &range.end {
        Some(end) => start < end.as_ref(),
        None => true,
    };
    let stops_after_range_start = match stop {
        Some(stop) => stop > range.start.as_ref(),
        None => true,
    };
    starts_before_range_end && stops_after_range_start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{PredicateFilter, RowPrefixFilter};
    use crate::wal::WAL_FILE;

    fn bput(row: &str, col: &str, val: &str) -> Put {
        Put::new(
            Bytes::copy_from_slice(row.as_bytes()),
            "f",
            Bytes::copy_from_slice(col.as_bytes()),
            Bytes::copy_from_slice(val.as_bytes()),
        )
    }

    #[test]
    fn create_put_get() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("r1", "c", "v")).unwrap();
        let row = store.get("t", b"r1").unwrap().unwrap();
        assert_eq!(row.value("f", b"c").unwrap().as_ref(), b"v");
        assert!(store.get("t", b"zz").unwrap().is_none());
    }

    #[test]
    fn unknown_family_is_rejected() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        let err = store
            .put("t", Put::new("r", "other", "c", "v"))
            .unwrap_err();
        assert!(matches!(err, StoreError::NoSuchColumnFamily { .. }));
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        assert!(matches!(
            store.create_table("t", &["f"]),
            Err(StoreError::TableExists(_))
        ));
    }

    #[test]
    fn scan_prefix_returns_sorted_rows() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        for k in ["Static/j2", "Static/j1", "Dynamic/j1"] {
            store.put("t", bput(k, "c", "v")).unwrap();
        }
        let (rows, metrics) = store.scan("t", &Scan::prefix(b"Static/")).unwrap();
        let keys: Vec<&[u8]> = rows.iter().map(|r| r.row.as_ref()).collect();
        assert_eq!(keys, vec![b"Static/j1".as_ref(), b"Static/j2".as_ref()]);
        // Range-pruned scan never touched the Dynamic row.
        assert_eq!(metrics.rows_scanned, 2);
    }

    #[test]
    fn regions_split_as_the_table_grows() {
        let store = MiniStore::new();
        store.create_table_with_threshold("t", &["f"], 16).unwrap();
        for i in 0..200 {
            store
                .put("t", bput(&format!("row{i:04}"), "c", "v"))
                .unwrap();
        }
        assert!(store.region_count("t").unwrap() > 4);
        // All rows still reachable.
        let (rows, metrics) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 200);
        assert_eq!(
            metrics.regions_visited as usize,
            store.region_count("t").unwrap()
        );
        // META has one entry per region.
        assert_eq!(store.meta_entries().len(), store.region_count("t").unwrap());
    }

    #[test]
    fn filter_pushdown_reduces_returned_rows_not_scanned_rows() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        for i in 0..50 {
            store.put("t", bput(&format!("r{i:02}"), "c", "v")).unwrap();
        }
        let scan = Scan::all().with_filter(Box::new(PredicateFilter {
            name: "even rows".to_string(),
            pred: |r: &RowResult| r.row.last() == Some(&b'0'),
        }));
        let (rows, metrics) = store.scan("t", &scan).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(metrics.rows_scanned, 50);
        assert_eq!(metrics.rows_returned, 5);
    }

    #[test]
    fn corruption_surfaces_through_store_get_and_scan() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("r1", "c", "payload")).unwrap();
        store.put("t", bput("r2", "c", "clean")).unwrap();
        assert!(store.corrupt_cell("t", b"r1", "f", b"c").unwrap());

        assert!(matches!(
            store.get("t", b"r1"),
            Err(StoreError::Corruption { .. })
        ));
        assert!(store.get("t", b"r2").unwrap().is_some());
        assert!(matches!(
            store.scan("t", &Scan::all()),
            Err(StoreError::Corruption { .. })
        ));
        // Overwriting the cell restamps the checksum and heals the row.
        store.put("t", bput("r1", "c", "rewritten")).unwrap();
        assert!(store.get("t", b"r1").unwrap().is_some());
    }

    #[test]
    fn delete_row_via_store() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("r1", "c", "v")).unwrap();
        assert!(store.delete_row("t", b"r1").unwrap());
        assert!(store.get("t", b"r1").unwrap().is_none());
    }

    #[test]
    fn prefix_scan_handles_0xff_prefix() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        let scan = Scan::prefix(&[0xff, 0xff]);
        assert!(scan.stop.is_none());
        let _ = store.scan("t", &scan).unwrap();
    }

    #[test]
    fn scans_are_parallel_across_regions_and_still_ordered() {
        let store = MiniStore::new();
        store.create_table_with_threshold("t", &["f"], 8).unwrap();
        for i in (0..100).rev() {
            store.put("t", bput(&format!("k{i:03}"), "c", "v")).unwrap();
        }
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        let keys: Vec<_> = rows.iter().map(|r| r.row.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(rows.len(), 100);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cfstore-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_store_replays_wal_after_reopen() {
        let dir = tmp_dir("replay");
        {
            let (store, report) = MiniStore::open(&dir).unwrap();
            assert_eq!(report, RecoveryReport::default());
            store.create_table("t", &["f"]).unwrap();
            for i in 0..10 {
                store
                    .put("t", bput(&format!("r{i}"), "c", &format!("v{i}")))
                    .unwrap();
            }
            store.delete_row("t", b"r3").unwrap();
        } // dropped without flush: everything lives in the WAL
        let (store, report) = MiniStore::open(&dir).unwrap();
        assert_eq!(report.frames_replayed, 12);
        assert!(report.truncation.is_none());
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|r| r.row.as_ref() != b"r3"));
        assert_eq!(
            store
                .get("t", b"r7")
                .unwrap()
                .unwrap()
                .value("f", b"c")
                .unwrap()
                .as_ref(),
            b"v7"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_moves_rows_into_segments_and_truncates_the_wal() {
        let dir = tmp_dir("flush");
        {
            let (store, _) = MiniStore::open(&dir).unwrap();
            store.create_table("t", &["f"]).unwrap();
            for i in 0..20 {
                store.put("t", bput(&format!("r{i:02}"), "c", "v")).unwrap();
            }
            store.flush().unwrap();
            assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
            // Post-flush writes land in the fresh WAL.
            store.put("t", bput("zz", "c", "late")).unwrap();
        }
        let (store, report) = MiniStore::open(&dir).unwrap();
        assert_eq!(report.segments_loaded, 1);
        assert_eq!(report.segment_rows, 20);
        assert_eq!(report.frames_replayed, 1);
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 21);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn splits_and_region_topology_survive_reopen() {
        let dir = tmp_dir("topology");
        let before = {
            let (store, _) = MiniStore::open(&dir).unwrap();
            store.create_table_with_threshold("t", &["f"], 8).unwrap();
            for i in 0..60 {
                store.put("t", bput(&format!("k{i:03}"), "c", "v")).unwrap();
            }
            store.meta_entries()
        };
        assert!(before.len() > 1, "the table must actually have split");
        let (store, _) = MiniStore::open(&dir).unwrap();
        assert_eq!(store.meta_entries(), before);
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 60);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_store_is_poisoned_and_recovers_without_the_torn_tail() {
        let dir = tmp_dir("poison");
        let mut acked = Vec::new();
        {
            let (store, _) =
                MiniStore::open_with(&dir, SyncPolicy::EveryOp, CrashSpec::after_wal_bytes(700))
                    .unwrap();
            store.create_table("t", &["f"]).unwrap();
            for i in 0..50 {
                let key = format!("r{i:02}");
                match store.put("t", bput(&key, "c", "v")) {
                    Ok(()) => acked.push(key),
                    Err(StoreError::Crashed) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert!(store.is_crashed());
            // Every further durable mutation fails fast.
            assert_eq!(
                store.put("t", bput("x", "c", "v")),
                Err(StoreError::Crashed)
            );
            assert_eq!(store.flush(), Err(StoreError::Crashed));
        }
        let (store, report) = MiniStore::open(&dir).unwrap();
        assert!(report.wal_bytes_dropped > 0);
        assert!(report.truncation.is_some());
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        let got: Vec<String> = rows
            .iter()
            .map(|r| String::from_utf8_lossy(&r.row).into_owned())
            .collect();
        assert_eq!(got, acked, "recovered rows are exactly the acked writes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_flush_leaves_an_orphan_and_loses_nothing() {
        let dir = tmp_dir("midflush");
        {
            let (store, _) = MiniStore::open_with(
                &dir,
                SyncPolicy::EveryOp,
                CrashSpec {
                    during_flush_segment: Some(0),
                    ..CrashSpec::default()
                },
            )
            .unwrap();
            store.create_table("t", &["f"]).unwrap();
            for i in 0..10 {
                store.put("t", bput(&format!("r{i}"), "c", "v")).unwrap();
            }
            assert_eq!(store.flush(), Err(StoreError::Crashed));
        }
        let (store, report) = MiniStore::open(&dir).unwrap();
        assert_eq!(report.segments_loaded, 0, "manifest never swapped");
        assert_eq!(report.orphan_segments.len(), 1, "torn segment is an orphan");
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 10, "the WAL still covers every acked write");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_crash_loses_at_most_the_unsynced_tail() {
        let dir = tmp_dir("groupcrash");
        let mut acked = 0usize;
        {
            let (store, _) = MiniStore::open_with(
                &dir,
                SyncPolicy::GroupCommit(4),
                CrashSpec::after_wal_bytes(600),
            )
            .unwrap();
            store.create_table("t", &["f"]).unwrap();
            for i in 0..50 {
                match store.put("t", bput(&format!("r{i:02}"), "c", "v")) {
                    Ok(()) => acked += 1,
                    Err(StoreError::Crashed) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
        let (store, _) = MiniStore::open(&dir).unwrap();
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        // A synced prefix is never lost; an unsynced tail of < group size
        // may be.
        assert!(rows.len() <= acked);
        assert!(acked - rows.len() < 4, "lost more than one commit group");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_store_flush_is_a_noop() {
        let store = MiniStore::new();
        assert!(!store.is_durable());
        assert!(!store.is_crashed());
        store.flush().unwrap();
    }

    #[test]
    fn prefix_filter_composes_with_prefix_scan() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("Static/a", "c", "v")).unwrap();
        let scan = Scan::prefix(b"Static/").with_filter(Box::new(RowPrefixFilter {
            prefix: Bytes::from("Static/"),
        }));
        let (rows, _) = store.scan("t", &scan).unwrap();
        assert_eq!(rows.len(), 1);
    }
}
