//! The store: tables, the META catalog, region assignment, and the
//! client API (create/put/get/scan/delete) with server-side filter
//! pushdown and parallel region scans.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::filter::Filter;
use crate::kv::{Put, RowResult};
use crate::region::{KeyRange, Region, ScanMetrics};

/// Rows per region before a split is triggered.
const DEFAULT_SPLIT_THRESHOLD: usize = 256;

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    TableExists(String),
    NoSuchTable(String),
    NoSuchColumnFamily {
        table: String,
        family: String,
    },
    /// A stored cell's value no longer matches its write-time CRC-32 —
    /// at-rest corruption detected on read.
    Corruption {
        row: String,
        column: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StoreError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            StoreError::NoSuchColumnFamily { table, family } => {
                write!(
                    f,
                    "table `{table}` has no column family `{family}` \
                     (families are fixed at table creation, as in HBase)"
                )
            }
            StoreError::Corruption { row, column } => {
                write!(
                    f,
                    "checksum mismatch in row `{row}`, column `{column}`: \
                     stored cell is corrupt"
                )
            }
        }
    }
}
impl std::error::Error for StoreError {}

/// A scan request.
pub struct Scan {
    /// Inclusive start row.
    pub start: Bytes,
    /// Exclusive stop row; `None` scans to the end of the table.
    pub stop: Option<Bytes>,
    /// Server-side filter, evaluated at the regions.
    pub filter: Option<Box<dyn Filter>>,
}

impl Scan {
    /// Full-table scan.
    pub fn all() -> Self {
        Scan {
            start: Bytes::new(),
            stop: None,
            filter: None,
        }
    }

    /// Scan rows with a given prefix (start = prefix, stop = prefix+1).
    pub fn prefix(prefix: &[u8]) -> Self {
        let mut stop = prefix.to_vec();
        for i in (0..stop.len()).rev() {
            if stop[i] < 0xff {
                stop[i] += 1;
                stop.truncate(i + 1);
                return Scan {
                    start: Bytes::copy_from_slice(prefix),
                    stop: Some(Bytes::from(stop)),
                    filter: None,
                };
            }
        }
        Scan {
            start: Bytes::copy_from_slice(prefix),
            stop: None,
            filter: None,
        }
    }

    pub fn with_filter(mut self, filter: Box<dyn Filter>) -> Self {
        self.filter = Some(filter);
        self
    }
}

/// One table: a fixed set of column families and a list of regions sorted
/// by start key.
struct Table {
    families: Vec<String>,
    regions: RwLock<Vec<Arc<Region>>>,
    split_threshold: usize,
}

/// An entry of the META catalog: `(table, start_key, region_id) → region
/// server` (§5.2.2's key shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaEntry {
    pub table: String,
    pub start_key: Bytes,
    pub region_id: u64,
    pub region_server: u32,
}

/// The miniature column-family store.
pub struct MiniStore {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    clock: AtomicU64,
    next_region_id: AtomicU64,
    /// Simulated region-server count for META assignment reporting.
    region_servers: u32,
    /// Observability sink for the `cfstore.*` counters (DESIGN.md §10);
    /// disabled (a single branch per operation) unless a caller attaches
    /// an enabled registry via [`MiniStore::set_obs`].
    obs: obs::Registry,
}

impl MiniStore {
    /// An empty store with no tables and observability disabled.
    pub fn new() -> Self {
        MiniStore {
            tables: RwLock::new(BTreeMap::new()),
            clock: AtomicU64::new(1),
            next_region_id: AtomicU64::new(1),
            region_servers: 4,
            obs: obs::Registry::disabled(),
        }
    }

    /// Attach an observability registry. Subsequent operations count
    /// puts, gets, scans, scanned/returned rows, and checksum-verified
    /// cells against it (`cfstore.*` counters).
    pub fn set_obs(&mut self, obs: obs::Registry) {
        self.obs = obs;
    }

    /// Create a table with a fixed set of column families.
    pub fn create_table(&self, name: &str, families: &[&str]) -> Result<(), StoreError> {
        self.create_table_with_threshold(name, families, DEFAULT_SPLIT_THRESHOLD)
    }

    /// Create a table with a custom region-split threshold (used by the
    /// store-scalability benchmarks).
    pub fn create_table_with_threshold(
        &self,
        name: &str,
        families: &[&str],
        split_threshold: usize,
    ) -> Result<(), StoreError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        let region = Arc::new(Region::new(
            self.next_region_id.fetch_add(1, Ordering::Relaxed),
            KeyRange::all(),
        ));
        tables.insert(
            name.to_string(),
            Arc::new(Table {
                families: families.iter().map(|f| f.to_string()).collect(),
                regions: RwLock::new(vec![region]),
                split_threshold,
            }),
        );
        Ok(())
    }

    fn table(&self, name: &str) -> Result<Arc<Table>, StoreError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Write one cell.
    pub fn put(&self, table: &str, put: Put) -> Result<(), StoreError> {
        self.obs.incr("cfstore.puts", 1);
        let t = self.table(table)?;
        if !t.families.iter().any(|f| f == &put.family) {
            return Err(StoreError::NoSuchColumnFamily {
                table: table.to_string(),
                family: put.family.clone(),
            });
        }
        let ts = self.clock.fetch_add(1, Ordering::Relaxed);
        // A concurrent split can shrink the chosen region's range between
        // lookup and write; `Region::put` detects this under its lock and
        // we retry against the refreshed region list.
        let region = loop {
            let region = {
                let regions = t.regions.read();
                regions
                    .iter()
                    .find(|r| r.contains_key(&put.row))
                    .cloned()
                    .expect("region ranges cover the key space")
            };
            if region.put(put.clone(), ts) {
                break region;
            }
        };
        // Split check (amortized: only when the region grew large).
        if region.row_count() > t.split_threshold {
            let mut regions = t.regions.write();
            if let Some(upper) = region.split(self.next_region_id.fetch_add(1, Ordering::Relaxed)) {
                let pos = regions
                    .iter()
                    .position(|r| r.id == region.id)
                    .expect("region still registered");
                regions.insert(pos + 1, Arc::new(upper));
            }
        }
        Ok(())
    }

    /// Read one row (checksum-verified).
    pub fn get(&self, table: &str, row: &[u8]) -> Result<Option<RowResult>, StoreError> {
        self.obs.incr("cfstore.gets", 1);
        let t = self.table(table)?;
        let regions = t.regions.read();
        let result = match regions.iter().find(|r| r.contains_key(row)) {
            Some(r) => r.get(row)?,
            None => None,
        };
        if let Some(row) = &result {
            self.obs
                .incr("cfstore.cells_verified", row.cell_count() as u64);
        }
        Ok(result)
    }

    /// Chaos hook: corrupt the latest version of one stored cell in place
    /// (bit-flip without a checksum update), so the next read of that row
    /// fails with [`StoreError::Corruption`]. Returns whether a cell was
    /// actually hit.
    pub fn corrupt_cell(
        &self,
        table: &str,
        row: &[u8],
        family: &str,
        column: &[u8],
    ) -> Result<bool, StoreError> {
        let t = self.table(table)?;
        let regions = t.regions.read();
        Ok(regions
            .iter()
            .any(|r| r.contains_key(row) && r.corrupt_cell(row, family, column)))
    }

    /// Delete one row.
    pub fn delete_row(&self, table: &str, row: &[u8]) -> Result<bool, StoreError> {
        let t = self.table(table)?;
        loop {
            let region = {
                let regions = t.regions.read();
                regions.iter().find(|r| r.contains_key(row)).cloned()
            };
            let Some(region) = region else {
                return Ok(false);
            };
            // `None` means a concurrent split moved the key: re-resolve.
            if let Some(existed) = region.delete_row(row) {
                return Ok(existed);
            }
        }
    }

    /// Scan with server-side filtering; regions are scanned in parallel
    /// (one logical region server each) and results merged in key order.
    pub fn scan(
        &self,
        table: &str,
        scan: &Scan,
    ) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        let t = self.table(table)?;
        let regions: Vec<Arc<Region>> = {
            let guard = t.regions.read();
            guard
                .iter()
                .filter(|r| range_overlaps(&r.range(), &scan.start, scan.stop.as_deref()))
                .cloned()
                .collect()
        };
        let filter = scan.filter.as_deref();
        let mut partials: Vec<(Vec<RowResult>, ScanMetrics)> = Vec::with_capacity(regions.len());
        if regions.len() <= 1 {
            for r in &regions {
                partials.push(r.scan(&scan.start, scan.stop.as_deref(), filter)?);
            }
        } else {
            let results = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = regions
                    .iter()
                    .map(|r| {
                        let start = &scan.start;
                        let stop = scan.stop.as_deref();
                        s.spawn(move |_| r.scan(start, stop, filter))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region scan panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("scan scope");
            for result in results {
                partials.push(result?);
            }
        }
        let mut rows = Vec::new();
        let mut metrics = ScanMetrics::default();
        for (mut part, m) in partials {
            rows.append(&mut part);
            metrics.merge(m);
        }
        rows.sort_by(|a, b| a.row.cmp(&b.row));
        // Counters are recorded once per scan from the merged metrics, so
        // parallel region scans never contend on the registry mutex.
        self.obs.incr("cfstore.scans", 1);
        self.obs.incr("cfstore.rows_scanned", metrics.rows_scanned);
        self.obs
            .incr("cfstore.rows_returned", metrics.rows_returned);
        self.obs
            .incr("cfstore.cells_verified", metrics.cells_scanned);
        Ok((rows, metrics))
    }

    /// The META catalog: one entry per region, keyed like §5.2.2 describes.
    pub fn meta_entries(&self) -> Vec<MetaEntry> {
        let tables = self.tables.read();
        let mut entries = Vec::new();
        for (name, t) in tables.iter() {
            for r in t.regions.read().iter() {
                entries.push(MetaEntry {
                    table: name.clone(),
                    start_key: r.range().start.clone(),
                    region_id: r.id,
                    region_server: (r.id % self.region_servers as u64) as u32,
                });
            }
        }
        entries
    }

    /// Number of regions backing a table.
    pub fn region_count(&self, table: &str) -> Result<usize, StoreError> {
        Ok(self.table(table)?.regions.read().len())
    }
}

impl Default for MiniStore {
    fn default() -> Self {
        Self::new()
    }
}

fn range_overlaps(range: &KeyRange, start: &[u8], stop: Option<&[u8]>) -> bool {
    let starts_before_range_end = match &range.end {
        Some(end) => start < end.as_ref(),
        None => true,
    };
    let stops_after_range_start = match stop {
        Some(stop) => stop > range.start.as_ref(),
        None => true,
    };
    starts_before_range_end && stops_after_range_start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{PredicateFilter, RowPrefixFilter};

    fn bput(row: &str, col: &str, val: &str) -> Put {
        Put::new(
            Bytes::copy_from_slice(row.as_bytes()),
            "f",
            Bytes::copy_from_slice(col.as_bytes()),
            Bytes::copy_from_slice(val.as_bytes()),
        )
    }

    #[test]
    fn create_put_get() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("r1", "c", "v")).unwrap();
        let row = store.get("t", b"r1").unwrap().unwrap();
        assert_eq!(row.value("f", b"c").unwrap().as_ref(), b"v");
        assert!(store.get("t", b"zz").unwrap().is_none());
    }

    #[test]
    fn unknown_family_is_rejected() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        let err = store
            .put("t", Put::new("r", "other", "c", "v"))
            .unwrap_err();
        assert!(matches!(err, StoreError::NoSuchColumnFamily { .. }));
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        assert!(matches!(
            store.create_table("t", &["f"]),
            Err(StoreError::TableExists(_))
        ));
    }

    #[test]
    fn scan_prefix_returns_sorted_rows() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        for k in ["Static/j2", "Static/j1", "Dynamic/j1"] {
            store.put("t", bput(k, "c", "v")).unwrap();
        }
        let (rows, metrics) = store.scan("t", &Scan::prefix(b"Static/")).unwrap();
        let keys: Vec<&[u8]> = rows.iter().map(|r| r.row.as_ref()).collect();
        assert_eq!(keys, vec![b"Static/j1".as_ref(), b"Static/j2".as_ref()]);
        // Range-pruned scan never touched the Dynamic row.
        assert_eq!(metrics.rows_scanned, 2);
    }

    #[test]
    fn regions_split_as_the_table_grows() {
        let store = MiniStore::new();
        store.create_table_with_threshold("t", &["f"], 16).unwrap();
        for i in 0..200 {
            store
                .put("t", bput(&format!("row{i:04}"), "c", "v"))
                .unwrap();
        }
        assert!(store.region_count("t").unwrap() > 4);
        // All rows still reachable.
        let (rows, metrics) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 200);
        assert_eq!(
            metrics.regions_visited as usize,
            store.region_count("t").unwrap()
        );
        // META has one entry per region.
        assert_eq!(store.meta_entries().len(), store.region_count("t").unwrap());
    }

    #[test]
    fn filter_pushdown_reduces_returned_rows_not_scanned_rows() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        for i in 0..50 {
            store.put("t", bput(&format!("r{i:02}"), "c", "v")).unwrap();
        }
        let scan = Scan::all().with_filter(Box::new(PredicateFilter {
            name: "even rows".to_string(),
            pred: |r: &RowResult| r.row.last() == Some(&b'0'),
        }));
        let (rows, metrics) = store.scan("t", &scan).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(metrics.rows_scanned, 50);
        assert_eq!(metrics.rows_returned, 5);
    }

    #[test]
    fn corruption_surfaces_through_store_get_and_scan() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("r1", "c", "payload")).unwrap();
        store.put("t", bput("r2", "c", "clean")).unwrap();
        assert!(store.corrupt_cell("t", b"r1", "f", b"c").unwrap());

        assert!(matches!(
            store.get("t", b"r1"),
            Err(StoreError::Corruption { .. })
        ));
        assert!(store.get("t", b"r2").unwrap().is_some());
        assert!(matches!(
            store.scan("t", &Scan::all()),
            Err(StoreError::Corruption { .. })
        ));
        // Overwriting the cell restamps the checksum and heals the row.
        store.put("t", bput("r1", "c", "rewritten")).unwrap();
        assert!(store.get("t", b"r1").unwrap().is_some());
    }

    #[test]
    fn delete_row_via_store() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("r1", "c", "v")).unwrap();
        assert!(store.delete_row("t", b"r1").unwrap());
        assert!(store.get("t", b"r1").unwrap().is_none());
    }

    #[test]
    fn prefix_scan_handles_0xff_prefix() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        let scan = Scan::prefix(&[0xff, 0xff]);
        assert!(scan.stop.is_none());
        let _ = store.scan("t", &scan).unwrap();
    }

    #[test]
    fn scans_are_parallel_across_regions_and_still_ordered() {
        let store = MiniStore::new();
        store.create_table_with_threshold("t", &["f"], 8).unwrap();
        for i in (0..100).rev() {
            store.put("t", bput(&format!("k{i:03}"), "c", "v")).unwrap();
        }
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        let keys: Vec<_> = rows.iter().map(|r| r.row.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn prefix_filter_composes_with_prefix_scan() {
        let store = MiniStore::new();
        store.create_table("t", &["f"]).unwrap();
        store.put("t", bput("Static/a", "c", "v")).unwrap();
        let scan = Scan::prefix(b"Static/").with_filter(Box::new(RowPrefixFilter {
            prefix: Bytes::from("Static/"),
        }));
        let (rows, _) = store.scan("t", &scan).unwrap();
        assert_eq!(rows.len(), 1);
    }
}
