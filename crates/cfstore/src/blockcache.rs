//! A bounded, deterministic LRU cache over segment blocks.
//!
//! Since PR 6 a reopened store no longer materializes flushed rows into
//! memstores: clean regions stay backed by their segment file and read
//! ≤[`crate::segment::BLOCK_ROWS`]-row blocks on demand through this
//! cache (DESIGN.md §12). The cache is shared by every region of one
//! store, keyed by `(reader id, block index)`, and charged the *framed
//! on-disk size* of each block so the byte budget tracks real I/O saved.
//!
//! Design constraints, in order:
//!
//! 1. **Correctness is the reader's job.** The cache never caches
//!    un-verified bytes: a fill goes through
//!    [`SegmentReader::read_block`], which CRC-checks the block, so a hit
//!    can only ever serve rows that passed the same verification the
//!    eager path ran. Corruption is *not* cached — a failed fill leaves
//!    no entry, and the next read re-attempts (and re-fails, typed).
//! 2. **Deterministic.** Recency is a logical tick, not a wall clock;
//!    eviction order is a pure function of the access sequence. The
//!    property tests replay identical workloads at different budgets and
//!    require bit-identical reads, and the budget gate pins hit/miss
//!    accounting.
//! 3. **Bounded.** `used + incoming > budget` evicts least-recently-used
//!    entries until the block fits; a block larger than the whole budget
//!    (or any block under a 0-byte budget) is served but never admitted,
//!    so the budget is a hard ceiling, not a hint.
//!
//! Counters (recorded against the store's `obs` registry):
//! `cfstore.block_cache.hits`, `.misses`, `.evictions`, `.fill_bytes`.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::region::RowData;
use crate::segment::{SegmentError, SegmentReader};

/// Decoded rows of one block, shared between the cache and its readers.
pub type BlockRows = Arc<BTreeMap<Bytes, RowData>>;

/// Cache key: (process-unique reader id, block index).
type Key = (u64, u32);

struct Entry {
    rows: BlockRows,
    /// Framed on-disk size of the block (the byte cost charged).
    bytes: u64,
    /// Recency tick; also the key into `order`.
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    /// LRU order: tick → key, oldest first. Ticks are unique, so this is
    /// a total order and eviction is deterministic.
    order: BTreeMap<u64, Key>,
    used: u64,
    next_tick: u64,
}

/// Point-in-time cache occupancy, for fsck and bench reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCacheStats {
    pub entries: usize,
    pub used_bytes: u64,
    pub budget_bytes: u64,
}

/// The shared segment block cache. See the module docs for the policy.
pub struct BlockCache {
    budget: u64,
    inner: Mutex<Inner>,
    /// Observability sink, swapped in by `MiniStore::set_obs` after open
    /// (recovery-time fills run against the disabled default).
    obs: RwLock<obs::Registry>,
}

impl BlockCache {
    /// A cache admitting at most `budget` bytes of framed blocks.
    pub fn new(budget: u64) -> Self {
        BlockCache {
            budget,
            inner: Mutex::new(Inner::default()),
            obs: RwLock::new(obs::Registry::disabled()),
        }
    }

    /// Attach the registry the hit/miss/eviction counters record against.
    pub fn set_obs(&self, obs: obs::Registry) {
        *self.obs.write() = obs;
    }

    /// Byte budget this cache was built with.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Current occupancy.
    pub fn stats(&self) -> BlockCacheStats {
        let inner = self.inner.lock();
        BlockCacheStats {
            entries: inner.map.len(),
            used_bytes: inner.used,
            budget_bytes: self.budget,
        }
    }

    /// Drop every cached block of one reader. Called when a heal
    /// replaces a corrupt segment: the reader id is process-unique and
    /// never reused, so without this its admitted blocks would pin cache
    /// budget until evicted by pressure.
    pub fn evict_reader(&self, reader_id: u64) {
        let mut inner = self.inner.lock();
        let victims: Vec<Key> = inner
            .map
            .keys()
            .filter(|(rid, _)| *rid == reader_id)
            .copied()
            .collect();
        for key in victims {
            let entry = inner.map.remove(&key).expect("key just listed");
            inner.order.remove(&entry.tick);
            inner.used -= entry.bytes;
        }
    }

    /// Serve block `idx` of `reader`, from cache or by a CRC-verified
    /// fill. The cache lock is held across the fill, so concurrent
    /// readers of the same block never duplicate the I/O.
    pub fn get_or_load(
        &self,
        reader: &SegmentReader,
        idx: usize,
    ) -> Result<BlockRows, SegmentError> {
        let key: Key = (reader.id(), idx as u32);
        let obs = self.obs.read().clone();
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.map.get(&key) {
            let (old_tick, rows) = (entry.tick, entry.rows.clone());
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.order.remove(&old_tick);
            inner.order.insert(tick, key);
            inner.map.get_mut(&key).expect("entry present").tick = tick;
            obs.incr("cfstore.block_cache.hits", 1);
            return Ok(rows);
        }
        obs.incr("cfstore.block_cache.misses", 1);
        let bytes = reader.block_bytes(idx);
        let rows: BlockRows = Arc::new(reader.read_block(idx)?);
        obs.incr("cfstore.block_cache.fill_bytes", bytes);
        if bytes <= self.budget {
            while inner.used + bytes > self.budget {
                let (&victim_tick, &victim_key) =
                    inner.order.iter().next().expect("used > 0 implies entries");
                inner.order.remove(&victim_tick);
                let evicted = inner.map.remove(&victim_key).expect("order and map agree");
                inner.used -= evicted.bytes;
                obs.incr("cfstore.block_cache.evictions", 1);
            }
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.order.insert(tick, key);
            inner.map.insert(
                key,
                Entry {
                    rows: rows.clone(),
                    bytes,
                    tick,
                },
            );
            inner.used += bytes;
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::KeyRange;
    use crate::segment::write_segment;
    use bytes::Bytes;
    use std::collections::BTreeMap;

    fn sample_segment(tag: &str, rows: usize) -> (std::path::PathBuf, SegmentReader) {
        let path = std::env::temp_dir().join(format!(
            "cfstore-bc-{tag}-{}-{:?}.seg",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut data = BTreeMap::new();
        for i in 0..rows {
            let mut cols = BTreeMap::new();
            cols.insert(
                Bytes::from("c"),
                vec![crate::kv::CellVersion::new(
                    i as u64 + 1,
                    Bytes::from(format!("v{i}")),
                )],
            );
            let mut row: RowData = BTreeMap::new();
            row.insert("f".to_string(), cols);
            data.insert(Bytes::from(format!("row{i:04}")), row);
        }
        write_segment(&path, "t", 1, &KeyRange::all(), &data).unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        (path, reader)
    }

    #[test]
    fn hits_after_first_fill_and_lru_eviction_under_budget() {
        let (path, reader) = sample_segment("lru", 100);
        assert!(reader.block_count() >= 3);
        let per_block = reader.block_bytes(0);
        // Budget holds roughly two blocks.
        let cache = BlockCache::new(per_block * 2 + 4);
        let obs = obs::Registry::new();
        cache.set_obs(obs.clone());

        let a = cache.get_or_load(&reader, 0).unwrap();
        let b = cache.get_or_load(&reader, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second read is a cache hit");
        cache.get_or_load(&reader, 1).unwrap();
        cache.get_or_load(&reader, 2).unwrap(); // evicts block 0 (LRU)
        cache.get_or_load(&reader, 0).unwrap(); // miss again

        let snap = obs.snapshot();
        assert_eq!(snap.counters["cfstore.block_cache.hits"], 1);
        assert_eq!(snap.counters["cfstore.block_cache.misses"], 4);
        assert!(snap.counters["cfstore.block_cache.evictions"] >= 1);
        assert!(cache.stats().used_bytes <= cache.budget());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_budget_serves_reads_but_admits_nothing() {
        let (path, reader) = sample_segment("zero", 40);
        let cache = BlockCache::new(0);
        let obs = obs::Registry::new();
        cache.set_obs(obs.clone());
        let first = cache.get_or_load(&reader, 0).unwrap();
        let second = cache.get_or_load(&reader, 0).unwrap();
        assert_eq!(first, second, "reads are identical even when uncached");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().used_bytes, 0);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["cfstore.block_cache.misses"], 2);
        assert_eq!(snap.counters.get("cfstore.block_cache.hits"), None);
        std::fs::remove_file(&path).unwrap();
    }
}
