//! Sharded, replicated cfstore: N store shards behind one client API,
//! R-way row replication, read-path self-healing, and shard-aware
//! recovery that survives the loss of any single shard (DESIGN.md §13).
//!
//! A [`ShardedStore`] is a directory holding a `SHARDS` catalog plus N
//! subdirectories `shard-000` … `shard-NNN`, each a complete durable
//! [`MiniStore`] (its own WAL, segment files, MANIFEST, and block
//! cache). Rows are placed deterministically: row `k` hashes to *slot*
//! `fnv1a64(k) % N`, and slot `s` is stored on the replica set
//! `{s, s+1, …, s+R-1} (mod N)` — the first replica is the *primary*.
//!
//! ## Write protocol
//!
//! All operations serialize under one global lock, so there is a single
//! total order of batches, each stamped with a *global sequence number*
//! (gsn). A batch becomes one WAL frame per participating shard at
//! `lsn = gsn × LSN_STRIDE` (1024), beginning with a
//! [`WalRecord::BatchMarker`] naming the gsn and the full participant
//! set. The frame is appended to **every** participant before it is
//! applied **anywhere** (regions are pre-materialized first, so apply
//! cannot fail on at-rest corruption after bytes are logged).
//!
//! ## Commit rule
//!
//! At reopen, a raw pre-pass scans every surviving shard's WAL before
//! any store state is built. A gsn G is **committed** iff every
//! surviving participant either has G's marker frame in its WAL or has
//! already flushed past it (`flushed_lsn ≥ G × LSN_STRIDE`). Any shard
//! holding a frame for an uncommitted gsn truncates its WAL at that
//! frame's byte offset, so a crash mid-append aborts the batch on every
//! shard — exactly the batches the writer never acknowledged.
//!
//! ## Healing
//!
//! A CRC failure on one replica (cell checksum or segment block) is
//! repaired from another: the reader copies every verified row the bad
//! shard owns from clean replicas, swaps them in below the corrupt
//! base ([`Region::install_rows`]), and flushes — rewriting the bad
//! copy on disk. Counted per shard as `cfstore.shard.<id>.heal.*`.
//! Losing a shard *entirely* (directory deleted, manifest corrupt) is
//! the degenerate case: reopen rebuilds the whole shard from its
//! peers, then flushes everything so stale cross-shard gsn bookkeeping
//! can never resurface.
//!
//! ## Elastic topology
//!
//! The shard count, replication factor, and per-slot placement live in
//! an epoch-stamped [`resharding::Topology`]. A [`resharding::Reshard`]
//! plan changes it **online** — grow/shrink N, change R, or rebalance
//! hot slots — via the journaled state machine in [`resharding`]
//! (DESIGN.md §15): reads stay on the old placement until the journaled
//! `Cutover` record, writes are dual-applied to both placements under
//! the same gsn, and a crash at any byte of any WAL or of the
//! `TOPOLOGY` journal reopens into exactly one epoch with the migration
//! resumable.
//!
//! [`Region::install_rows`]: crate::region::Region

pub mod resharding;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::kv::{Put, RowResult};
use crate::recovery::{self, RecoveryError, RecoveryReport};
use crate::region::{RowData, ScanMetrics};
use crate::store::{
    MetaEntry, MiniStore, Scan, ShardOp, StoreError, StoreOptions, DEFAULT_SPLIT_THRESHOLD,
};
use crate::wal::{self, CrashSpec, SyncPolicy, WalRecord, WAL_FILE};

use resharding::{Catalog, JournalRecord, JournalWriter, Migration, Resolution, Topology};

/// The shard catalog file at the root of a sharded store directory.
pub const SHARDS_FILE: &str = "SHARDS";
/// `"SHD1"` — magic prefix of the catalog file.
pub(crate) const SHARDS_MAGIC: u32 = 0x5348_4431;

/// LSN stride between consecutive gsns. Frame `gsn` lands at
/// `gsn × LSN_STRIDE` in every participant's WAL; the split frames a
/// batch triggers occupy the following LSNs inside the same stride, so
/// the stride bounds splits-per-batch (ample: a batch would need >1023
/// region splits to overflow).
pub(crate) const LSN_STRIDE: u64 = 1024;

/// FNV-1a, the placement hash: stable, dependency-free, and uniform
/// enough that the property tests exercise every shard.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The slot (home shard index) a row key hashes to.
pub fn slot_of(row: &[u8], shards: u32) -> u32 {
    (fnv1a64(row) % shards as u64) as u32
}

/// The replica set of a slot: `slot, slot+1, …` mod N, primary first.
pub fn replica_set(slot: u32, shards: u32, replication: u32) -> Vec<u32> {
    (0..replication).map(|j| (slot + j) % shards).collect()
}

/// How to open a sharded store.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of shards N (fixed at creation; the on-disk catalog wins
    /// over this on reopen).
    pub shards: u32,
    /// Replication factor R, `1 ≤ R ≤ N` (also fixed at creation).
    /// `R = 1` keeps the sharding but loses self-healing.
    pub replication: u32,
    /// Per-shard block cache budget (each shard owns its cache).
    pub block_cache_bytes: u64,
    /// When `Some(n)`, a background flusher thread flushes any shard
    /// whose WAL grew `n` bytes past its last flush.
    pub background_flush_wal_bytes: Option<u64>,
    /// Inject a crash into one shard: `(shard, spec)`. The chaos
    /// harness uses this to kill each shard at every WAL byte.
    pub crash_shard: Option<(u32, CrashSpec)>,
    /// Inject a crash into the resharding journal: tear the `TOPOLOGY`
    /// append that crosses this many cumulative bytes (this session).
    /// The chaos harness uses this to kill a migration at every
    /// journal byte.
    pub crash_topology: Option<u64>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 3,
            replication: 2,
            block_cache_bytes: 8 << 20,
            background_flush_wal_bytes: None,
            crash_shard: None,
            crash_topology: None,
        }
    }
}

/// The sharded META catalog: placement plus every shard's region map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedMeta {
    pub shards: u32,
    pub replication: u32,
    /// `placement[slot]` = replica set, primary first.
    pub placement: Vec<Vec<u32>>,
    /// `(shard, entry)` for every region of every shard, shard order.
    pub regions: Vec<(u32, MetaEntry)>,
}

/// What one sharded reopen did, per shard and in aggregate.
#[derive(Debug, Default)]
pub struct ShardedRecoveryReport {
    /// Per-shard recovery, indexed by shard id (rebuilt shards report
    /// their post-rebuild open: near-empty by construction).
    pub shards: Vec<RecoveryReport>,
    /// Every per-shard report folded together ([`RecoveryReport::merge`])
    /// — totals are aggregated, never last-shard-wins.
    pub total: RecoveryReport,
    /// Shards found missing/corrupt and rebuilt from their peers.
    pub lost_shards: Vec<u32>,
    /// Cross-shard batches aborted by the commit rule (gsn present on
    /// some shards, missing on a surviving participant — never acked).
    pub aborted_batches: u64,
    /// Rows copied from peers while rebuilding lost shards.
    pub healed_rows: u64,
    /// A resharding migration (by epoch) was found in flight and is
    /// resumable via [`ShardedStore::resume_reshard`].
    pub reshard_in_flight: Option<u64>,
}

impl ShardedRecoveryReport {
    /// Human-readable summary (used by `store_fsck`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("shards              : {}\n", self.shards.len()));
        if let Some(epoch) = self.reshard_in_flight {
            out.push_str(&format!(
                "reshard in flight   : epoch {epoch} (resumable from TOPOLOGY journal)\n"
            ));
        }
        if self.lost_shards.is_empty() {
            out.push_str("lost shards         : none\n");
        } else {
            let ids: Vec<String> = self.lost_shards.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(
                "lost shards         : {} (rebuilt, {} rows healed)\n",
                ids.join(", "),
                self.healed_rows
            ));
        }
        out.push_str(&format!("aborted batches     : {}\n", self.aborted_batches));
        out.push_str("---- aggregate across shards ----\n");
        out.push_str(&self.total.render_text());
        out
    }
}

/// Wake-up state shared between writers and the sharded flusher.
#[derive(Default)]
struct ShardFlushSignal {
    pending: bool,
    shutdown: bool,
}

/// The vendored `parking_lot` has no `Condvar`, so the flusher handshake
/// uses `std::sync` (same as the single-store flusher).
struct ShardFlusherShared {
    signal: std::sync::Mutex<ShardFlushSignal>,
    cv: std::sync::Condvar,
}

/// Everything behind the global lock: the shards and the write-order
/// state. One lock serializes all batches so gsn order == WAL order on
/// every shard — the commit rule depends on that.
struct GlobalState {
    /// Length = the active shard count, or `max(old, new)` while a
    /// migration is in flight (dual-apply needs both placements open).
    shards: Vec<MiniStore>,
    /// `table → (families, split_threshold)`, mirrored on every shard.
    schemas: BTreeMap<String, (Vec<String>, usize)>,
    next_gsn: u64,
    /// Global logical clock; cells are stamped here (not per shard) so
    /// replicas hold bit-identical versions.
    clock: u64,
    /// A crash fired mid-protocol: refuse further mutations (reads and
    /// heals keep serving), force a reopen to re-establish invariants.
    poisoned: bool,
    /// The epoch-current placement. Reads always use this; it swaps to
    /// the target topology at the journaled `Cutover` record.
    active: Topology,
    /// The active topology's epoch (0 until the first reshard commits).
    epoch: u64,
    /// In-flight reshard, if any (DESIGN.md §15).
    migration: Option<Migration>,
}

impl GlobalState {
    /// The shards a write to `row` must reach: the active replica set,
    /// plus — while a migration is pre-cutover — the target replica set
    /// (dual-apply, so already-copied units stay current).
    fn write_replicas(&self, row: &[u8]) -> Vec<u32> {
        let mut reps = self.active.replicas_of_row(row);
        if let Some(m) = &self.migration {
            if !m.cut_over {
                for g in m.target.replicas_of_row(row) {
                    if !reps.contains(&g) {
                        reps.push(g);
                    }
                }
            }
        }
        reps
    }
}

struct ShardedInner {
    dir: PathBuf,
    state: Mutex<GlobalState>,
    obs: RwLock<obs::Registry>,
    flush_shared: Option<Arc<ShardFlusherShared>>,
    background_flush_wal_bytes: Option<u64>,
    block_cache_bytes: u64,
    crash_shard: Option<(u32, CrashSpec)>,
    crash_topology: Option<u64>,
}

impl ShardedInner {
    fn obs(&self) -> obs::Registry {
        self.obs.read().clone()
    }

    /// Per-shard open options (also used when a grow creates shards at
    /// runtime). Shard-level flushers stay off: the sharded flusher
    /// drives per-shard flushes so they serialize under the global lock.
    fn store_opts(&self, g: u32) -> StoreOptions {
        StoreOptions {
            sync: SyncPolicy::EveryOp,
            crash: match &self.crash_shard {
                Some((victim, spec)) if *victim == g => spec.clone(),
                _ => CrashSpec::default(),
            },
            block_cache_bytes: self.block_cache_bytes,
            background_flush_wal_bytes: None,
        }
    }
}

/// The sharded store handle. API mirrors [`MiniStore`]; every operation
/// is transparently fanned out, replicated, and healed.
pub struct ShardedStore {
    inner: Arc<ShardedInner>,
    flusher: Option<JoinHandle<()>>,
}

// ---------------------------------------------------------------------
// SHARDS catalog file
// ---------------------------------------------------------------------

/// Read the shard catalog: `Ok(None)` when absent (fresh directory),
/// `(shards, replication)` when present and intact. Compatibility
/// wrapper over [`resharding::read_catalog`], which also exposes the
/// epoch and per-slot overrides.
pub fn read_shards_file(dir: &Path) -> Result<Option<(u32, u32)>, RecoveryError> {
    Ok(resharding::read_catalog(dir)?.map(|c| (c.topology.shards, c.topology.replication)))
}

pub(crate) fn shard_dir_name(shard: u32) -> String {
    format!("shard-{shard:03}")
}

// ---------------------------------------------------------------------
// Reopen pre-pass
// ---------------------------------------------------------------------

/// What the raw (pre-`MiniStore::open`) probe of one shard dir found.
struct ProbedShard {
    flushed_lsn: u64,
    /// `(gsn, participants, frame byte offset)` per marker frame, WAL order.
    markers: Vec<(u64, Vec<u32>, u64)>,
    wal_path: PathBuf,
    /// Holds any persistent state at all (manifest or WAL bytes).
    nonempty: bool,
}

enum Probe {
    /// Directory missing entirely.
    Missing,
    /// Directory present but its manifest fails verification — at-rest
    /// corruption of the shard catalog; the shard is rebuilt.
    Corrupt,
    Alive(ProbedShard),
}

fn probe_shard(dir: &Path) -> Result<Probe, RecoveryError> {
    if !dir.is_dir() {
        return Ok(Probe::Missing);
    }
    let manifest = match recovery::read_manifest(dir) {
        Ok(m) => m,
        Err(RecoveryError::ManifestCorrupt { .. }) => return Ok(Probe::Corrupt),
        Err(e) => return Err(e),
    };
    let wal_path = dir.join(WAL_FILE);
    let scan = wal::read_wal(&wal_path).map_err(|e| RecoveryError::Io {
        path: wal_path.display().to_string(),
        source: e,
    })?;
    let mut markers = Vec::new();
    for (i, frame) in scan.frames.iter().enumerate() {
        if let Some(WalRecord::BatchMarker { gsn, participants }) = frame.records.first() {
            markers.push((*gsn, participants.clone(), scan.frame_offsets[i]));
        }
    }
    Ok(Probe::Alive(ProbedShard {
        flushed_lsn: manifest.as_ref().map(|m| m.flushed_lsn).unwrap_or(0),
        markers,
        wal_path,
        nonempty: manifest.is_some() || scan.total_bytes > 0,
    }))
}

impl ShardedStore {
    /// Open (or create) a sharded store with default options.
    pub fn open(dir: &Path) -> Result<(Self, ShardedRecoveryReport), RecoveryError> {
        Self::open_with_opts(dir, ShardOptions::default())
    }

    /// [`ShardedStore::open`] with explicit options.
    pub fn open_with_opts(
        dir: &Path,
        opts: ShardOptions,
    ) -> Result<(Self, ShardedRecoveryReport), RecoveryError> {
        Self::open_traced(dir, opts, obs::Registry::disabled())
    }

    /// Open with an observability registry attached from the first
    /// byte, so rebuild/heal counters from recovery itself are counted.
    /// All shards share the one registry (counters namespaced by
    /// `cfstore.shard.<id>.*` where a per-shard split matters).
    pub fn open_traced(
        dir: &Path,
        opts: ShardOptions,
        reg: obs::Registry,
    ) -> Result<(Self, ShardedRecoveryReport), RecoveryError> {
        std::fs::create_dir_all(dir).map_err(|e| RecoveryError::Io {
            path: dir.display().to_string(),
            source: e,
        })?;
        let topo_path = dir.join(resharding::TOPOLOGY_FILE);
        let topo_corrupt = |detail: String| RecoveryError::ManifestCorrupt {
            path: topo_path.display().to_string(),
            detail,
        };
        // The on-disk catalog wins over the options: the topology only
        // changes through the journaled reshard protocol.
        let journal = resharding::read_journal(dir)?;
        let catalog = match resharding::read_catalog(dir)? {
            Some(c) => c,
            None => {
                if journal.is_some() {
                    return Err(topo_corrupt(
                        "TOPOLOGY journal present without a SHARDS catalog".to_string(),
                    ));
                }
                let c = Catalog {
                    topology: Topology::uniform(opts.shards, opts.replication),
                    epoch: 0,
                };
                c.topology
                    .validate()
                    .map_err(|detail| RecoveryError::InconsistentLog { detail })?;
                resharding::write_catalog(dir, &c).map_err(|e| RecoveryError::Io {
                    path: dir.join(SHARDS_FILE).display().to_string(),
                    source: e,
                })?;
                c
            }
        };
        catalog
            .topology
            .validate()
            .map_err(|detail| RecoveryError::InconsistentLog { detail })?;

        // ---- Resolve the resharding journal against the catalog ----
        enum Pending {
            None,
            Pre {
                epoch: u64,
                target: Topology,
                copied: BTreeSet<u32>,
                verified: bool,
                valid_bytes: u64,
            },
            Post {
                epoch: u64,
                target: Topology,
                swapped: bool,
                valid_bytes: u64,
            },
        }
        let mut pending = Pending::None;
        if let Some(scan) = journal {
            if scan.valid_bytes < scan.total_bytes {
                // Torn tail: truncate it away before any writer appends.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&topo_path)
                    .map_err(|e| RecoveryError::Io {
                        path: topo_path.display().to_string(),
                        source: e,
                    })?;
                f.set_len(scan.valid_bytes)
                    .and_then(|()| f.sync_all())
                    .map_err(|e| RecoveryError::Io {
                        path: topo_path.display().to_string(),
                        source: e,
                    })?;
            }
            match resharding::resolve_journal(&scan.records).map_err(topo_corrupt)? {
                Resolution::None => {
                    // A crash tore the header or the Begin record: no
                    // migration ever started; drop the empty journal.
                    std::fs::remove_file(&topo_path).map_err(|e| RecoveryError::Io {
                        path: topo_path.display().to_string(),
                        source: e,
                    })?;
                }
                Resolution::PreCutover {
                    epoch,
                    old,
                    new,
                    copied,
                    verified,
                } => {
                    if old != catalog.topology || epoch != catalog.epoch + 1 {
                        return Err(topo_corrupt(format!(
                            "TOPOLOGY Begin (epoch {epoch}) disagrees with the \
                             SHARDS catalog (epoch {})",
                            catalog.epoch
                        )));
                    }
                    pending = Pending::Pre {
                        epoch,
                        target: new,
                        copied,
                        verified,
                        valid_bytes: scan.valid_bytes,
                    };
                }
                Resolution::PostCutover { epoch, old, new } => {
                    let swapped = if catalog.topology == new && catalog.epoch == epoch {
                        true
                    } else if catalog.topology == old && epoch == catalog.epoch + 1 {
                        false
                    } else {
                        return Err(topo_corrupt(
                            "TOPOLOGY Cutover matches neither the old nor the new \
                             topology in the SHARDS catalog"
                                .to_string(),
                        ));
                    };
                    pending = Pending::Post {
                        epoch,
                        target: new,
                        swapped,
                        valid_bytes: scan.valid_bytes,
                    };
                }
            }
        }
        // The placement reads use, and how many shard dirs to probe.
        let (active, active_epoch) = match &pending {
            Pending::None => (catalog.topology.clone(), catalog.epoch),
            Pending::Pre { .. } => (catalog.topology.clone(), catalog.epoch),
            Pending::Post { epoch, target, .. } => (target.clone(), *epoch),
        };
        let n_total = match &pending {
            Pending::Pre { target, .. } => active.shards.max(target.shards),
            _ => active.shards,
        };

        // ---- Phase A: raw pre-pass — commit rule, WAL truncation ----
        let n = n_total;
        let mut probes = Vec::with_capacity(n as usize);
        for g in 0..n {
            probes.push(probe_shard(&dir.join(shard_dir_name(g)))?);
        }
        let any_nonempty = probes.iter().any(|p| match p {
            Probe::Alive(ps) => ps.nonempty,
            Probe::Corrupt => true,
            Probe::Missing => false,
        });
        // A shard is lost when it has no usable state while its peers
        // do. When *nothing* is nonempty this is a fresh store and
        // every shard simply opens empty.
        let mut lost: BTreeSet<u32> = BTreeSet::new();
        for (g, p) in probes.iter().enumerate() {
            let is_lost = match p {
                Probe::Missing | Probe::Corrupt => any_nonempty,
                Probe::Alive(ps) => any_nonempty && !ps.nonempty,
            };
            if is_lost {
                lost.insert(g as u32);
            }
        }

        // gsn G committed ⇔ every surviving participant holds its frame
        // or has flushed past it. Lost shards cannot veto (their vote is
        // unknowable; survivors' frames are the authority).
        let committed = |gsn: u64, participants: &[u32]| -> bool {
            participants.iter().all(|&p| {
                if p >= n || lost.contains(&p) {
                    return true;
                }
                match &probes[p as usize] {
                    Probe::Alive(ps) => {
                        ps.markers.iter().any(|(g, _, _)| *g == gsn)
                            || ps.flushed_lsn >= gsn * LSN_STRIDE
                    }
                    // Non-alive but not in `lost` only happens when
                    // nothing is nonempty — then no markers exist and
                    // this closure is never reached.
                    _ => true,
                }
            })
        };

        let mut aborted: BTreeSet<u64> = BTreeSet::new();
        let mut max_gsn: u64 = 0;
        for (g, p) in probes.iter().enumerate() {
            let ps = match p {
                Probe::Alive(ps) if !lost.contains(&(g as u32)) => ps,
                _ => continue,
            };
            max_gsn = max_gsn.max(ps.flushed_lsn / LSN_STRIDE);
            let mut cut: Option<u64> = None;
            for (gsn, participants, offset) in &ps.markers {
                if committed(*gsn, participants) {
                    debug_assert!(
                        cut.is_none(),
                        "committed gsn {gsn} after an uncommitted one: \
                         the global lock should make that impossible"
                    );
                    max_gsn = max_gsn.max(*gsn);
                } else {
                    aborted.insert(*gsn);
                    if cut.is_none() {
                        cut = Some(*offset);
                    }
                }
            }
            if let Some(offset) = cut {
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&ps.wal_path)
                    .map_err(|e| RecoveryError::Io {
                        path: ps.wal_path.display().to_string(),
                        source: e,
                    })?;
                f.set_len(offset).map_err(|e| RecoveryError::Io {
                    path: ps.wal_path.display().to_string(),
                    source: e,
                })?;
                f.sync_all().map_err(|e| RecoveryError::Io {
                    path: ps.wal_path.display().to_string(),
                    source: e,
                })?;
            }
        }

        // ---- Phase B: open surviving shards ----
        let shard_opts = |g: u32| StoreOptions {
            sync: SyncPolicy::EveryOp,
            crash: match &opts.crash_shard {
                Some((victim, spec)) if *victim == g => spec.clone(),
                _ => CrashSpec::default(),
            },
            block_cache_bytes: opts.block_cache_bytes,
            // Shard-level flushers stay off: the sharded flusher drives
            // per-shard flushes so they serialize under the global lock.
            background_flush_wal_bytes: None,
        };
        let mut opened: Vec<Option<(MiniStore, RecoveryReport)>> = (0..n).map(|_| None).collect();
        for g in 0..n {
            if lost.contains(&g) {
                continue;
            }
            match MiniStore::open_with_opts(&dir.join(shard_dir_name(g)), shard_opts(g)) {
                Ok(pair) => opened[g as usize] = Some(pair),
                // At-rest corruption below the manifest level: the shard
                // opened its catalog but a referenced segment fails
                // verification — reclassify as lost and rebuild.
                Err(RecoveryError::Segment(_)) | Err(RecoveryError::ManifestCorrupt { .. }) => {
                    lost.insert(g);
                }
                Err(e) => return Err(e),
            }
        }

        // Every *active* slot must keep at least one surviving replica,
        // or data is unrecoverable and pretending otherwise would be
        // silent loss. (Losing a target-only shard pre-cutover is fine:
        // its unit is invalidated and re-copied from the active epoch.)
        if any_nonempty {
            for s in 0..active.shards {
                let reps = active.replicas(s);
                if reps.iter().all(|g| lost.contains(g)) {
                    return Err(RecoveryError::InconsistentLog {
                        detail: format!("slot {s} lost all replicas ({reps:?}); cannot rebuild"),
                    });
                }
            }
        }

        // ---- Phase C: rebuild lost shards from their peers ----
        for g in 0..n {
            if !lost.contains(&g) {
                continue;
            }
            let d = dir.join(shard_dir_name(g));
            match std::fs::remove_dir_all(&d) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(RecoveryError::Io {
                        path: d.display().to_string(),
                        source: e,
                    })
                }
            }
            let pair = MiniStore::open_with_opts(&d, shard_opts(g))?;
            opened[g as usize] = Some(pair);
        }
        let mut shards: Vec<MiniStore> = Vec::with_capacity(n as usize);
        let mut reports: Vec<RecoveryReport> = Vec::with_capacity(n as usize);
        for slot in opened {
            let (mut store, report) = slot.expect("every shard opened or rebuilt");
            store.set_obs(reg.clone());
            shards.push(store);
            reports.push(report);
        }

        let schemas: BTreeMap<String, (Vec<String>, usize)> = shards
            .iter()
            .enumerate()
            .find(|(g, _)| !lost.contains(&(*g as u32)))
            .map(|(_, s)| s.table_schemas())
            .unwrap_or_default()
            .into_iter()
            .map(|(name, families, threshold)| (name, (families, threshold)))
            .collect();

        let mut healed_rows: u64 = 0;
        if !lost.is_empty() {
            let io = |e: StoreError| RecoveryError::Io {
                path: dir.display().to_string(),
                source: std::io::Error::other(format!("shard rebuild: {e}")),
            };
            // Donor exports cached per (donor, table): one verified full
            // read per donor feeds every lost shard. A rebuilt shard
            // receives its *active*-topology ownership; target-epoch
            // content it held pre-crash is restored by re-copying its
            // unit (journaled as `Invalidated` below).
            let mut exports: BTreeMap<(u32, String), BTreeMap<Bytes, RowData>> = BTreeMap::new();
            for &b in &lost {
                for (table, (families, threshold)) in &schemas {
                    let fams: Vec<&str> = families.iter().map(|f| f.as_str()).collect();
                    shards[b as usize]
                        .create_table_with_threshold(table, &fams, *threshold)
                        .map_err(io)?;
                    let mut rows: BTreeMap<Bytes, RowData> = BTreeMap::new();
                    for s in 0..active.shards {
                        let reps = active.replicas(s);
                        if !reps.contains(&b) {
                            continue;
                        }
                        let mut copied = false;
                        let mut last_err: Option<StoreError> = None;
                        for &d in reps.iter().filter(|&&d| d != b && !lost.contains(&d)) {
                            let key = (d, table.clone());
                            if !exports.contains_key(&key) {
                                match shards[d as usize].export_table_rows(table) {
                                    Ok(map) => {
                                        exports.insert(key.clone(), map);
                                    }
                                    Err(e) => {
                                        last_err = Some(e);
                                        continue;
                                    }
                                }
                            }
                            let donor = &exports[&key];
                            for (row, data) in donor {
                                if active.slot_of_row(row) == s {
                                    rows.insert(row.clone(), data.clone());
                                }
                            }
                            copied = true;
                            break;
                        }
                        if !copied {
                            if let Some(e) = last_err {
                                return Err(io(e));
                            }
                            // No surviving donor holds this slot at all —
                            // already rejected by the coverage check.
                        }
                    }
                    healed_rows += shards[b as usize].heal_table(table, rows).map_err(io)?;
                }
                reg.incr(&format!("cfstore.shard.{b}.heal.rebuilds"), 1);
                reg.incr("cfstore.shard.heal.rebuilds", 1);
            }
            if healed_rows > 0 {
                for &b in &lost {
                    reg.incr(&format!("cfstore.shard.{b}.heal.rows"), healed_rows);
                }
                reg.incr("cfstore.shard.heal.rows", healed_rows);
            }
            // Flush EVERYTHING: survivors may still hold WAL frames whose
            // participant sets name the rebuilt shards. The rebuilt WALs
            // will never contain those gsns, so leaving the survivors'
            // frames in place would make committed batches look
            // uncommitted at the *next* reopen. Flushing moves every
            // shard's flushed_lsn past them.
            for store in &shards {
                store.flush().map_err(io)?;
            }
        }

        // ---- Phase D: global counters, report, flusher ----
        let clock = shards
            .iter()
            .map(|s| s.clock_value())
            .max()
            .unwrap_or(1)
            .max(1);
        let next_gsn = max_gsn + 1;
        let mut total = RecoveryReport::default();
        for rep in &reports {
            total.merge(rep);
        }

        // ---- Reconstruct the in-flight migration from the journal ----
        let io_store = |e: StoreError| RecoveryError::Io {
            path: topo_path.display().to_string(),
            source: std::io::Error::other(format!("resharding journal: {e}")),
        };
        let migration = match pending {
            Pending::None => None,
            Pending::Pre {
                epoch,
                target,
                mut copied,
                mut verified,
                valid_bytes,
            } => {
                let mut journal =
                    JournalWriter::open_existing(dir, valid_bytes, opts.crash_topology)
                        .map_err(io_store)?;
                // A lost shard was rebuilt with active-epoch content
                // only: any `Copied` claim it held is now false, so
                // journal the invalidation and re-copy on resume.
                for &b in &lost {
                    if copied.remove(&b) {
                        journal
                            .append(&JournalRecord::Invalidated { epoch, unit: b })
                            .map_err(io_store)?;
                        verified = false;
                    }
                }
                Some(Migration {
                    epoch,
                    target,
                    copied,
                    verified,
                    cut_over: false,
                    gc_pruned: false,
                    catalog_swapped: false,
                    rows_copied: 0,
                    journal,
                })
            }
            Pending::Post {
                epoch,
                target,
                swapped,
                valid_bytes,
            } => {
                let journal = JournalWriter::open_existing(dir, valid_bytes, opts.crash_topology)
                    .map_err(io_store)?;
                Some(Migration {
                    epoch,
                    copied: (0..target.shards).collect(),
                    target,
                    verified: true,
                    cut_over: true,
                    gc_pruned: swapped,
                    catalog_swapped: swapped,
                    rows_copied: 0,
                    journal,
                })
            }
        };
        let reshard_in_flight = migration.as_ref().map(|m| m.epoch);
        if reshard_in_flight.is_some() {
            reg.incr("cfstore.reshard.resumes", 1);
        }
        let report = ShardedRecoveryReport {
            shards: reports,
            total,
            lost_shards: lost.iter().copied().collect(),
            aborted_batches: aborted.len() as u64,
            healed_rows,
            reshard_in_flight,
        };

        let flush_shared = opts.background_flush_wal_bytes.map(|_| {
            Arc::new(ShardFlusherShared {
                signal: std::sync::Mutex::new(ShardFlushSignal::default()),
                cv: std::sync::Condvar::new(),
            })
        });
        let inner = Arc::new(ShardedInner {
            dir: dir.to_path_buf(),
            state: Mutex::new(GlobalState {
                shards,
                schemas,
                next_gsn,
                clock,
                poisoned: false,
                active,
                epoch: active_epoch,
                migration,
            }),
            obs: RwLock::new(reg),
            flush_shared: flush_shared.clone(),
            background_flush_wal_bytes: opts.background_flush_wal_bytes,
            block_cache_bytes: opts.block_cache_bytes,
            crash_shard: opts.crash_shard.clone(),
            crash_topology: opts.crash_topology,
        });
        let flusher = flush_shared.map(|shared| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("cfstore-shard-flusher".to_string())
                .spawn(move || shard_flusher_loop(inner, shared))
                .expect("spawn sharded background flusher")
        });
        Ok((ShardedStore { inner, flusher }, report))
    }

    // -----------------------------------------------------------------
    // Client API
    // -----------------------------------------------------------------

    /// Create a table on every shard (one cross-shard batch).
    pub fn create_table(&self, name: &str, families: &[&str]) -> Result<(), StoreError> {
        self.create_table_with_threshold(name, families, DEFAULT_SPLIT_THRESHOLD)
    }

    /// [`ShardedStore::create_table`] with a custom split threshold.
    pub fn create_table_with_threshold(
        &self,
        name: &str,
        families: &[&str],
        split_threshold: usize,
    ) -> Result<(), StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if st.poisoned {
            return Err(StoreError::Crashed);
        }
        if st.schemas.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        let fams: Vec<String> = families.iter().map(|f| f.to_string()).collect();
        // Every open shard, including migration targets: a table born
        // mid-migration must exist in both epochs.
        let participants: Vec<u32> = (0..st.shards.len() as u32).collect();
        let ops = vec![ShardOp::CreateTable {
            name: name.to_string(),
            families: fams.clone(),
            split_threshold: split_threshold as u64,
        }];
        let per_shard: BTreeMap<u32, Vec<ShardOp>> =
            participants.iter().map(|&g| (g, ops.clone())).collect();
        Self::commit_batch(inner, &mut st, &participants, &per_shard)?;
        st.schemas.insert(name.to_string(), (fams, split_threshold));
        Ok(())
    }

    /// Write one cell, replicated R ways.
    pub fn put(&self, table: &str, put: Put) -> Result<(), StoreError> {
        self.put_batch(table, vec![put])
    }

    /// Write a batch atomically across shards: every cell is stamped by
    /// the global clock, the batch gets one gsn, and the frame reaches
    /// every participating replica's WAL before any of them applies it.
    /// Recovery keeps all of it or none of it on every shard.
    pub fn put_batch(&self, table: &str, puts: Vec<Put>) -> Result<(), StoreError> {
        if puts.is_empty() {
            return Ok(());
        }
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if st.poisoned {
            return Err(StoreError::Crashed);
        }
        let (families, _) = st
            .schemas
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?
            .clone();
        for p in &puts {
            if !families.contains(&p.family) {
                return Err(StoreError::NoSuchColumnFamily {
                    table: table.to_string(),
                    family: p.family.clone(),
                });
            }
        }
        let mut per_shard: BTreeMap<u32, Vec<ShardOp>> = BTreeMap::new();
        for put in puts {
            let ts = st.clock;
            st.clock += 1;
            // Dual-apply during a migration: the same stamped cell goes
            // to the old and new replica sets under one gsn, so every
            // copy — either epoch — stays bit-identical.
            for g in st.write_replicas(&put.row) {
                per_shard.entry(g).or_default().push(ShardOp::Put {
                    table: table.to_string(),
                    put: put.clone(),
                    timestamp: ts,
                });
            }
        }
        let participants: Vec<u32> = per_shard.keys().copied().collect();
        // Materialize target regions up front: at-rest corruption must
        // surface (and heal) *before* any WAL append, because puts are
        // not idempotent and a half-applied batch cannot be retried.
        for (&g, ops) in &per_shard {
            let rows: Vec<Bytes> = ops
                .iter()
                .filter_map(|op| match op {
                    ShardOp::Put { put, .. } => Some(put.row.clone()),
                    _ => None,
                })
                .collect();
            if let Err(e) = st.shards[g as usize].prepare_rows(table, &rows) {
                match e {
                    StoreError::Corruption { .. } | StoreError::SegmentCorrupt { .. } => {
                        let o = inner.obs();
                        o.incr(&format!("cfstore.shard.{g}.heal.reads"), 1);
                        o.incr("cfstore.shard.heal.reads", 1);
                        Self::heal_shard_table(inner, &mut st, g, table)?;
                        st.shards[g as usize].prepare_rows(table, &rows)?;
                    }
                    _ => return Err(e),
                }
            }
        }
        Self::commit_batch(inner, &mut st, &participants, &per_shard)?;
        self.maybe_wake_flusher(&st);
        Ok(())
    }

    /// Delete a row from every replica holding it.
    pub fn delete_row(&self, table: &str, row: &[u8]) -> Result<bool, StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if st.poisoned {
            return Err(StoreError::Crashed);
        }
        if !st.schemas.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.to_string()));
        }
        let existed = Self::get_inner(inner, &mut st, table, row)?.is_some();
        if !existed {
            return Ok(false);
        }
        let participants = st.write_replicas(row);
        let ops = vec![ShardOp::DeleteRow {
            table: table.to_string(),
            row: Bytes::copy_from_slice(row),
        }];
        let per_shard: BTreeMap<u32, Vec<ShardOp>> =
            participants.iter().map(|&g| (g, ops.clone())).collect();
        Self::commit_batch(inner, &mut st, &participants, &per_shard)?;
        self.maybe_wake_flusher(&st);
        Ok(true)
    }

    /// Read one row: try the primary, fail over through the replica set.
    /// A checksum failure triggers an in-place heal of the bad replica
    /// (copy-from-peer + flush, rewriting the corrupt segment) and a
    /// retry; if the heal itself cannot complete, the read still serves
    /// from the next replica.
    pub fn get(&self, table: &str, row: &[u8]) -> Result<Option<RowResult>, StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if !st.schemas.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.to_string()));
        }
        Self::get_inner(inner, &mut st, table, row)
    }

    fn get_inner(
        inner: &ShardedInner,
        st: &mut GlobalState,
        table: &str,
        row: &[u8],
    ) -> Result<Option<RowResult>, StoreError> {
        let mut last_err: Option<StoreError> = None;
        // Reads consult the active placement only: pre-cutover that is
        // the old epoch, making the cutover record the visibility switch.
        for g in st.active.replicas_of_row(row) {
            match st.shards[g as usize].get(table, row) {
                Ok(res) => return Ok(res),
                Err(e @ (StoreError::Corruption { .. } | StoreError::SegmentCorrupt { .. })) => {
                    let o = inner.obs();
                    o.incr(&format!("cfstore.shard.{g}.heal.reads"), 1);
                    o.incr("cfstore.shard.heal.reads", 1);
                    match Self::heal_shard_table(inner, st, g, table) {
                        Ok(_) => match st.shards[g as usize].get(table, row) {
                            Ok(res) => return Ok(res),
                            Err(e2) => last_err = Some(e2),
                        },
                        // Heal could not complete (e.g. the shard is
                        // crash-poisoned and cannot flush): keep serving
                        // from the next replica.
                        Err(_) => last_err = Some(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("loop returns unless every replica errored"))
    }

    /// Scan with filter pushdown. Every shard is scanned; each slot's
    /// rows are taken from the first replica whose scan succeeded
    /// (normally the primary), after heal-and-retry on corrupt shards.
    /// Results are bit-identical to an unsharded store's scan; metrics
    /// are summed across shard scans (replication makes `rows_scanned`
    /// larger than a single store's — the read-amplification cost of
    /// redundancy, visible on purpose).
    pub fn scan(
        &self,
        table: &str,
        scan: &Scan,
    ) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if !st.schemas.contains_key(table) {
            return Err(StoreError::NoSuchTable(table.to_string()));
        }
        // Active shards only: pre-cutover, migration targets are
        // invisible to reads (their superset rows never leak because
        // slot resolution below only consults active replicas anyway).
        let n = st.active.shards;
        let mut per_shard: Vec<Option<Vec<RowResult>>> = (0..n).map(|_| None).collect();
        let mut metrics = ScanMetrics::default();
        let mut last_err: Option<StoreError> = None;
        for g in 0..n {
            let outcome = match st.shards[g as usize].scan(table, scan) {
                Ok(ok) => Some(ok),
                Err(e @ (StoreError::Corruption { .. } | StoreError::SegmentCorrupt { .. })) => {
                    let o = inner.obs();
                    o.incr(&format!("cfstore.shard.{g}.heal.reads"), 1);
                    o.incr("cfstore.shard.heal.reads", 1);
                    match Self::heal_shard_table(inner, &mut st, g, table) {
                        Ok(_) => match st.shards[g as usize].scan(table, scan) {
                            Ok(ok) => Some(ok),
                            Err(e2) => {
                                last_err = Some(e2);
                                None
                            }
                        },
                        Err(_) => {
                            last_err = Some(e);
                            None
                        }
                    }
                }
                Err(e) => return Err(e),
            };
            if let Some((rows, m)) = outcome {
                metrics.merge(m);
                per_shard[g as usize] = Some(rows);
            }
        }
        // Resolve each slot from its first scannable replica.
        let mut source_for_slot: Vec<Option<u32>> = (0..n).map(|_| None).collect();
        for s in 0..n {
            source_for_slot[s as usize] = st
                .active
                .replicas(s)
                .into_iter()
                .find(|&g| per_shard[g as usize].is_some());
            if source_for_slot[s as usize].is_none() {
                return Err(last_err
                    .take()
                    .expect("a slot is unscannable only after replica errors"));
            }
        }
        let mut merged: BTreeMap<Bytes, RowResult> = BTreeMap::new();
        for (g, rows) in per_shard.into_iter().enumerate() {
            let Some(rows) = rows else { continue };
            for row in rows {
                let s = st.active.slot_of_row(&row.row);
                if source_for_slot[s as usize] == Some(g as u32) {
                    merged.insert(row.row.clone(), row);
                }
            }
        }
        Ok((merged.into_values().collect(), metrics))
    }

    /// Chaos hook: corrupt a stored cell on the *primary* replica of its
    /// row, so the next read exercises the heal path.
    pub fn corrupt_cell(
        &self,
        table: &str,
        row: &[u8],
        family: &str,
        column: &[u8],
    ) -> Result<bool, StoreError> {
        let st = self.inner.state.lock();
        let g = st.active.replicas_of_row(row)[0];
        st.shards[g as usize].corrupt_cell(table, row, family, column)
    }

    /// Flush every shard.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut st = self.inner.state.lock();
        for g in 0..st.shards.len() {
            if let Err(e) = st.shards[g].flush() {
                if e == StoreError::Crashed {
                    st.poisoned = true;
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// The sharded META catalog: placement plus every region entry.
    /// Placement reflects the *active* topology — mid-migration the
    /// old epoch stays authoritative until cutover.
    pub fn meta(&self) -> ShardedMeta {
        let st = self.inner.state.lock();
        let n = st.active.shards;
        ShardedMeta {
            shards: n,
            replication: st.active.replication,
            placement: (0..n).map(|s| st.active.replicas(s)).collect(),
            regions: st
                .shards
                .iter()
                .enumerate()
                .flat_map(|(g, s)| {
                    s.meta_entries()
                        .into_iter()
                        .map(move |e| (g as u32, e))
                        .collect::<Vec<_>>()
                })
                .collect(),
        }
    }

    /// Whether a crash point fired (on any shard or mid-protocol).
    /// Mutations are refused until the directory is reopened; reads
    /// keep serving.
    pub fn is_crashed(&self) -> bool {
        let st = self.inner.state.lock();
        st.poisoned || st.shards.iter().any(|s| s.is_crashed())
    }

    /// Swap the observability registry (shared by every shard).
    pub fn set_obs(&mut self, reg: obs::Registry) {
        let mut st = self.inner.state.lock();
        for s in st.shards.iter_mut() {
            s.set_obs(reg.clone());
        }
        drop(st);
        *self.inner.obs.write() = reg;
    }

    /// Number of shards N in the active topology.
    pub fn shard_count(&self) -> u32 {
        self.inner.state.lock().active.shards
    }

    /// Replication factor R of the active topology.
    pub fn replication(&self) -> u32 {
        self.inner.state.lock().active.replication
    }

    /// The directory of one shard (tests reach in to kill/corrupt it).
    pub fn shard_dir(&self, shard: u32) -> PathBuf {
        self.inner.dir.join(shard_dir_name(shard))
    }

    /// Cumulative WAL bytes one shard wrote this session, across flush
    /// truncations — the currency [`CrashSpec::after_wal_bytes`] counts,
    /// so the crash sweeps measure a clean run and tear every byte.
    pub fn shard_wal_bytes_written(&self, shard: u32) -> u64 {
        let st = self.inner.state.lock();
        st.shards[shard as usize].wal_bytes_written()
    }

    /// The primary shard a row lives on (active topology).
    pub fn primary_shard(&self, row: &[u8]) -> u32 {
        self.inner.state.lock().active.replicas_of_row(row)[0]
    }

    /// The full replica set of a row (active topology).
    pub fn replica_shards(&self, row: &[u8]) -> Vec<u32> {
        self.inner.state.lock().active.replicas_of_row(row)
    }

    /// Scan one shard directly, bypassing placement resolution — the
    /// property tests use this to compare replicas cell-for-cell.
    pub fn shard_scan(
        &self,
        shard: u32,
        table: &str,
        scan: &Scan,
    ) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        let st = self.inner.state.lock();
        st.shards[shard as usize].scan(table, scan)
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    /// Frame-and-apply one batch: append the frame (marker first) to
    /// every participant's WAL, then apply it everywhere. Any failure
    /// after the first byte of the first append poisons the store — the
    /// shards' WALs now disagree and only the reopen commit rule may
    /// reconcile them.
    fn commit_batch(
        inner: &ShardedInner,
        st: &mut GlobalState,
        participants: &[u32],
        per_shard: &BTreeMap<u32, Vec<ShardOp>>,
    ) -> Result<(), StoreError> {
        let gsn = st.next_gsn;
        st.next_gsn += 1;
        let lsn_base = gsn * LSN_STRIDE;
        let mut frames: Vec<(u32, Vec<WalRecord>)> = Vec::with_capacity(per_shard.len());
        for (&g, ops) in per_shard {
            match st.shards[g as usize].append_sharded_frame(lsn_base, gsn, participants, ops) {
                Ok(records) => frames.push((g, records)),
                Err(e) => {
                    st.poisoned = true;
                    return Err(e);
                }
            }
        }
        for (g, records) in &frames {
            if let Err(e) = st.shards[*g as usize].apply_sharded_records(records) {
                st.poisoned = true;
                return Err(e);
            }
        }
        let _ = inner;
        Ok(())
    }

    /// Repair one shard's copy of a table from its peers: copy every
    /// row the shard owns from the first clean replica of each slot,
    /// install below the corrupt base, and flush — making the repair
    /// durable and deleting the superseded corrupt segment file. The
    /// repair is deliberately *not* WAL-logged: replay would re-promote
    /// the corrupt base it replaces; durability comes from the flush.
    fn heal_shard_table(
        inner: &ShardedInner,
        st: &mut GlobalState,
        bad: u32,
        table: &str,
    ) -> Result<u64, StoreError> {
        let active = st.active.clone();
        // Pre-cutover, a migration target shard also holds dual-applied
        // and copied rows it owns under the *new* topology; the heal
        // must restore those too or a completed Copy unit would lose
        // rows silently. Post-cutover (and with no migration) the
        // active topology is the only owner set.
        let target_pre = st
            .migration
            .as_ref()
            .filter(|m| !m.cut_over)
            .map(|m| m.target.clone());
        let mut rows: BTreeMap<Bytes, RowData> = BTreeMap::new();
        let mut exports: BTreeMap<(u32, String), BTreeMap<Bytes, RowData>> = BTreeMap::new();
        for s in 0..active.shards {
            let bad_active = active.replicas(s).contains(&bad);
            if !bad_active && target_pre.is_none() {
                continue;
            }
            let slot_rows =
                resharding::export_slot_from_peers(st, &active, s, table, Some(bad), &mut exports)?;
            for (row, data) in slot_rows {
                if bad_active || target_pre.as_ref().is_some_and(|t| t.owns(bad, &row)) {
                    rows.insert(row, data);
                }
            }
        }
        let healed = st.shards[bad as usize].heal_table(table, rows)?;
        // Durability of the repair, and the moment the bad on-disk copy
        // is rewritten (the superseded segment file is deleted).
        st.shards[bad as usize].flush()?;
        let o = inner.obs();
        o.incr(&format!("cfstore.shard.{bad}.heal.repairs"), 1);
        o.incr(&format!("cfstore.shard.{bad}.heal.rows"), healed);
        o.incr("cfstore.shard.heal.repairs", 1);
        o.incr("cfstore.shard.heal.rows", healed);
        Ok(healed)
    }

    fn maybe_wake_flusher(&self, st: &GlobalState) {
        let (Some(threshold), Some(shared)) = (
            self.inner.background_flush_wal_bytes,
            self.inner.flush_shared.as_ref(),
        ) else {
            return;
        };
        if st
            .shards
            .iter()
            .any(|s| s.wal_bytes_since_flush() >= threshold)
        {
            shared
                .signal
                .lock()
                .expect("sharded flusher signal lock")
                .pending = true;
            shared.cv.notify_all();
        }
    }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        if let Some(handle) = self.flusher.take() {
            if let Some(shared) = &self.inner.flush_shared {
                shared
                    .signal
                    .lock()
                    .expect("sharded flusher signal lock")
                    .shutdown = true;
                shared.cv.notify_all();
            }
            let _ = handle.join();
        }
    }
}

/// The sharded background flusher: one thread for the whole store,
/// flushing any shard whose WAL outgrew the threshold. Flushes run
/// under the global lock — they serialize with writers exactly like a
/// caller-driven [`ShardedStore::flush`], so crash safety reduces to
/// the single-store argument.
fn shard_flusher_loop(inner: Arc<ShardedInner>, shared: Arc<ShardFlusherShared>) {
    let threshold = inner
        .background_flush_wal_bytes
        .expect("flusher only runs with a threshold");
    loop {
        {
            let mut sig = shared.signal.lock().expect("sharded flusher signal lock");
            while !sig.pending && !sig.shutdown {
                sig = shared.cv.wait(sig).expect("sharded flusher signal wait");
            }
            if sig.shutdown {
                return;
            }
            sig.pending = false;
        }
        let mut st = inner.state.lock();
        if st.poisoned {
            continue;
        }
        for g in 0..st.shards.len() {
            if st.shards[g].wal_bytes_since_flush() >= threshold {
                match st.shards[g].flush() {
                    Ok(()) => inner.obs().incr("cfstore.shard.flush.background", 1),
                    Err(StoreError::Crashed) => {
                        st.poisoned = true;
                        break;
                    }
                    Err(_) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::RowPrefixFilter;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cfstore-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn seed_rows(store: &ShardedStore, count: usize) {
        store.create_table("t", &["f"]).unwrap();
        for i in 0..count {
            store
                .put(
                    "t",
                    Put::new(format!("row{i:04}"), "f", "c", format!("v{i}")),
                )
                .unwrap();
        }
    }

    #[test]
    fn placement_is_deterministic_and_replicated() {
        for row in [b"alpha".as_slice(), b"beta", b"", b"row0001"] {
            let s = slot_of(row, 5);
            assert_eq!(s, slot_of(row, 5));
            assert!(s < 5);
            let reps = replica_set(s, 5, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], s, "primary is the slot's home shard");
            let unique: BTreeSet<u32> = reps.iter().copied().collect();
            assert_eq!(unique.len(), 3, "replicas are distinct shards");
        }
    }

    #[test]
    fn shards_catalog_roundtrip_and_opts_override() {
        let dir = tmp_dir("catalog");
        {
            let (store, rep) = ShardedStore::open_with_opts(
                &dir,
                ShardOptions {
                    shards: 4,
                    replication: 2,
                    ..ShardOptions::default()
                },
            )
            .unwrap();
            assert_eq!(store.shard_count(), 4);
            assert!(rep.lost_shards.is_empty());
        }
        assert_eq!(read_shards_file(&dir).unwrap(), Some((4, 2)));
        // Reopen with conflicting options: the file wins.
        let (store, _) = ShardedStore::open_with_opts(
            &dir,
            ShardOptions {
                shards: 7,
                replication: 3,
                ..ShardOptions::default()
            },
        )
        .unwrap();
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.replication(), 2);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replicas_hold_identical_copies_and_scan_matches_oracle() {
        let dir = tmp_dir("oracle");
        let (store, _) = ShardedStore::open(&dir).unwrap();
        let oracle = MiniStore::new();
        oracle.create_table("t", &["f"]).unwrap();
        seed_rows(&store, 60);
        for i in 0..60 {
            oracle
                .put(
                    "t",
                    Put::new(format!("row{i:04}"), "f", "c", format!("v{i}")),
                )
                .unwrap();
        }
        let (got, _) = store.scan("t", &Scan::all()).unwrap();
        let (want, _) = oracle.scan("t", &Scan::all()).unwrap();
        assert_eq!(got, want, "sharded scan is bit-identical to unsharded");

        // Each row is present, identical, on every one of its replicas.
        for i in 0..60 {
            let row = format!("row{i:04}");
            let reps = store.replica_shards(row.as_bytes());
            assert_eq!(reps.len(), 2);
            let mut copies = Vec::new();
            for g in reps {
                let (rows, _) = store
                    .shard_scan(g, "t", &Scan::prefix(row.as_bytes()))
                    .unwrap();
                assert_eq!(rows.len(), 1, "replica {g} holds {row}");
                copies.push(rows.into_iter().next().unwrap());
            }
            assert_eq!(copies[0], copies[1], "replicas of {row} are identical");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_preserves_data_and_gsn_clock() {
        let dir = tmp_dir("reopen");
        {
            let (store, _) = ShardedStore::open(&dir).unwrap();
            seed_rows(&store, 30);
        }
        let (store, rep) = ShardedStore::open(&dir).unwrap();
        assert!(rep.lost_shards.is_empty());
        assert_eq!(rep.aborted_batches, 0);
        assert_eq!(rep.shards.len(), 3);
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 30);
        // New writes after reopen must not collide with old timestamps.
        store.put("t", Put::new("row0000", "f", "c", "v2")).unwrap();
        let got = store.get("t", b"row0000").unwrap().unwrap();
        assert_eq!(got.value("f", b"c").unwrap(), &Bytes::from("v2"));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_heals_corrupt_primary_from_replica() {
        let dir = tmp_dir("heal-get");
        let reg = obs::Registry::new();
        let (store, _) =
            ShardedStore::open_traced(&dir, ShardOptions::default(), reg.clone()).unwrap();
        seed_rows(&store, 20);
        let victim = b"row0007";
        let primary = store.primary_shard(victim);
        assert!(store.corrupt_cell("t", victim, "f", b"c").unwrap());
        let got = store.get("t", victim).unwrap().expect("row still readable");
        assert_eq!(got.value("f", b"c").unwrap(), &Bytes::from("v7"));
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters[&format!("cfstore.shard.{primary}.heal.reads")],
            1
        );
        assert_eq!(
            snap.counters[&format!("cfstore.shard.{primary}.heal.repairs")],
            1
        );
        assert!(snap.counters[&format!("cfstore.shard.{primary}.heal.rows")] > 0);
        // The heal is durable: re-reading takes no further repair.
        let again = store.get("t", victim).unwrap().unwrap();
        assert_eq!(again.value("f", b"c").unwrap(), &Bytes::from("v7"));
        assert_eq!(
            reg.snapshot().counters[&format!("cfstore.shard.{primary}.heal.repairs")],
            1
        );
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whole_shard_loss_rebuilds_from_peers() {
        let dir = tmp_dir("lost");
        {
            let (store, _) = ShardedStore::open(&dir).unwrap();
            seed_rows(&store, 50);
            store.flush().unwrap();
        }
        let victim_dir = {
            let (store, _) = ShardedStore::open(&dir).unwrap();
            store.shard_dir(1)
        };
        std::fs::remove_dir_all(&victim_dir).unwrap();
        let reg = obs::Registry::new();
        let (store, rep) =
            ShardedStore::open_traced(&dir, ShardOptions::default(), reg.clone()).unwrap();
        assert_eq!(rep.lost_shards, vec![1]);
        assert!(rep.healed_rows > 0, "the rebuilt shard received rows");
        let (rows, _) = store.scan("t", &Scan::all()).unwrap();
        assert_eq!(rows.len(), 50, "no acked row lost with a whole shard gone");
        let snap = reg.snapshot();
        assert_eq!(snap.counters["cfstore.shard.1.heal.rebuilds"], 1);
        // The rebuilt shard serves its replicas again, identically.
        let (replica_rows, _) = store.shard_scan(1, "t", &Scan::all()).unwrap();
        for row in &replica_rows {
            assert!(store.replica_shards(&row.row).contains(&1));
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filters_push_down_through_shards() {
        let dir = tmp_dir("filter");
        let (store, _) = ShardedStore::open(&dir).unwrap();
        seed_rows(&store, 40);
        let scan = Scan::all().with_filter(Box::new(RowPrefixFilter {
            prefix: Bytes::from_static(b"row001"),
        }));
        let (rows, _) = store.scan("t", &scan).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.row.starts_with(b"row001")));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_row_removes_from_all_replicas() {
        let dir = tmp_dir("delete");
        let (store, _) = ShardedStore::open(&dir).unwrap();
        seed_rows(&store, 10);
        assert!(store.delete_row("t", b"row0003").unwrap());
        assert!(!store.delete_row("t", b"row0003").unwrap());
        assert!(store.get("t", b"row0003").unwrap().is_none());
        for g in 0..store.shard_count() {
            let (rows, _) = store.shard_scan(g, "t", &Scan::prefix(b"row0003")).unwrap();
            assert!(rows.is_empty(), "shard {g} purged the row");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
