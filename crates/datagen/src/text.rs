//! Text corpus generators: Wikipedia-like Zipfian documents and uniform
//! random text, in line-keyed and document-keyed flavours.

use mrjobs::{Dataset, Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::{Vocabulary, Zipf};

/// Parameters for a synthetic text corpus.
#[derive(Debug, Clone)]
pub struct TextCorpusSpec {
    /// Dataset name.
    pub name: String,
    /// RNG seed; everything is deterministic in the seed.
    pub seed: u64,
    /// Number of physical sample lines to materialize.
    pub lines: usize,
    /// Mean words per line.
    pub words_per_line: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf exponent (0 = uniform random text; ~1 = natural language).
    pub zipf_exponent: f64,
    /// Logical dataset size in bytes that the sample stands for.
    pub logical_bytes: u64,
}

impl TextCorpusSpec {
    /// A Wikipedia-like corpus: large vocabulary, Zipfian, 12-word lines.
    pub fn wikipedia(name: &str, lines: usize, logical_bytes: u64) -> Self {
        TextCorpusSpec {
            name: name.to_string(),
            seed: 0x5712_011c,
            lines,
            words_per_line: 12,
            vocab: 8_000,
            zipf_exponent: 1.02,
            logical_bytes,
        }
    }

    /// Uniform random text: small vocabulary, no skew.
    pub fn random_text(name: &str, lines: usize, logical_bytes: u64) -> Self {
        TextCorpusSpec {
            name: name.to_string(),
            seed: 0xABCD_1234,
            lines,
            words_per_line: 10,
            vocab: 3_000,
            zipf_exponent: 0.0,
            logical_bytes,
        }
    }

    /// Materialize as a line-keyed dataset: `(line-offset, text)`, the
    /// shape `TextInputFormat` produces.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vocab = Vocabulary::new(self.vocab);
        let zipf = Zipf::new(self.vocab, self.zipf_exponent);
        let mut records = Vec::with_capacity(self.lines);
        let mut offset = 0i64;
        for _ in 0..self.lines {
            let line = self.line(&mut rng, &vocab, &zipf);
            let size = line.len() as i64 + 1;
            records.push(Record::new(Value::Int(offset), Value::text(line)));
            offset += size;
        }
        Dataset::new(self.name.clone(), records, self.logical_bytes)
    }

    /// Materialize as a document-keyed dataset: `(doc-id, text)`, the shape
    /// `KeyValueTextInputFormat` produces; used by the inverted-index job.
    pub fn generate_keyed_docs(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD0C5);
        let vocab = Vocabulary::new(self.vocab);
        let zipf = Zipf::new(self.vocab, self.zipf_exponent);
        let records = (0..self.lines)
            .map(|i| {
                Record::new(
                    Value::text(format!("doc{i:06}")),
                    Value::text(self.line(&mut rng, &vocab, &zipf)),
                )
            })
            .collect();
        Dataset::new(self.name.clone(), records, self.logical_bytes)
    }

    fn line(&self, rng: &mut StdRng, vocab: &Vocabulary, zipf: &Zipf) -> String {
        // Line lengths vary ±50% around the mean.
        let lo = (self.words_per_line / 2).max(1);
        let hi = self.words_per_line + self.words_per_line / 2;
        let n = rng.gen_range(lo..=hi);
        let mut line = String::with_capacity(n * 7);
        for w in 0..n {
            if w > 0 {
                line.push(' ');
            }
            line.push_str(vocab.word(zipf.sample(rng)));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = TextCorpusSpec::wikipedia("w", 50, 0);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn line_keys_are_byte_offsets() {
        let ds = TextCorpusSpec::wikipedia("w", 10, 0).generate();
        let k0 = ds.records[0].key.as_int().unwrap();
        let k1 = ds.records[1].key.as_int().unwrap();
        let len0 = ds.records[0].value.as_text().unwrap().len() as i64;
        assert_eq!(k0, 0);
        assert_eq!(k1, len0 + 1);
    }

    #[test]
    fn zipf_corpus_repeats_head_words() {
        let ds = TextCorpusSpec::wikipedia("w", 400, 0).generate();
        let mut counts = std::collections::HashMap::new();
        for r in &ds.records {
            for w in r.value.as_text().unwrap().split_whitespace() {
                *counts.entry(w.to_string()).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 20, "head word should repeat many times, got {max}");
    }

    #[test]
    fn keyed_docs_have_doc_ids() {
        let ds = TextCorpusSpec::wikipedia("w", 5, 0).generate_keyed_docs();
        assert_eq!(ds.records[3].key, Value::text("doc000003"));
    }

    #[test]
    fn logical_bytes_drive_scale() {
        let ds = TextCorpusSpec::wikipedia("w", 100, 50_000_000).generate();
        assert!(ds.scale() > 100.0);
    }
}
