//! # datagen — synthetic datasets for PStorM-rs
//!
//! Seeded generators for every dataset in the paper's benchmark
//! (Table 6.1): Wikipedia-like and uniform random text, TPC-H-like join
//! inputs, TeraGen sort records, webdocs market-basket transactions,
//! MovieLens-like ratings, genome reads, and PigMix fact rows.
//!
//! The real datasets are multi-gigabyte; generators materialize an
//! MB-scale physical sample and declare the `logical_bytes` it stands for
//! (see [`mrjobs::Dataset`]). Distributional properties that matter to
//! profile matching — Zipfian word skew, join-key skew, basket sizes — are
//! preserved.

pub mod corpus;
pub mod domains;
pub mod tables;
pub mod text;
pub mod zipf;

pub use corpus::{input_for, SizeClass};
pub use text::TextCorpusSpec;
pub use zipf::{Vocabulary, Zipf};
