//! Structured-data generators: TPC-H-like tagged join inputs, TeraGen
//! sort records, and PigMix fact rows.

use mrjobs::{Dataset, Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// TPC-H-like tagged join input: `(join_key, (tag, payload))` records where
/// tag 0 rows come from the dimension table ("orders") and tag 1 rows from
/// the skewed fact table ("lineitem"), the shape `CompositeInputFormat`
/// hands to a reduce-side join.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    pub name: String,
    pub seed: u64,
    /// Distinct join keys.
    pub keys: usize,
    /// Left (dimension) rows; one per key.
    pub left_payload_len: usize,
    /// Right (fact) rows, Zipf-distributed over keys.
    pub right_rows: usize,
    pub right_payload_len: usize,
    pub logical_bytes: u64,
}

impl JoinSpec {
    pub fn tpch(name: &str, keys: usize, right_rows: usize, logical_bytes: u64) -> Self {
        JoinSpec {
            name: name.to_string(),
            seed: 0x7bc4_0001,
            keys,
            left_payload_len: 48,
            right_rows,
            right_payload_len: 24,
            logical_bytes,
        }
    }

    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.keys, 0.6);
        let mut records = Vec::with_capacity(self.keys + self.right_rows);
        for k in 0..self.keys {
            records.push(Record::new(
                Value::text(format!("k{k:06}")),
                Value::pair(
                    Value::Int(0),
                    Value::text(random_payload(&mut rng, self.left_payload_len)),
                ),
            ));
        }
        for _ in 0..self.right_rows {
            let k = zipf.sample(&mut rng);
            records.push(Record::new(
                Value::text(format!("k{k:06}")),
                Value::pair(
                    Value::Int(1),
                    Value::text(random_payload(&mut rng, self.right_payload_len)),
                ),
            ));
        }
        Dataset::new(self.name.clone(), records, self.logical_bytes)
    }
}

/// TeraGen-style sort input: 10-character random keys with 90-character
/// payloads, the classic 100-byte sort record.
pub fn teragen(name: &str, rows: usize, seed: u64, logical_bytes: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let records = (0..rows)
        .map(|_| {
            Record::new(
                Value::text(random_payload(&mut rng, 10)),
                Value::text(random_payload(&mut rng, 90)),
            )
        })
        .collect();
    Dataset::new(name, records, logical_bytes)
}

/// PigMix fact rows: three Zipf-skewed string dimensions and two numeric
/// measures per line.
pub fn pigmix_rows(name: &str, rows: usize, seed: u64, logical_bytes: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = [
        Zipf::new(40, 0.8),
        Zipf::new(200, 0.8),
        Zipf::new(1000, 0.5),
    ];
    let records = (0..rows)
        .map(|i| {
            let a = dims[0].sample(&mut rng);
            let b = dims[1].sample(&mut rng);
            let c = dims[2].sample(&mut rng);
            let m1: f64 = rng.gen_range(0.0..100.0);
            let m2: f64 = rng.gen_range(0.0..100.0);
            Record::new(
                Value::Int(i as i64),
                Value::text(format!("a{a:03} b{b:04} c{c:05} {m1:.1} {m2:.1}")),
            )
        })
        .collect();
    Dataset::new(name, records, logical_bytes)
}

fn random_payload(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_has_both_tags() {
        let ds = JoinSpec::tpch("j", 50, 200, 0).generate();
        let tags: Vec<i64> = ds
            .records
            .iter()
            .map(|r| match &r.value {
                Value::Pair(t, _) => t.as_int().unwrap(),
                _ => panic!("expected pair"),
            })
            .collect();
        assert!(tags.contains(&0));
        assert!(tags.contains(&1));
        assert_eq!(ds.len(), 250);
    }

    #[test]
    fn join_right_side_is_skewed() {
        let ds = JoinSpec::tpch("j", 100, 2000, 0).generate();
        let mut per_key = std::collections::HashMap::new();
        for r in ds.records.iter().skip(100) {
            *per_key.entry(r.key.clone()).or_insert(0usize) += 1;
        }
        let max = per_key.values().max().copied().unwrap();
        assert!(max > 2000 / 100, "skew should concentrate rows: {max}");
    }

    #[test]
    fn teragen_records_are_100_bytes_of_payload() {
        let ds = teragen("t", 20, 1, 0);
        for r in &ds.records {
            assert_eq!(r.key.as_text().unwrap().len(), 10);
            assert_eq!(r.value.as_text().unwrap().len(), 90);
        }
    }

    #[test]
    fn teragen_is_seeded() {
        assert_eq!(teragen("t", 5, 9, 0).records, teragen("t", 5, 9, 0).records);
        assert_ne!(
            teragen("t", 5, 9, 0).records,
            teragen("t", 5, 10, 0).records
        );
    }

    #[test]
    fn pigmix_rows_have_five_fields() {
        let ds = pigmix_rows("p", 10, 3, 0);
        for r in &ds.records {
            let n = r.value.as_text().unwrap().split_whitespace().count();
            assert_eq!(n, 5);
        }
    }
}
