//! Zipfian sampling and a synthetic vocabulary.
//!
//! Natural-language word frequencies are famously Zipfian; the text
//! generators use this sampler so that word count / co-occurrence /
//! inverted index dataflow statistics (combiner selectivity in particular)
//! behave like they do on real corpora such as the paper's Wikipedia dump.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`, sampled by
/// binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `n` ranks with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 is natural language).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A deterministic synthetic vocabulary: pronounceable word shapes built
/// from syllables, so generated text looks plausible in logs and profiles.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
}

const ONSETS: [&str; 12] = ["b", "d", "f", "k", "l", "m", "n", "p", "r", "s", "t", "v"];
const NUCLEI: [&str; 6] = ["a", "e", "i", "o", "u", "ai"];
const CODAS: [&str; 6] = ["", "n", "r", "s", "t", "l"];

impl Vocabulary {
    /// Generate `n` distinct words, deterministic in `n`.
    pub fn new(n: usize) -> Self {
        let mut words = Vec::with_capacity(n);
        let mut i = 0usize;
        while words.len() < n {
            let mut w = String::new();
            let mut x = i;
            loop {
                let onset = ONSETS[x % ONSETS.len()];
                x /= ONSETS.len();
                let nucleus = NUCLEI[x % NUCLEI.len()];
                x /= NUCLEI.len();
                let coda = CODAS[x % CODAS.len()];
                x /= CODAS.len();
                w.push_str(onset);
                w.push_str(nucleus);
                w.push_str(coda);
                if x == 0 {
                    break;
                }
            }
            words.push(w);
            i += 1;
        }
        Vocabulary { words }
    }

    /// The word at a Zipf rank.
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank % self.words.len()]
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_is_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "uniform should be flat: {counts:?}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn vocabulary_words_are_distinct() {
        let v = Vocabulary::new(2000);
        let mut set = std::collections::HashSet::new();
        for i in 0..v.len() {
            assert!(set.insert(v.word(i).to_string()), "dup at {i}");
        }
    }

    #[test]
    fn vocabulary_is_deterministic() {
        let a = Vocabulary::new(50);
        let b = Vocabulary::new(50);
        assert_eq!(a.word(13), b.word(13));
    }
}
