//! Domain-specific generators: market-basket transactions (webdocs-like),
//! movie ratings (MovieLens-like), per-user item lists, association-rule
//! lines, and genome reads (CloudBurst input).

use mrjobs::{Dataset, Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Market-basket transactions: one line of space-separated item ids per
/// basket, item popularity Zipfian over the catalog (webdocs-like).
pub fn transactions(
    name: &str,
    baskets: usize,
    mean_items: usize,
    catalog: usize,
    seed: u64,
    logical_bytes: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(catalog, 0.9);
    let records = (0..baskets)
        .map(|i| {
            let n = rng.gen_range((mean_items / 2).max(1)..=mean_items * 3 / 2);
            let mut items: Vec<usize> = (0..n).map(|_| zipf.sample(&mut rng)).collect();
            items.sort_unstable();
            items.dedup();
            let line = items
                .iter()
                .map(|x| format!("item{x:04}"))
                .collect::<Vec<_>>()
                .join(" ");
            Record::new(Value::Int(i as i64), Value::text(line))
        })
        .collect();
    Dataset::new(name, records, logical_bytes)
}

/// MovieLens-like ratings: `user item rating` lines with Zipfian item
/// popularity and half-star ratings.
pub fn ratings(
    name: &str,
    rows: usize,
    users: usize,
    items: usize,
    seed: u64,
    logical_bytes: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let item_pop = Zipf::new(items, 0.9);
    let records = (0..rows)
        .map(|i| {
            let u = rng.gen_range(0..users);
            let it = item_pop.sample(&mut rng);
            let r = (rng.gen_range(1..=10) as f64) / 2.0;
            Record::new(
                Value::Int(i as i64),
                Value::text(format!("u{u:05} i{it:04} {r:.1}")),
            )
        })
        .collect();
    Dataset::new(name, records, logical_bytes)
}

/// Per-user item lists (the output shape of CF phase 1, input of phase 2):
/// `(user-id, "itemA itemB ...")`.
pub fn user_item_lists(
    name: &str,
    users: usize,
    mean_items: usize,
    catalog: usize,
    seed: u64,
    logical_bytes: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(catalog, 0.9);
    let records = (0..users)
        .map(|u| {
            let n = rng.gen_range((mean_items / 2).max(1)..=mean_items * 3 / 2);
            let mut items: Vec<usize> = (0..n).map(|_| zipf.sample(&mut rng)).collect();
            items.sort_unstable();
            items.dedup();
            let line = items
                .iter()
                .map(|x| format!("i{x:04}"))
                .collect::<Vec<_>>()
                .join(" ");
            Record::new(Value::text(format!("u{u:05}")), Value::text(line))
        })
        .collect();
    Dataset::new(name, records, logical_bytes)
}

/// Association-rule input lines for FIM pass 3: `antecedent consequent count`.
pub fn rule_lines(
    name: &str,
    rows: usize,
    catalog: usize,
    seed: u64,
    logical_bytes: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(catalog, 0.9);
    let records = (0..rows)
        .map(|i| {
            let a = zipf.sample(&mut rng);
            let mut c = zipf.sample(&mut rng);
            if c == a {
                c = (c + 1) % catalog;
            }
            let count = rng.gen_range(1..100);
            Record::new(
                Value::Int(i as i64),
                Value::text(format!("item{a:04} item{c:04} {count}")),
            )
        })
        .collect();
    Dataset::new(name, records, logical_bytes)
}

/// Genome reads: `(read-id, base-string)` over the ACGT alphabet, plus a
/// handful of long reference fragments, mirroring CloudBurst's two inputs
/// merged into one sequence store.
pub fn genome_reads(
    name: &str,
    reads: usize,
    read_len: usize,
    seed: u64,
    logical_bytes: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(reads + reads / 50 + 1);
    for i in 0..reads {
        records.push(Record::new(
            Value::text(format!("r{i:06}")),
            Value::text(random_bases(&mut rng, read_len)),
        ));
    }
    // Reference fragments are ~20x read length.
    for i in 0..(reads / 50).max(1) {
        records.push(Record::new(
            Value::text(format!("ref{i:04}")),
            Value::text(random_bases(&mut rng, read_len * 20)),
        ));
    }
    Dataset::new(name, records, logical_bytes)
}

fn random_bases(rng: &mut StdRng, len: usize) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_are_deduped_and_sorted() {
        let ds = transactions("t", 50, 8, 100, 1, 0);
        for r in &ds.records {
            let items: Vec<&str> = r.value.as_text().unwrap().split(' ').collect();
            let mut sorted = items.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(items, sorted);
        }
    }

    #[test]
    fn ratings_are_half_stars() {
        let ds = ratings("r", 100, 20, 50, 2, 0);
        for r in &ds.records {
            let rating: f64 = r
                .value
                .as_text()
                .unwrap()
                .split(' ')
                .nth(2)
                .unwrap()
                .parse()
                .unwrap();
            assert!((0.5..=5.0).contains(&rating));
            assert_eq!((rating * 2.0).fract(), 0.0);
        }
    }

    #[test]
    fn genome_reads_have_reference_fragments() {
        let ds = genome_reads("g", 100, 30, 3, 0);
        let refs: Vec<_> = ds
            .records
            .iter()
            .filter(|r| r.key.as_text().unwrap().starts_with("ref"))
            .collect();
        assert!(!refs.is_empty());
        assert_eq!(refs[0].value.as_text().unwrap().len(), 600);
    }

    #[test]
    fn rule_lines_never_self_reference() {
        let ds = rule_lines("rl", 200, 50, 4, 0);
        for r in &ds.records {
            let f: Vec<&str> = r.value.as_text().unwrap().split(' ').collect();
            assert_ne!(f[0], f[1]);
        }
    }

    #[test]
    fn user_item_lists_keyed_by_user() {
        let ds = user_item_lists("u", 10, 5, 40, 5, 0);
        assert!(ds.records[0].key.as_text().unwrap().starts_with('u'));
    }
}
