//! The named dataset corpus of Table 6.1.
//!
//! Each benchmark job runs on up to two datasets (a ~1 GB-class and a
//! ~35 GB-class input, per the paper). [`input_for`] maps a job name and a
//! [`SizeClass`] to the right dataset; jobs the paper ran on a single
//! dataset (frequent itemset mining, co-occurrence stripes' large run OOMs)
//! return the same dataset for both classes.

use mrjobs::Dataset;

use crate::domains::{genome_reads, ratings, rule_lines, transactions, user_item_lists};
use crate::tables::{pigmix_rows, teragen, JoinSpec};
use crate::text::TextCorpusSpec;

const GB: u64 = 1 << 30;

/// Which of the two dataset scales of Table 6.1 to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// The ~1 GB-class input (1 GB random text, 1 GB TPC-H, 1M ratings...).
    Small,
    /// The ~35 GB-class input (35 GB Wikipedia, 35 GB TeraGen, 10M ratings...).
    Large,
}

/// 1 GB of uniform random text (line-keyed).
pub fn random_text_1g() -> Dataset {
    TextCorpusSpec::random_text("random-text-1g", 2_000, GB).generate()
}

/// 35 GB of Wikipedia-like documents (line-keyed).
pub fn wikipedia_35g() -> Dataset {
    TextCorpusSpec::wikipedia("wikipedia-35g", 4_000, 35 * GB).generate()
}

/// 1 GB-class Wikipedia-like documents, used for sweeps that need the same
/// distribution at different scales (Fig. 4.6).
pub fn wikipedia_1g() -> Dataset {
    TextCorpusSpec::wikipedia("wikipedia-1g", 2_000, GB).generate()
}

/// 4 GB-class Wikipedia-like documents (Fig. 4.6 mid point).
pub fn wikipedia_4g() -> Dataset {
    TextCorpusSpec::wikipedia("wikipedia-4g", 2_500, 4 * GB).generate()
}

/// Document-keyed variants for the inverted-index job.
pub fn random_docs_1g() -> Dataset {
    TextCorpusSpec::random_text("random-docs-1g", 2_000, GB).generate_keyed_docs()
}

/// Document-keyed 35 GB-class Wikipedia.
pub fn wikipedia_docs_35g() -> Dataset {
    TextCorpusSpec::wikipedia("wikipedia-docs-35g", 4_000, 35 * GB).generate_keyed_docs()
}

/// 1 GB of TPC-H-like tagged join input.
pub fn tpch_1g() -> Dataset {
    JoinSpec::tpch("tpch-1g", 400, 2_400, GB).generate()
}

/// 35 GB of TPC-H-like tagged join input.
pub fn tpch_35g() -> Dataset {
    JoinSpec::tpch("tpch-35g", 800, 4_800, 35 * GB).generate()
}

/// 1 GB of TeraGen sort records.
pub fn teragen_1g() -> Dataset {
    teragen("teragen-1g", 3_000, 0x7e4a, GB)
}

/// 35 GB of TeraGen sort records.
pub fn teragen_35g() -> Dataset {
    teragen("teragen-35g", 5_000, 0x7e4b, 35 * GB)
}

/// The 1.5 GB webdocs market-basket dataset (single scale, as in the paper).
pub fn webdocs() -> Dataset {
    transactions("webdocs-1.5g", 2_500, 8, 600, 0xeb, GB * 3 / 2)
}

/// Rule lines distilled from webdocs, input of FIM pass 3 (single scale).
pub fn webdocs_rules() -> Dataset {
    rule_lines("webdocs-rules", 3_000, 600, 0xec, GB / 2)
}

/// The 1M-ratings MovieLens-like dataset.
pub fn ratings_1m() -> Dataset {
    ratings("ratings-1m", 3_000, 500, 800, 0x4a, 24 * (1 << 20))
}

/// The 10M-ratings MovieLens-like dataset.
pub fn ratings_10m() -> Dataset {
    ratings("ratings-10m", 5_000, 1_500, 2_000, 0x4b, 240 * (1 << 20))
}

/// Per-user item lists at the 1M-ratings scale.
pub fn user_lists_1m() -> Dataset {
    user_item_lists("user-lists-1m", 1_500, 7, 800, 0x4c, 12 * (1 << 20))
}

/// Per-user item lists at the 10M-ratings scale.
pub fn user_lists_10m() -> Dataset {
    user_item_lists("user-lists-10m", 2_500, 9, 2_000, 0x4d, 120 * (1 << 20))
}

/// The small sample genome.
pub fn genome_sample() -> Dataset {
    genome_reads("genome-sample", 600, 36, 0x91, 256 * (1 << 20))
}

/// The Lake-Washington-class genome.
pub fn genome_lake_washington() -> Dataset {
    genome_reads("genome-lakewash", 1_200, 36, 0x92, 2 * GB)
}

/// 1 GB of PigMix fact rows.
pub fn pigmix_1g() -> Dataset {
    pigmix_rows("pigmix-1g", 3_000, 0xa1, GB)
}

/// 35 GB of PigMix fact rows.
pub fn pigmix_35g() -> Dataset {
    pigmix_rows("pigmix-35g", 5_000, 0xa2, 35 * GB)
}

/// The input dataset for a benchmark job (by job *name*, not job id) at a
/// given size class, following Table 6.1. Jobs the paper ran on a single
/// dataset return that dataset for both classes.
pub fn input_for(job_name: &str, size: SizeClass) -> Dataset {
    use SizeClass::*;
    match job_name {
        "word-count"
        | "word-count-while"
        | "grep"
        | "word-cooccurrence-pairs"
        | "word-cooccurrence-stripes"
        | "bigram-relative-frequency" => match size {
            Small => random_text_1g(),
            Large => wikipedia_35g(),
        },
        "inverted-index" => match size {
            Small => random_docs_1g(),
            Large => wikipedia_docs_35g(),
        },
        "sort" => match size {
            Small => teragen_1g(),
            Large => teragen_35g(),
        },
        "join" => match size {
            Small => tpch_1g(),
            Large => tpch_35g(),
        },
        "fim-pass1" | "fim-pass2" => webdocs(),
        "fim-pass3" => webdocs_rules(),
        "cf-user-vectors" => match size {
            Small => ratings_1m(),
            Large => ratings_10m(),
        },
        "cf-item-similarity" => match size {
            Small => user_lists_1m(),
            Large => user_lists_10m(),
        },
        "cloudburst" => match size {
            Small => genome_sample(),
            Large => genome_lake_washington(),
        },
        name if name.starts_with("pigmix-") => match size {
            Small => pigmix_1g(),
            Large => pigmix_35g(),
        },
        other => panic!("no corpus dataset defined for job `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_job_has_an_input() {
        for spec in mrjobs::jobs::standard_suite() {
            let small = input_for(&spec.name, SizeClass::Small);
            let large = input_for(&spec.name, SizeClass::Large);
            assert!(!small.is_empty(), "{}", spec.name);
            assert!(!large.is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn single_dataset_jobs_return_same_input() {
        let a = input_for("fim-pass1", SizeClass::Small);
        let b = input_for("fim-pass1", SizeClass::Large);
        assert_eq!(a.name, b.name);
    }

    #[test]
    fn two_dataset_jobs_differ_by_class() {
        let a = input_for("word-count", SizeClass::Small);
        let b = input_for("word-count", SizeClass::Large);
        assert_ne!(a.name, b.name);
        assert!(b.logical_bytes > a.logical_bytes);
    }

    #[test]
    #[should_panic(expected = "no corpus dataset")]
    fn unknown_job_panics() {
        let _ = input_for("nope", SizeClass::Small);
    }

    #[test]
    fn wikipedia_scales_are_ordered() {
        assert!(wikipedia_1g().logical_bytes < wikipedia_4g().logical_bytes);
        assert!(wikipedia_4g().logical_bytes < wikipedia_35g().logical_bytes);
    }
}
