//! A PerfXplain-style performance explainer (§2.3.2, §7.2.4).
//!
//! PerfXplain answers "why did job A perform differently from job B?" by
//! mining execution logs. The thesis argues PStorM's store makes such
//! explanations *more precise* because it holds both the per-phase
//! dynamic information and the static code signature of every job. This
//! module implements that enriched explainer: it ranks the per-phase time
//! divergences between two profiles and, where the store's static
//! features offer a cause (different input formatters, different CFGs,
//! a missing combiner), attaches it to the explanation.

use mrsim::{MapPhase, ReducePhase};
use profiler::JobProfile;
use staticanalysis::StaticFeatures;

/// One ranked explanation for a performance difference.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Where the divergence is (e.g. `"map phase MAP"`).
    pub subject: String,
    /// Per-task times being contrasted, ms.
    pub a_ms: f64,
    pub b_ms: f64,
    /// |log-ratio| of the two times — the ranking key.
    pub severity: f64,
    /// The static-feature cause, when one is available ("different map
    /// CFGs", "B has no combiner", ...).
    pub cause: Option<String>,
}

impl Explanation {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let ratio = if self.b_ms > 0.0 {
            self.a_ms / self.b_ms
        } else {
            f64::INFINITY
        };
        match &self.cause {
            Some(cause) => format!(
                "{}: {:.1}s vs {:.1}s ({ratio:.1}x) — {cause}",
                self.subject,
                self.a_ms / 1000.0,
                self.b_ms / 1000.0
            ),
            None => format!(
                "{}: {:.1}s vs {:.1}s ({ratio:.1}x)",
                self.subject,
                self.a_ms / 1000.0,
                self.b_ms / 1000.0
            ),
        }
    }
}

/// Explain the performance difference between two profiled jobs, most
/// severe divergence first.
pub fn explain(
    a: (&JobProfile, &StaticFeatures),
    b: (&JobProfile, &StaticFeatures),
) -> Vec<Explanation> {
    let (pa, sa) = a;
    let (pb, sb) = b;
    let mut out = Vec::new();

    for phase in [
        MapPhase::Read,
        MapPhase::Map,
        MapPhase::Collect,
        MapPhase::Spill,
        MapPhase::Merge,
    ] {
        let a_ms = phase_ms_map(pa, phase);
        let b_ms = phase_ms_map(pb, phase);
        if let Some(severity) = severity(a_ms, b_ms) {
            out.push(Explanation {
                subject: format!("map phase {phase:?}"),
                a_ms,
                b_ms,
                severity,
                cause: map_cause(phase, pa, sa, pb, sb),
            });
        }
    }
    if let (Some(ra), Some(rb)) = (&pa.reduce, &pb.reduce) {
        for phase in [
            ReducePhase::Shuffle,
            ReducePhase::Sort,
            ReducePhase::Reduce,
            ReducePhase::Write,
        ] {
            let a_ms = phase_ms_reduce(ra, phase);
            let b_ms = phase_ms_reduce(rb, phase);
            if let Some(severity) = severity(a_ms, b_ms) {
                out.push(Explanation {
                    subject: format!("reduce phase {phase:?}"),
                    a_ms,
                    b_ms,
                    severity,
                    cause: reduce_cause(phase, pa, sa, pb, sb),
                });
            }
        }
    }
    out.sort_by(|x, y| y.severity.total_cmp(&x.severity));
    out
}

fn phase_ms_map(p: &JobProfile, phase: MapPhase) -> f64 {
    p.map
        .phase_ms
        .iter()
        .filter(|(ph, _)| *ph == phase)
        .map(|(_, ms)| *ms)
        .sum()
}

fn phase_ms_reduce(r: &profiler::ReduceProfile, phase: ReducePhase) -> f64 {
    r.phase_ms
        .iter()
        .filter(|(ph, _)| *ph == phase)
        .map(|(_, ms)| *ms)
        .sum()
}

/// |ln(a/b)|, or None when the phase is negligible on both sides.
fn severity(a_ms: f64, b_ms: f64) -> Option<f64> {
    const NEGLIGIBLE_MS: f64 = 50.0;
    if a_ms < NEGLIGIBLE_MS && b_ms < NEGLIGIBLE_MS {
        return None;
    }
    Some((a_ms.max(1.0) / b_ms.max(1.0)).ln().abs())
}

fn map_cause(
    phase: MapPhase,
    pa: &JobProfile,
    sa: &StaticFeatures,
    pb: &JobProfile,
    sb: &StaticFeatures,
) -> Option<String> {
    let static_of = |s: &StaticFeatures, name: &str| -> Option<String> {
        s.map
            .categorical
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
    };
    match phase {
        MapPhase::Read => {
            let fa = static_of(sa, "IN_FORMATTER")?;
            let fb = static_of(sb, "IN_FORMATTER")?;
            if fa != fb {
                return Some(format!("different input formatters ({fa} vs {fb})"));
            }
            None
        }
        MapPhase::Map => {
            if sa.map.cfg_match(&sb.map) == 0.0 {
                let (la, lb) = (
                    sa.map.cfg.as_ref().map(|c| c.max_loop_depth()).unwrap_or(0),
                    sb.map.cfg.as_ref().map(|c| c.max_loop_depth()).unwrap_or(0),
                );
                return Some(format!("different map CFGs (loop nesting {la} vs {lb})"));
            }
            None
        }
        MapPhase::Spill | MapPhase::Merge => {
            let ca = pa.map.combine_pairs_selectivity;
            let cb = pb.map.combine_pairs_selectivity;
            match (ca, cb) {
                (Some(_), None) => Some("only the first job runs a combiner".to_string()),
                (None, Some(_)) => Some("only the second job runs a combiner".to_string()),
                _ => {
                    let sel_a = pa.map.size_selectivity;
                    let sel_b = pb.map.size_selectivity;
                    if (sel_a / sel_b.max(1e-9)).ln().abs() > 0.5 {
                        Some(format!(
                            "map size selectivities differ ({sel_a:.2} vs {sel_b:.2})"
                        ))
                    } else {
                        None
                    }
                }
            }
        }
        _ => None,
    }
}

fn reduce_cause(
    phase: ReducePhase,
    pa: &JobProfile,
    sa: &StaticFeatures,
    pb: &JobProfile,
    sb: &StaticFeatures,
) -> Option<String> {
    match phase {
        ReducePhase::Shuffle | ReducePhase::Sort => {
            let ia = pa.reduce.as_ref()?.in_bytes;
            let ib = pb.reduce.as_ref()?.in_bytes;
            if (ia / ib.max(1.0)).ln().abs() > 0.5 {
                return Some(format!(
                    "shuffle volumes differ ({:.2} GB vs {:.2} GB)",
                    ia / (1u64 << 30) as f64,
                    ib / (1u64 << 30) as f64
                ));
            }
            None
        }
        ReducePhase::Reduce => {
            if sa.reduce.cfg_match(&sb.reduce) == 0.0 {
                return Some("different reduce CFGs".to_string());
            }
            None
        }
        ReducePhase::Write => {
            let oa = pa.reduce.as_ref()?.out_bytes;
            let ob = pb.reduce.as_ref()?.out_bytes;
            if (oa / ob.max(1.0)).ln().abs() > 0.5 {
                return Some("output sizes differ".to_string());
            }
            None
        }
        ReducePhase::Setup => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{ClusterSpec, JobConfig};
    use profiler::collect_full_profile;

    fn profiled(spec: &mrjobs::JobSpec, ds: &mrjobs::Dataset) -> (JobProfile, StaticFeatures) {
        let (p, _) = collect_full_profile(
            spec,
            ds,
            &ClusterSpec::ec2_c1_medium_16(),
            &JobConfig::submitted(spec),
            9,
        )
        .unwrap();
        (p, StaticFeatures::extract(spec))
    }

    #[test]
    fn cfg_difference_explains_map_phase_gap() {
        let ds = corpus::wikipedia_35g();
        let (pa, sa) = profiled(&jobs::word_cooccurrence_pairs(2), &ds);
        let (pb, sb) = profiled(&jobs::word_count(), &ds);
        let explanations = explain((&pa, &sa), (&pb, &sb));
        assert!(!explanations.is_empty());
        let map_exp = explanations
            .iter()
            .find(|e| e.subject == "map phase Map")
            .expect("map phase divergence");
        assert!(map_exp.a_ms > map_exp.b_ms);
        assert!(
            map_exp.cause.as_deref().unwrap_or("").contains("CFG"),
            "{:?}",
            map_exp.cause
        );
    }

    #[test]
    fn formatter_difference_is_surfaced_for_read_costs() {
        let (pa, sa) = profiled(&jobs::sort(), &corpus::teragen_1g());
        let (pb, sb) = profiled(&jobs::word_count(), &corpus::random_text_1g());
        let explanations = explain((&pa, &sa), (&pb, &sb));
        let read = explanations.iter().find(|e| e.subject == "map phase Read");
        if let Some(read) = read {
            assert!(
                read.cause.as_deref().unwrap_or("").contains("formatter"),
                "{:?}",
                read.cause
            );
        }
    }

    #[test]
    fn identical_jobs_produce_only_mild_explanations() {
        let ds = corpus::random_text_1g();
        let (pa, sa) = profiled(&jobs::word_count(), &ds);
        let explanations = explain((&pa, &sa), (&pa, &sa));
        for e in &explanations {
            assert!(e.severity < 1e-9, "{}", e.render());
            assert!(e.cause.is_none(), "{}", e.render());
        }
    }

    #[test]
    fn explanations_render_readably() {
        let ds = corpus::random_text_1g();
        let (pa, sa) = profiled(&jobs::word_cooccurrence_pairs(2), &ds);
        let (pb, sb) = profiled(&jobs::bigram_relative_frequency(), &ds);
        let explanations = explain((&pa, &sa), (&pb, &sb));
        for e in explanations.iter().take(3) {
            let s = e.render();
            assert!(s.contains("vs"), "{s}");
        }
    }
}
