//! The multi-tenant tuning service (DESIGN.md §14).
//!
//! [`TuningService`] turns the single-caller [`PStorM`] daemon into a
//! concurrent front-end: many tenants submit jobs through one bounded
//! request queue, a worker pool drains it, and every tenant's traffic
//! runs against a [`ProfileStore::tenant_view`] of one shared backing
//! store — so profiles, matcher state, and normalization bounds are
//! namespaced per tenant while store writes still commit through the
//! same atomic `put_batch` frames.
//!
//! Three mechanisms keep tenants from hurting each other:
//!
//! 1. **Per-tenant FIFO scheduling.** Each tenant's submissions are
//!    processed serially in submission order (tenants run in parallel
//!    with each other), so a tenant's outcomes are a deterministic
//!    function of its own submission sequence — the isolation invariant
//!    the multi-tenant chaos sweep pins.
//! 2. **Admission control.** Counting semaphores bound in-flight
//!    tuning pipelines and their memory budget. When the queue or a
//!    semaphore is exhausted the service *sheds*: the job still runs,
//!    straight down the degradation ladder
//!    ([`PStorM::submit_untuned`]), and resolves as
//!    [`SubmissionOutcome::Degraded`] — overload never surfaces as an
//!    error and never blocks another tenant's slot.
//! 3. **Per-tenant circuit breakers.** `breaker_max_failures`
//!    consecutive hard failures open a tenant's breaker: further
//!    submissions are rejected fast into a bounded dead-letter queue
//!    (no cluster work, no permits consumed) for `breaker_cooldown`
//!    submissions, then a half-open trial decides whether to close it.
//!    A tenant stuck in a failure loop costs the service almost
//!    nothing.
//!
//! Everything is observable: `service.queue.*` / `service.admission.*`
//! gauges and counters, and `tenant.<id>.*` counters per tenant.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mrjobs::{Dataset, JobSpec};
use mrsim::{ClusterSpec, FaultSpec};

use crate::daemon::{
    run_degradation_ladder, DaemonError, PStorM, SubmissionOutcome, SubmissionReport,
};
use crate::store::{ProfileStore, ProfileStoreError};

/// Tuning knobs of a [`TuningService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the request queue. Tenants run in
    /// parallel up to this bound; one tenant never uses more than one
    /// worker at a time.
    pub workers: usize,
    /// Bound on queued (accepted but not yet started) submissions **per
    /// tenant** — a flooding tenant fills only its own queue and sheds
    /// only its own submissions, never a quiet neighbour's. A full queue
    /// sheds new submissions on the caller's thread instead of accepting
    /// them.
    pub queue_depth: usize,
    /// Admission semaphore over concurrently *tuning* submissions (the
    /// full sample → match → CBO pipeline). Exhausted permits shed the
    /// submission down the degradation ladder.
    pub max_in_flight: usize,
    /// Admission semaphore over the memory charged to in-flight tuning
    /// pipelines, in bytes.
    pub memory_budget_bytes: u64,
    /// Memory charged per tuning pipeline against
    /// [`Self::memory_budget_bytes`] (sample profile + columnar index
    /// snapshot + CBO search state).
    pub submission_memory_bytes: u64,
    /// Consecutive hard failures (not degradations) before a tenant's
    /// circuit breaker opens.
    pub breaker_max_failures: u32,
    /// Submissions fast-failed to the DLQ while the breaker is open,
    /// before a half-open trial is allowed.
    pub breaker_cooldown: u32,
    /// Bound on each tenant's dead-letter queue; the oldest entry is
    /// dropped (and counted) on overflow.
    pub dlq_capacity: usize,
    /// Matcher settings every tenant daemon is built with.
    pub matcher: crate::matcher::MatcherConfig,
    /// CBO settings every tenant daemon is built with.
    pub cbo: optimizer::CboOptions,
    /// Degradation-ladder policy for tenant daemons *and* the queue-full
    /// shed path.
    pub policy: crate::daemon::DegradationPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            max_in_flight: 4,
            memory_budget_bytes: 256 << 20,
            submission_memory_bytes: 32 << 20,
            breaker_max_failures: 3,
            breaker_cooldown: 8,
            dlq_capacity: 64,
            matcher: crate::matcher::MatcherConfig::default(),
            cbo: optimizer::CboOptions::default(),
            policy: crate::daemon::DegradationPolicy::default(),
        }
    }
}

/// How the service resolved one submission.
// One value per submission; the size spread between variants is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServiceOutcome {
    /// The submission ran; see the report's [`SubmissionOutcome`] for
    /// whether it was tuned, profiled, or served degraded (load shedding
    /// lands here, as `Degraded`).
    Served(SubmissionReport),
    /// The submission ran into a hard error (hostile cluster beyond the
    /// degradation policy, unrecoverable store failure). Counted against
    /// the tenant's circuit breaker and dead-lettered.
    Failed { job_id: String, error: DaemonError },
    /// The submission never ran: the tenant's circuit breaker was open
    /// (or the service shut down first). Dead-lettered.
    Rejected { job_id: String, reason: String },
}

/// One dead-lettered submission.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// Per-tenant monotonic sequence number.
    pub seq: u64,
    pub job_id: String,
    pub seed: u64,
    /// Why it was dead-lettered (breaker state or the error text).
    pub reason: String,
}

/// A handle to one accepted submission; [`Ticket::wait`] blocks until
/// the service resolves it.
pub struct Ticket {
    rx: mpsc::Receiver<ServiceOutcome>,
    tenant: String,
    job_id: String,
}

impl Ticket {
    /// Block until the submission resolves. Every accepted submission
    /// resolves — shutdown drains the queue first.
    pub fn wait(self) -> ServiceOutcome {
        let job_id = self.job_id;
        self.rx.recv().unwrap_or(ServiceOutcome::Rejected {
            job_id,
            reason: "service shut down before the submission was processed".to_string(),
        })
    }

    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    pub fn job_id(&self) -> &str {
        &self.job_id
    }
}

/// A counting semaphore over `Mutex<u64>` (the vendored `parking_lot`
/// shim has no `Condvar`, and admission never blocks — exhausted permits
/// shed instead of waiting — so try/release is the whole API).
struct Semaphore {
    capacity: u64,
    available: Mutex<u64>,
}

impl Semaphore {
    fn new(capacity: u64) -> Self {
        Semaphore {
            capacity,
            available: Mutex::new(capacity),
        }
    }

    fn try_acquire(&self, n: u64) -> bool {
        let mut avail = self.available.lock().unwrap();
        if *avail >= n {
            *avail -= n;
            true
        } else {
            false
        }
    }

    fn release(&self, n: u64) {
        let mut avail = self.available.lock().unwrap();
        *avail = (*avail + n).min(self.capacity);
    }

    fn in_use(&self) -> u64 {
        self.capacity - *self.available.lock().unwrap()
    }
}

/// Per-tenant circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Serving normally; `failures` consecutive hard failures so far.
    Closed { failures: u32 },
    /// Fast-failing; `remaining` more submissions are dead-lettered
    /// before the breaker goes half-open.
    Open { remaining: u32 },
    /// The next submission runs as a trial: success closes the breaker,
    /// failure re-opens it for a full cooldown.
    HalfOpen,
}

/// One queued submission.
struct Request {
    tenant: String,
    spec: JobSpec,
    dataset: Dataset,
    seed: u64,
    /// Per-request fault override (the chaos tests' hostile-tenant
    /// hook); `None` runs with the service cluster's faults.
    faults: Option<FaultSpec>,
    reply: mpsc::Sender<ServiceOutcome>,
}

struct TenantQueue {
    items: VecDeque<Request>,
    /// Whether this tenant is in `ready` or claimed by a worker. An
    /// active tenant is never re-enqueued into `ready`, which is what
    /// serializes each tenant's submissions.
    active: bool,
}

struct Sched {
    queues: HashMap<String, TenantQueue>,
    /// Tenants with pending work, none of which is currently claimed.
    ready: VecDeque<String>,
    /// Total queued (not yet claimed) requests, bounded by `queue_depth`.
    queued: usize,
    /// Requests currently being processed by workers.
    in_flight: usize,
    shutdown: bool,
}

struct TenantState {
    daemon: Mutex<PStorM>,
    breaker: Mutex<Breaker>,
    /// `(next seq, entries)`; bounded by `dlq_capacity`.
    dlq: Mutex<(u64, VecDeque<DeadLetter>)>,
}

struct Inner {
    sched: Mutex<Sched>,
    /// Workers wait here for ready tenants.
    work_cv: Condvar,
    /// `quiesce` waits here for the queue and workers to drain.
    idle_cv: Condvar,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    tasks: Semaphore,
    memory: Semaphore,
    cfg: ServiceConfig,
    cluster: ClusterSpec,
    base: ProfileStore,
    obs: obs::Registry,
}

/// The concurrent multi-tenant tuning front-end. See the module docs.
pub struct TuningService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl TuningService {
    /// A service over `store` (tenant views are derived from it) and
    /// `cluster`, with no tracing.
    pub fn new(store: ProfileStore, cluster: ClusterSpec, cfg: ServiceConfig) -> Self {
        Self::with_obs(store, cluster, cfg, obs::Registry::disabled())
    }

    /// [`Self::new`] recording service + tenant metrics into `reg`. The
    /// registry is attached to the store before any tenant view exists,
    /// so backend `cfstore.*` counters land in the same trace.
    pub fn with_obs(
        mut store: ProfileStore,
        cluster: ClusterSpec,
        cfg: ServiceConfig,
        reg: obs::Registry,
    ) -> Self {
        store.set_obs(reg.clone());
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched {
                queues: HashMap::new(),
                ready: VecDeque::new(),
                queued: 0,
                in_flight: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            tenants: Mutex::new(HashMap::new()),
            tasks: Semaphore::new(cfg.max_in_flight.max(1) as u64),
            memory: Semaphore::new(cfg.memory_budget_bytes),
            cfg,
            cluster,
            base: store,
            obs: reg,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        TuningService {
            inner,
            workers: handles,
        }
    }

    /// Submit a job on behalf of `tenant`. Returns a [`Ticket`]
    /// immediately; the submission is processed asynchronously, in FIFO
    /// order relative to the same tenant's other submissions.
    ///
    /// When the request queue is full the submission is shed **on the
    /// caller's thread** (backpressure): it runs the degradation ladder
    /// against the service cluster and resolves as
    /// [`SubmissionOutcome::Degraded`], without entering the tenant's
    /// pipeline. Errors here mean an invalid tenant id, never overload.
    ///
    /// # Examples
    ///
    /// Two tenants submit the same job; each profiles and stores its own
    /// first sighting because their store namespaces are disjoint:
    ///
    /// ```
    /// use pstorm::service::{ServiceConfig, ServiceOutcome, TuningService};
    /// use pstorm::{ProfileStore, SubmissionOutcome};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let svc = TuningService::new(
    ///     ProfileStore::new()?,
    ///     mrsim::ClusterSpec::ec2_c1_medium_16(),
    ///     ServiceConfig::default(),
    /// );
    /// let spec = mrjobs::jobs::word_count();
    /// let ds = datagen::corpus::random_text_1g();
    ///
    /// let acme = svc.submit("acme", &spec, &ds, 1)?;
    /// let zen = svc.submit("zen", &spec, &ds, 1)?;
    /// for ticket in [acme, zen] {
    ///     match ticket.wait() {
    ///         ServiceOutcome::Served(report) => assert!(matches!(
    ///             report.outcome,
    ///             SubmissionOutcome::ProfiledAndStored { .. }
    ///         )),
    ///         other => panic!("expected a served submission, got {other:?}"),
    ///     }
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn submit(
        &self,
        tenant: &str,
        spec: &JobSpec,
        dataset: &Dataset,
        seed: u64,
    ) -> Result<Ticket, ProfileStoreError> {
        self.submit_with_faults(tenant, spec, dataset, seed, None)
    }

    /// [`Self::submit`] with a per-request fault override — the chaos
    /// tests' hook for making one tenant's cluster hostile without
    /// touching anyone else's.
    pub fn submit_with_faults(
        &self,
        tenant: &str,
        spec: &JobSpec,
        dataset: &Dataset,
        seed: u64,
        faults: Option<FaultSpec>,
    ) -> Result<Ticket, ProfileStoreError> {
        cfstore::encoding::validate_tenant(tenant).map_err(ProfileStoreError::Codec)?;
        let inner = &self.inner;
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            rx,
            tenant: tenant.to_string(),
            job_id: spec.job_id(),
        };

        let accepted = {
            let mut sched = inner.sched.lock().unwrap();
            let shutdown = sched.shutdown;
            let tq = sched
                .queues
                .entry(tenant.to_string())
                .or_insert_with(|| TenantQueue {
                    items: VecDeque::new(),
                    active: false,
                });
            if shutdown || tq.items.len() >= inner.cfg.queue_depth {
                false
            } else {
                tq.items.push_back(Request {
                    tenant: tenant.to_string(),
                    spec: spec.clone(),
                    dataset: dataset.clone(),
                    seed,
                    faults,
                    reply: tx.clone(),
                });
                let wake = !tq.active;
                tq.active = true;
                sched.queued += 1;
                if wake {
                    sched.ready.push_back(tenant.to_string());
                    inner.work_cv.notify_one();
                }
                let depth = sched.queued as f64;
                inner.obs.set_gauge("service.queue.depth", depth);
                inner.obs.max_gauge("service.queue.peak_depth", depth);
                true
            }
        };

        if accepted {
            inner.obs.incr("service.queue.enqueued", 1);
            return Ok(ticket);
        }

        // Queue full (or shutting down): shed on the caller's thread.
        // The job still runs — straight down the ladder, against the
        // service cluster, outside the tenant pipeline — and resolves as
        // Degraded, so overload is never an error.
        inner.obs.incr("service.queue.shed", 1);
        inner.obs.incr(&format!("tenant.{tenant}.shed"), 1);
        let submitted = mrsim::JobConfig::submitted(spec);
        let outcome = match run_degradation_ladder(
            &inner.cluster,
            &inner.cfg.policy,
            &obs::Registry::disabled(),
            spec,
            dataset,
            &submitted,
            None,
            seed,
        ) {
            Ok((config, run, rung)) => ServiceOutcome::Served(SubmissionReport {
                job_id: spec.job_id(),
                outcome: SubmissionOutcome::Degraded {
                    config,
                    reason: format!("request queue full; shed without tuning; {rung}"),
                },
                run,
                sampling_ms: 0.0,
            }),
            Err(error) => ServiceOutcome::Failed {
                job_id: spec.job_id(),
                error,
            },
        };
        let _ = tx.send(outcome);
        Ok(ticket)
    }

    /// Block until every queued submission has been processed and all
    /// workers are idle. Tickets resolved before `quiesce` returns.
    pub fn quiesce(&self) {
        let mut sched = self.inner.sched.lock().unwrap();
        while sched.queued > 0 || sched.in_flight > 0 {
            sched = self.inner.idle_cv.wait(sched).unwrap();
        }
    }

    /// A tenant's dead-letter queue, oldest first.
    pub fn dead_letters(&self, tenant: &str) -> Vec<DeadLetter> {
        let tenants = self.inner.tenants.lock().unwrap();
        match tenants.get(tenant) {
            Some(state) => state.dlq.lock().unwrap().1.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// A fresh read view of a tenant's namespace in the backing store
    /// (for inspection; the service keeps using its own views).
    pub fn store_view(&self, tenant: &str) -> Result<ProfileStore, ProfileStoreError> {
        self.inner.base.tenant_view(tenant)
    }

    /// The registry service metrics are recorded into.
    pub fn obs(&self) -> &obs::Registry {
        &self.inner.obs
    }

    /// Flush the backing store (bounds WAL replay on durable backends).
    pub fn flush(&self) -> Result<(), ProfileStoreError> {
        self.inner.base.flush()
    }

    /// Run a full topology change on the shared sharded backend while
    /// the service keeps serving (DESIGN.md §15). Tenant submissions
    /// interleave freely with the migration: each `reshard_step` holds
    /// the store's global lock only as long as one batch would, and
    /// reads stay on the old placement until the journaled cutover.
    /// Errors on single-store backends.
    pub fn reshard(
        &self,
        plan: cfstore::Reshard,
    ) -> Result<cfstore::ReshardStatus, ProfileStoreError> {
        self.inner.base.reshard(plan)
    }

    /// The in-flight migration on the backing store, if any.
    pub fn reshard_status(&self) -> Option<cfstore::ReshardStatus> {
        self.inner.base.reshard_status()
    }
}

impl Drop for TuningService {
    /// Graceful shutdown: stop accepting, drain everything already
    /// queued (every ticket resolves), then join the workers.
    fn drop(&mut self) {
        {
            let mut sched = self.inner.sched.lock().unwrap();
            sched.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let req = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if let Some(tenant) = sched.ready.pop_front() {
                    let tq = sched.queues.get_mut(&tenant).expect("ready tenant queued");
                    let req = tq.items.pop_front().expect("ready tenant has work");
                    sched.queued -= 1;
                    sched.in_flight += 1;
                    inner
                        .obs
                        .set_gauge("service.queue.depth", sched.queued as f64);
                    // The tenant stays `active` (claimed) until this
                    // request finishes — its later submissions wait.
                    break req;
                }
                if sched.shutdown {
                    return;
                }
                sched = inner.work_cv.wait(sched).unwrap();
            }
        };

        let tenant = req.tenant.clone();
        process(inner, req);

        let mut sched = inner.sched.lock().unwrap();
        sched.in_flight -= 1;
        let tq = sched
            .queues
            .get_mut(&tenant)
            .expect("processed tenant queued");
        if tq.items.is_empty() {
            tq.active = false;
        } else {
            sched.ready.push_back(tenant);
            inner.work_cv.notify_one();
        }
        if sched.queued == 0 && sched.in_flight == 0 {
            inner.idle_cv.notify_all();
        }
    }
}

fn tenant_state(inner: &Inner, tenant: &str) -> Arc<TenantState> {
    let mut tenants = inner.tenants.lock().unwrap();
    if let Some(state) = tenants.get(tenant) {
        return Arc::clone(state);
    }
    let view = inner
        .base
        .tenant_view(tenant)
        .expect("tenant id validated at submit");
    let mut daemon = PStorM::with_store(view, inner.cluster.clone());
    daemon.matcher = inner.cfg.matcher;
    daemon.cbo = inner.cfg.cbo.clone();
    daemon.policy = inner.cfg.policy;
    daemon.set_obs(inner.obs.clone());
    let state = Arc::new(TenantState {
        daemon: Mutex::new(daemon),
        breaker: Mutex::new(Breaker::Closed { failures: 0 }),
        dlq: Mutex::new((0, VecDeque::new())),
    });
    tenants.insert(tenant.to_string(), Arc::clone(&state));
    inner.obs.set_gauge("service.tenants", tenants.len() as f64);
    state
}

fn dead_letter(inner: &Inner, state: &TenantState, tenant: &str, req: &Request, reason: &str) {
    let mut dlq = state.dlq.lock().unwrap();
    let seq = dlq.0;
    dlq.0 += 1;
    dlq.1.push_back(DeadLetter {
        seq,
        job_id: req.spec.job_id(),
        seed: req.seed,
        reason: reason.to_string(),
    });
    if dlq.1.len() > inner.cfg.dlq_capacity {
        dlq.1.pop_front();
        inner.obs.incr(&format!("tenant.{tenant}.dlq.dropped"), 1);
    }
    inner
        .obs
        .set_gauge(&format!("tenant.{tenant}.dlq.depth"), dlq.1.len() as f64);
    inner.obs.incr(&format!("tenant.{tenant}.dlq.enqueued"), 1);
}

/// Process one claimed request: breaker gate → admission → run.
fn process(inner: &Inner, req: Request) {
    let tenant = req.tenant.clone();
    let state = tenant_state(inner, &tenant);
    inner.obs.incr(&format!("tenant.{tenant}.submissions"), 1);

    // Circuit breaker: while open, fast-fail without touching the
    // cluster or consuming admission permits.
    let half_open_trial = {
        let mut breaker = state.breaker.lock().unwrap();
        match *breaker {
            Breaker::Open { remaining } => {
                *breaker = if remaining <= 1 {
                    Breaker::HalfOpen
                } else {
                    Breaker::Open {
                        remaining: remaining - 1,
                    }
                };
                inner
                    .obs
                    .incr(&format!("tenant.{tenant}.breaker.fast_fail"), 1);
                dead_letter(inner, &state, &tenant, &req, "circuit breaker open");
                inner.obs.incr(&format!("tenant.{tenant}.rejected"), 1);
                let _ = req.reply.send(ServiceOutcome::Rejected {
                    job_id: req.spec.job_id(),
                    reason: "circuit breaker open; submission dead-lettered".to_string(),
                });
                return;
            }
            Breaker::HalfOpen => true,
            Breaker::Closed { .. } => false,
        }
    };

    // Admission: a full tuning pipeline needs one task permit and its
    // memory charge. Either one exhausted → shed through the tenant's
    // own daemon (still serialized with its other submissions).
    let mem = inner.cfg.submission_memory_bytes;
    let admitted = inner.tasks.try_acquire(1) && {
        if inner.memory.try_acquire(mem) {
            true
        } else {
            inner.tasks.release(1);
            false
        }
    };
    inner.obs.set_gauge(
        "service.admission.tasks_in_flight",
        inner.tasks.in_use() as f64,
    );
    inner.obs.set_gauge(
        "service.admission.memory_in_use",
        inner.memory.in_use() as f64,
    );

    let result = {
        let mut daemon = state.daemon.lock().unwrap();
        daemon.cluster.faults = req
            .faults
            .clone()
            .unwrap_or_else(|| inner.cluster.faults.clone());
        if admitted {
            daemon.submit(&req.spec, &req.dataset, req.seed)
        } else {
            inner.obs.incr("service.admission.shed", 1);
            inner.obs.incr(&format!("tenant.{tenant}.shed"), 1);
            daemon.submit_untuned(
                &req.spec,
                &req.dataset,
                req.seed,
                "admission control: no free tuning slot; shed under overload",
            )
        }
    };
    if admitted {
        inner.tasks.release(1);
        inner.memory.release(mem);
        inner.obs.set_gauge(
            "service.admission.tasks_in_flight",
            inner.tasks.in_use() as f64,
        );
        inner.obs.set_gauge(
            "service.admission.memory_in_use",
            inner.memory.in_use() as f64,
        );
    }

    let outcome = match result {
        Ok(report) => {
            {
                let mut breaker = state.breaker.lock().unwrap();
                if half_open_trial {
                    inner
                        .obs
                        .incr(&format!("tenant.{tenant}.breaker.closed"), 1);
                }
                *breaker = Breaker::Closed { failures: 0 };
            }
            let label = match &report.outcome {
                SubmissionOutcome::Tuned { .. } => "tuned",
                SubmissionOutcome::ProfiledAndStored { .. } => "profiled",
                SubmissionOutcome::Degraded { .. } => "degraded",
            };
            inner.obs.incr(&format!("tenant.{tenant}.{label}"), 1);
            ServiceOutcome::Served(report)
        }
        Err(error) => {
            let tripped = {
                let mut breaker = state.breaker.lock().unwrap();
                let failures = match *breaker {
                    Breaker::Closed { failures } => failures + 1,
                    // A failed half-open trial re-opens immediately.
                    Breaker::HalfOpen => inner.cfg.breaker_max_failures.max(1),
                    Breaker::Open { .. } => unreachable!("open breakers fast-fail above"),
                };
                if failures >= inner.cfg.breaker_max_failures.max(1) {
                    *breaker = Breaker::Open {
                        remaining: inner.cfg.breaker_cooldown.max(1),
                    };
                    true
                } else {
                    *breaker = Breaker::Closed { failures };
                    false
                }
            };
            if tripped {
                inner.obs.incr(&format!("tenant.{tenant}.breaker.trips"), 1);
                inner.obs.event(
                    "service.breaker.open",
                    &[
                        ("tenant", tenant.as_str().into()),
                        ("cooldown", inner.cfg.breaker_cooldown.into()),
                    ],
                );
            }
            inner.obs.incr(&format!("tenant.{tenant}.failed"), 1);
            dead_letter(inner, &state, &tenant, &req, &error.to_string());
            ServiceOutcome::Failed {
                job_id: req.spec.job_id(),
                error,
            }
        }
    };
    let _ = req.reply.send(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use optimizer::CboOptions;

    fn small_service(cfg: ServiceConfig) -> TuningService {
        TuningService::with_obs(
            ProfileStore::new().unwrap(),
            ClusterSpec::ec2_c1_medium_16(),
            cfg,
            obs::Registry::new(),
        )
    }

    fn counter(svc: &TuningService, name: &str) -> u64 {
        *svc.obs().snapshot().counters.get(name).unwrap_or(&0)
    }

    #[test]
    fn tenants_profile_and_tune_independently() {
        let svc = small_service(ServiceConfig::default());
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();

        // Both tenants' first submissions profile-and-store; their second
        // submissions tune — against their own stored profile.
        for round in 0..2u64 {
            let tickets: Vec<Ticket> = ["acme", "zen"]
                .iter()
                .map(|t| svc.submit(t, &spec, &ds, round + 1).unwrap())
                .collect();
            for ticket in tickets {
                match ticket.wait() {
                    ServiceOutcome::Served(report) => match (round, report.outcome) {
                        (0, SubmissionOutcome::ProfiledAndStored { .. }) => {}
                        (1, SubmissionOutcome::Tuned { .. }) => {}
                        (r, other) => panic!("round {r}: unexpected outcome {other:?}"),
                    },
                    other => panic!("expected served, got {other:?}"),
                }
            }
        }
        svc.quiesce();
        assert_eq!(svc.store_view("acme").unwrap().len().unwrap(), 1);
        assert_eq!(svc.store_view("zen").unwrap().len().unwrap(), 1);
        assert_eq!(counter(&svc, "tenant.acme.tuned"), 1);
        assert_eq!(counter(&svc, "tenant.zen.profiled"), 1);
    }

    #[test]
    fn per_tenant_submissions_resolve_in_fifo_order() {
        let svc = small_service(ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        });
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        // First submission must profile, the rest must tune — which can
        // only happen if the tenant's queue is processed strictly FIFO
        // even with multiple workers available.
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| svc.submit("acme", &spec, &ds, 10 + i).unwrap())
            .collect();
        let outcomes: Vec<ServiceOutcome> = tickets.into_iter().map(Ticket::wait).collect();
        match &outcomes[0] {
            ServiceOutcome::Served(r) => {
                assert!(matches!(
                    r.outcome,
                    SubmissionOutcome::ProfiledAndStored { .. }
                ))
            }
            other => panic!("first submission: {other:?}"),
        }
        for o in &outcomes[1..] {
            match o {
                ServiceOutcome::Served(r) => {
                    assert!(matches!(r.outcome, SubmissionOutcome::Tuned { .. }))
                }
                other => panic!("later submission: {other:?}"),
            }
        }
    }

    #[test]
    fn overload_sheds_as_degraded_never_errors() {
        // One worker, one tuning slot, a 2-deep queue: flooding it must
        // resolve every ticket as Served (some Degraded via shedding),
        // never Failed/panic.
        let svc = small_service(ServiceConfig {
            workers: 1,
            queue_depth: 2,
            max_in_flight: 1,
            ..ServiceConfig::default()
        });
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| svc.submit("flood", &spec, &ds, 100 + i).unwrap())
            .collect();
        let mut degraded = 0;
        for ticket in tickets {
            match ticket.wait() {
                ServiceOutcome::Served(report) => {
                    if matches!(report.outcome, SubmissionOutcome::Degraded { .. }) {
                        degraded += 1;
                    }
                }
                other => panic!("overload must never error: {other:?}"),
            }
        }
        assert!(degraded > 0, "expected queue-full shedding");
        assert!(counter(&svc, "service.queue.shed") > 0);
        let snap = svc.obs().snapshot();
        assert!(snap.gauges.contains_key("service.queue.depth"));
        assert!(snap.gauges["service.queue.peak_depth"] >= 1.0);
    }

    #[test]
    fn memory_exhaustion_sheds_through_the_ladder() {
        // Tasks are plentiful but the memory budget fits nothing: every
        // submission sheds through the tenant's daemon (admission shed,
        // not queue shed) and still serves.
        let svc = small_service(ServiceConfig {
            workers: 2,
            memory_budget_bytes: 1,
            ..ServiceConfig::default()
        });
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        let t = svc.submit("acme", &spec, &ds, 7).unwrap();
        match t.wait() {
            ServiceOutcome::Served(report) => match report.outcome {
                SubmissionOutcome::Degraded { ref reason, .. } => {
                    assert!(reason.contains("admission control"), "{reason}")
                }
                other => panic!("expected degraded, got {other:?}"),
            },
            other => panic!("expected served, got {other:?}"),
        }
        assert_eq!(counter(&svc, "service.admission.shed"), 1);
        // Nothing was stored: the shed path skips the feedback loop.
        assert_eq!(svc.store_view("acme").unwrap().len().unwrap(), 0);
    }

    #[test]
    fn breaker_trips_dead_letters_and_recovers() {
        let hostile = FaultSpec {
            node_loss_prob: 1.0,
            ..FaultSpec::default()
        };
        let mut cfg = ServiceConfig {
            workers: 2,
            breaker_max_failures: 2,
            breaker_cooldown: 3,
            dlq_capacity: 8,
            ..ServiceConfig::default()
        };
        cfg.queue_depth = 64;
        let svc = small_service(cfg);
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();

        // Two hard failures trip the breaker…
        for seed in 0..2 {
            match svc
                .submit_with_faults("bad", &spec, &ds, seed, Some(hostile.clone()))
                .unwrap()
                .wait()
            {
                ServiceOutcome::Failed { .. } => {}
                other => panic!("hostile tenant should fail hard: {other:?}"),
            }
        }
        // …the next `cooldown` submissions are rejected fast…
        for seed in 2..5 {
            match svc.submit("bad", &spec, &ds, seed).unwrap().wait() {
                ServiceOutcome::Rejected { reason, .. } => {
                    assert!(reason.contains("circuit breaker"), "{reason}")
                }
                other => panic!("expected fast rejection, got {other:?}"),
            }
        }
        // …and a healthy half-open trial closes it again.
        match svc.submit("bad", &spec, &ds, 50).unwrap().wait() {
            ServiceOutcome::Served(_) => {}
            other => panic!("half-open trial should serve: {other:?}"),
        }
        // Meanwhile a healthy tenant was never affected.
        match svc.submit("good", &spec, &ds, 1).unwrap().wait() {
            ServiceOutcome::Served(_) => {}
            other => panic!("healthy tenant must serve: {other:?}"),
        }

        let dlq = svc.dead_letters("bad");
        assert_eq!(dlq.len(), 5, "2 failures + 3 fast-fails: {dlq:?}");
        assert!(dlq.iter().any(|d| d.reason.contains("circuit breaker")));
        assert!(svc.dead_letters("good").is_empty());
        assert_eq!(counter(&svc, "tenant.bad.breaker.trips"), 1);
        assert_eq!(counter(&svc, "tenant.bad.breaker.fast_fail"), 3);
        assert_eq!(counter(&svc, "tenant.bad.breaker.closed"), 1);
        assert_eq!(counter(&svc, "tenant.good.failed"), 0);
    }

    #[test]
    fn dlq_is_bounded_and_drops_oldest() {
        let hostile = FaultSpec {
            node_loss_prob: 1.0,
            ..FaultSpec::default()
        };
        let svc = small_service(ServiceConfig {
            workers: 1,
            breaker_max_failures: u32::MAX, // never trip: every failure dead-letters via the error path
            dlq_capacity: 2,
            ..ServiceConfig::default()
        });
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        for seed in 0..4 {
            let _ = svc
                .submit_with_faults("bad", &spec, &ds, seed, Some(hostile.clone()))
                .unwrap()
                .wait();
        }
        let dlq = svc.dead_letters("bad");
        assert_eq!(dlq.len(), 2);
        assert_eq!(dlq[0].seq, 2, "oldest entries dropped: {dlq:?}");
        assert_eq!(counter(&svc, "tenant.bad.dlq.dropped"), 2);
    }

    #[test]
    fn invalid_tenant_is_a_typed_error() {
        let svc = small_service(ServiceConfig::default());
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        assert!(matches!(
            svc.submit("no/slash", &spec, &ds, 1),
            Err(ProfileStoreError::Codec(_))
        ));
    }

    #[test]
    fn service_outcomes_match_a_solo_daemon_bit_for_bit() {
        // The single-tenant equivalence check: a tenant's outcomes under
        // the concurrent service equal a solo PStorM run on its own
        // store, including the predicted runtime's exact bits.
        let spec = jobs::word_cooccurrence_pairs(2);
        let ds = corpus::random_text_1g();

        let solo = PStorM::new().unwrap();
        let s1 = solo.submit(&spec, &ds, 1).unwrap();
        let s2 = solo.submit(&spec, &ds, 2).unwrap();

        let svc = small_service(ServiceConfig::default());
        // A noisy neighbour runs concurrently the whole time.
        let noise: Vec<Ticket> = (0..3)
            .map(|i| {
                svc.submit("noisy", &jobs::sort(), &corpus::teragen_1g(), i)
                    .unwrap()
            })
            .collect();
        let v1 = svc.submit("quiet", &spec, &ds, 1).unwrap().wait();
        let v2 = svc.submit("quiet", &spec, &ds, 2).unwrap().wait();
        for t in noise {
            let _ = t.wait();
        }

        let (ServiceOutcome::Served(r1), ServiceOutcome::Served(r2)) = (v1, v2) else {
            panic!("quiet tenant must serve");
        };
        assert!(matches!(
            r1.outcome,
            SubmissionOutcome::ProfiledAndStored { .. }
        ));
        assert_eq!(r1.run.runtime_ms.to_bits(), s1.run.runtime_ms.to_bits());
        match (&r2.outcome, &s2.outcome) {
            (
                SubmissionOutcome::Tuned {
                    matched: m_svc,
                    predicted_ms: p_svc,
                    tuned_config: c_svc,
                },
                SubmissionOutcome::Tuned {
                    matched: m_solo,
                    predicted_ms: p_solo,
                    tuned_config: c_solo,
                },
            ) => {
                assert_eq!(m_svc.map.source_job, m_solo.map.source_job);
                assert_eq!(p_svc.to_bits(), p_solo.to_bits());
                assert_eq!(c_svc, c_solo);
            }
            other => panic!("expected tuned on both paths: {other:?}"),
        }
        assert_eq!(r2.run.runtime_ms.to_bits(), s2.run.runtime_ms.to_bits());
    }

    #[test]
    fn cbo_options_reachable_through_default_daemon() {
        // Guard: tenant daemons are built with default CboOptions; this
        // pins the assumption the equivalence test above relies on.
        let solo = PStorM::new().unwrap();
        let d = CboOptions::default();
        assert_eq!(solo.cbo.budget, d.budget);
        assert_eq!(solo.cbo.rounds, d.rounds);
    }
}
