//! Future-work extensions from Chapter 7 of the thesis, implemented as
//! optional features:
//!
//! * **§7.2.1 — job parameters as static features**: two submissions of
//!   the same code with different user parameters (co-occurrence window,
//!   grep pattern) have identical Table 4.3 features but different
//!   dynamic behaviour. [`statics_with_params`] appends the parameters to
//!   the static feature vector, letting the static stages distinguish
//!   them.
//! * **§7.2.3 — using profiles across clusters**: profiles collected on
//!   one cluster embed that cluster's cost factors.
//!   [`transfer_profile`] rescales the IO/CPU cost factors by the ratio
//!   of the two clusters' base rates, the "initial step" the thesis
//!   sketches for PStorM-as-a-service.

use mrjobs::JobSpec;
use mrsim::ClusterSpec;
use profiler::{CostFactors, JobProfile};
use staticanalysis::StaticFeatures;

/// Extract static features with the user-provided job parameters appended
/// to the map-side categorical vector (§7.2.1). Parameter names and
/// values become `PARAM:<name>` features; two parameterizations of the
/// same job then differ statically.
pub fn statics_with_params(spec: &JobSpec) -> StaticFeatures {
    let mut statics = StaticFeatures::extract(spec);
    for (name, value) in &spec.params {
        // The categorical schema must stay positionally comparable, so
        // parameters are appended in BTreeMap (sorted) order; jobs without
        // a parameter of that name will simply mismatch on the pair —
        // which is the intended discrimination.
        statics
            .map
            .categorical
            .push((leak_param_name(name), value.to_string()));
    }
    statics
}

/// Parameter-name labels live for the process lifetime; there is a small
/// closed set of them (one per distinct user parameter name).
fn leak_param_name(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = set.lock().expect("intern lock");
    let label = format!("PARAM:{name}");
    if let Some(existing) = set.iter().find(|s| **s == label) {
        existing
    } else {
        let leaked: &'static str = Box::leak(label.into_boxed_str());
        set.insert(leaked);
        leaked
    }
}

/// Rescale a profile's cost factors from the cluster it was collected on
/// to a target cluster (§7.2.3). Dataflow statistics are hardware
/// independent and transfer unchanged; IO/network/CPU cost factors are
/// multiplied by the ratio of the target cluster's base rates to the
/// source cluster's.
pub fn transfer_profile(
    profile: &JobProfile,
    source: &ClusterSpec,
    target: &ClusterSpec,
) -> JobProfile {
    let scale = |pick: fn(&mrsim::CostRates) -> f64| -> f64 {
        let s = pick(&source.rates);
        if s > 0.0 {
            pick(&target.rates) / s
        } else {
            1.0
        }
    };
    let adjust = |cf: &CostFactors| CostFactors {
        read_hdfs_io_cost: cf.read_hdfs_io_cost * scale(|r| r.read_hdfs_ns_per_byte),
        write_hdfs_io_cost: cf.write_hdfs_io_cost * scale(|r| r.write_hdfs_ns_per_byte),
        read_local_io_cost: cf.read_local_io_cost * scale(|r| r.read_local_ns_per_byte),
        write_local_io_cost: cf.write_local_io_cost * scale(|r| r.write_local_ns_per_byte),
        network_cost: cf.network_cost * scale(|r| r.network_ns_per_byte),
        map_cpu_cost: cf.map_cpu_cost * scale(|r| r.cpu_ns_per_op),
        reduce_cpu_cost: cf.reduce_cpu_cost * scale(|r| r.cpu_ns_per_op),
        combine_cpu_cost: cf.combine_cpu_cost * scale(|r| r.cpu_ns_per_op),
    };
    let mut out = profile.clone();
    out.map.cost_factors = adjust(&profile.map.cost_factors);
    if let Some(red) = &mut out.reduce {
        red.cost_factors = adjust(&red.cost_factors);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{CostRates, JobConfig};
    use profiler::collect_full_profile;
    use whatif::{predict_runtime_ms, WhatIfQuery};

    #[test]
    fn params_distinguish_window_sizes() {
        let w2 = statics_with_params(&jobs::word_cooccurrence_pairs(2));
        let w3 = statics_with_params(&jobs::word_cooccurrence_pairs(3));
        assert!(
            w2.map.jaccard(&w3.map) < 1.0,
            "windows must differ statically"
        );
        let w2b = statics_with_params(&jobs::word_cooccurrence_pairs(2));
        assert_eq!(w2.map.jaccard(&w2b.map), 1.0);
    }

    #[test]
    fn params_extension_is_backward_compatible_for_paramless_jobs() {
        let plain = StaticFeatures::extract(&jobs::word_count());
        let with = statics_with_params(&jobs::word_count());
        assert_eq!(plain.map.categorical, with.map.categorical);
    }

    #[test]
    fn grep_patterns_become_distinguishable() {
        let a = statics_with_params(&jobs::grep("foo"));
        let b = statics_with_params(&jobs::grep("bar"));
        // Without the extension these are statically identical (§7.2.1).
        assert_eq!(
            StaticFeatures::extract(&jobs::grep("foo"))
                .map
                .jaccard(&StaticFeatures::extract(&jobs::grep("bar")).map),
            1.0
        );
        assert!(a.map.jaccard(&b.map) < 1.0);
    }

    #[test]
    fn transferred_profiles_predict_on_the_target_cluster() {
        let slow = ClusterSpec::ec2_c1_medium_16();
        // A cluster with 2x faster disks and network.
        let mut fast = ClusterSpec::ec2_c1_medium_16();
        fast.rates = CostRates {
            read_hdfs_ns_per_byte: slow.rates.read_hdfs_ns_per_byte / 2.0,
            write_hdfs_ns_per_byte: slow.rates.write_hdfs_ns_per_byte / 2.0,
            read_local_ns_per_byte: slow.rates.read_local_ns_per_byte / 2.0,
            write_local_ns_per_byte: slow.rates.write_local_ns_per_byte / 2.0,
            network_ns_per_byte: slow.rates.network_ns_per_byte / 2.0,
            ..slow.rates
        };
        let ds = corpus::wikipedia_1g();
        let spec = jobs::word_count();
        let (profile, _) =
            collect_full_profile(&spec, &ds, &slow, &JobConfig::submitted(&spec), 3).unwrap();
        let transferred = transfer_profile(&profile, &slow, &fast);
        // IO cost factors halved; CPU unchanged.
        assert!(
            (transferred.map.cost_factors.read_hdfs_io_cost
                - profile.map.cost_factors.read_hdfs_io_cost / 2.0)
                .abs()
                < 1e-9
        );
        assert_eq!(
            transferred.map.cost_factors.map_cpu_cost,
            profile.map.cost_factors.map_cpu_cost
        );
        // The WIF predicts a faster run on the faster cluster.
        let predict = |p: &JobProfile, cl: &ClusterSpec| {
            predict_runtime_ms(&WhatIfQuery {
                spec: &spec,
                profile: p,
                input_bytes: ds.logical_bytes,
                cluster: cl,
                config: &JobConfig::submitted(&spec),
            })
            .unwrap()
        };
        assert!(predict(&transferred, &fast) < predict(&profile, &slow));
    }
}
