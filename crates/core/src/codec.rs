//! Binary codec for profiles and CFGs stored as HBase cell values.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use cfstore::encoding::CodecError;
use mrsim::{MapPhase, ReducePhase};
use profiler::{CostFactors, JobProfile, MapProfile, ReduceProfile};
use staticanalysis::{Cfg, Node, NodeKind};

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err(CodecError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| CodecError::BadUtf8)?;
    let out = s.to_string();
    buf.advance(len);
    Ok(out)
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_f64())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

fn put_opt_f64(b: &mut BytesMut, v: Option<f64>) {
    match v {
        Some(x) => {
            b.put_u8(1);
            b.put_f64(x);
        }
        None => b.put_u8(0),
    }
}

fn get_opt_f64(buf: &mut &[u8]) -> Result<Option<f64>, CodecError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_f64(buf)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_cost_factors(b: &mut BytesMut, cf: &CostFactors) {
    for v in cf.as_vec() {
        b.put_f64(v);
    }
}

fn get_cost_factors(buf: &mut &[u8]) -> Result<CostFactors, CodecError> {
    Ok(CostFactors {
        read_hdfs_io_cost: get_f64(buf)?,
        write_hdfs_io_cost: get_f64(buf)?,
        read_local_io_cost: get_f64(buf)?,
        write_local_io_cost: get_f64(buf)?,
        network_cost: get_f64(buf)?,
        map_cpu_cost: get_f64(buf)?,
        reduce_cpu_cost: get_f64(buf)?,
        combine_cpu_cost: get_f64(buf)?,
    })
}

fn map_phase_tag(p: MapPhase) -> u8 {
    match p {
        MapPhase::Setup => 0,
        MapPhase::Read => 1,
        MapPhase::Map => 2,
        MapPhase::Collect => 3,
        MapPhase::Spill => 4,
        MapPhase::Merge => 5,
    }
}

fn map_phase_from(t: u8) -> Result<MapPhase, CodecError> {
    Ok(match t {
        0 => MapPhase::Setup,
        1 => MapPhase::Read,
        2 => MapPhase::Map,
        3 => MapPhase::Collect,
        4 => MapPhase::Spill,
        5 => MapPhase::Merge,
        other => return Err(CodecError::BadTag(other)),
    })
}

fn reduce_phase_tag(p: ReducePhase) -> u8 {
    match p {
        ReducePhase::Setup => 0,
        ReducePhase::Shuffle => 1,
        ReducePhase::Sort => 2,
        ReducePhase::Reduce => 3,
        ReducePhase::Write => 4,
    }
}

fn reduce_phase_from(t: u8) -> Result<ReducePhase, CodecError> {
    Ok(match t {
        0 => ReducePhase::Setup,
        1 => ReducePhase::Shuffle,
        2 => ReducePhase::Sort,
        3 => ReducePhase::Reduce,
        4 => ReducePhase::Write,
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Encode a full job profile into a cell value.
pub fn encode_profile(p: &JobProfile) -> Bytes {
    let mut b = BytesMut::with_capacity(512);
    put_str(&mut b, &p.job_id);
    put_str(&mut b, &p.dataset);
    b.put_f64(p.input_bytes);
    b.put_u32(p.num_map_tasks);
    b.put_f64(p.confidence);
    encode_map_profile(&mut b, &p.map);
    match &p.reduce {
        Some(r) => {
            b.put_u8(1);
            encode_reduce_profile(&mut b, r);
        }
        None => b.put_u8(0),
    }
    b.freeze()
}

fn encode_map_profile(b: &mut BytesMut, m: &MapProfile) {
    put_str(b, &m.source_job);
    put_str(b, &m.dataset);
    b.put_f64(m.input_bytes_total);
    b.put_f64(m.input_bytes_per_task);
    b.put_f64(m.input_records_per_task);
    b.put_f64(m.avg_input_record_bytes);
    b.put_f64(m.avg_intermediate_record_bytes);
    b.put_f64(m.size_selectivity);
    b.put_f64(m.pairs_selectivity);
    put_opt_f64(b, m.combine_size_selectivity);
    put_opt_f64(b, m.combine_pairs_selectivity);
    b.put_f64(m.map_ops_per_record);
    put_opt_f64(b, m.combine_ops_per_record);
    put_opt_f64(b, m.combine_ref_records);
    put_opt_f64(b, m.intermediate_key_alpha);
    put_cost_factors(b, &m.cost_factors);
    b.put_u32(m.phase_ms.len() as u32);
    for (p, ms) in &m.phase_ms {
        b.put_u8(map_phase_tag(*p));
        b.put_f64(*ms);
    }
    b.put_u32(m.tasks_observed);
}

fn encode_reduce_profile(b: &mut BytesMut, r: &ReduceProfile) {
    put_str(b, &r.source_job);
    put_str(b, &r.dataset);
    b.put_f64(r.in_records);
    b.put_f64(r.in_bytes);
    b.put_f64(r.out_records);
    b.put_f64(r.out_bytes);
    b.put_f64(r.size_selectivity);
    b.put_f64(r.pairs_selectivity);
    b.put_f64(r.reduce_ops_per_record);
    put_cost_factors(b, &r.cost_factors);
    b.put_u32(r.phase_ms.len() as u32);
    for (p, ms) in &r.phase_ms {
        b.put_u8(reduce_phase_tag(*p));
        b.put_f64(*ms);
    }
    b.put_u32(r.tasks_observed);
}

/// Decode a job profile from a cell value.
pub fn decode_profile(bytes: &[u8]) -> Result<JobProfile, CodecError> {
    let mut buf = bytes;
    let job_id = get_str(&mut buf)?;
    let dataset = get_str(&mut buf)?;
    let input_bytes = get_f64(&mut buf)?;
    let num_map_tasks = get_u32(&mut buf)?;
    let confidence = get_f64(&mut buf)?;
    let map = decode_map_profile(&mut buf)?;
    let reduce = match get_u8(&mut buf)? {
        0 => None,
        1 => Some(decode_reduce_profile(&mut buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(JobProfile {
        job_id,
        dataset,
        input_bytes,
        num_map_tasks,
        confidence,
        map,
        reduce,
    })
}

fn decode_map_profile(buf: &mut &[u8]) -> Result<MapProfile, CodecError> {
    Ok(MapProfile {
        source_job: get_str(buf)?,
        dataset: get_str(buf)?,
        input_bytes_total: get_f64(buf)?,
        input_bytes_per_task: get_f64(buf)?,
        input_records_per_task: get_f64(buf)?,
        avg_input_record_bytes: get_f64(buf)?,
        avg_intermediate_record_bytes: get_f64(buf)?,
        size_selectivity: get_f64(buf)?,
        pairs_selectivity: get_f64(buf)?,
        combine_size_selectivity: get_opt_f64(buf)?,
        combine_pairs_selectivity: get_opt_f64(buf)?,
        map_ops_per_record: get_f64(buf)?,
        combine_ops_per_record: get_opt_f64(buf)?,
        combine_ref_records: get_opt_f64(buf)?,
        intermediate_key_alpha: get_opt_f64(buf)?,
        cost_factors: get_cost_factors(buf)?,
        phase_ms: {
            let n = get_u32(buf)? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = get_u8(buf)?;
                let ms = get_f64(buf)?;
                v.push((map_phase_from(tag)?, ms));
            }
            v
        },
        tasks_observed: get_u32(buf)?,
    })
}

fn decode_reduce_profile(buf: &mut &[u8]) -> Result<ReduceProfile, CodecError> {
    Ok(ReduceProfile {
        source_job: get_str(buf)?,
        dataset: get_str(buf)?,
        in_records: get_f64(buf)?,
        in_bytes: get_f64(buf)?,
        out_records: get_f64(buf)?,
        out_bytes: get_f64(buf)?,
        size_selectivity: get_f64(buf)?,
        pairs_selectivity: get_f64(buf)?,
        reduce_ops_per_record: get_f64(buf)?,
        cost_factors: get_cost_factors(buf)?,
        phase_ms: {
            let n = get_u32(buf)? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = get_u8(buf)?;
                let ms = get_f64(buf)?;
                v.push((reduce_phase_from(tag)?, ms));
            }
            v
        },
        tasks_observed: get_u32(buf)?,
    })
}

/// Encode a CFG (vertex kinds + successor lists) into a cell value.
pub fn encode_cfg(cfg: &Cfg) -> Bytes {
    let mut b = BytesMut::with_capacity(cfg.nodes.len() * 8);
    b.put_u32(cfg.nodes.len() as u32);
    for node in &cfg.nodes {
        let (tag, emits) = match node.kind {
            NodeKind::Entry => (0u8, false),
            NodeKind::Basic { emits } => (1, emits),
            NodeKind::Branch => (2, false),
            NodeKind::LoopHeader => (3, false),
            NodeKind::Exit => (4, false),
        };
        b.put_u8(tag);
        b.put_u8(emits as u8);
        b.put_u32(node.succ.len() as u32);
        for &s in &node.succ {
            b.put_u32(s as u32);
        }
    }
    b.put_u32(cfg.exit as u32);
    b.put_u32(cfg.max_loop_depth() as u32);
    b.freeze()
}

/// Decode a CFG from a cell value.
pub fn decode_cfg(bytes: &[u8]) -> Result<Cfg, CodecError> {
    let mut buf = bytes;
    let n = get_u32(&mut buf)? as usize;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = get_u8(&mut buf)?;
        let emits = get_u8(&mut buf)? != 0;
        let kind = match tag {
            0 => NodeKind::Entry,
            1 => NodeKind::Basic { emits },
            2 => NodeKind::Branch,
            3 => NodeKind::LoopHeader,
            4 => NodeKind::Exit,
            other => return Err(CodecError::BadTag(other)),
        };
        let n_succ = get_u32(&mut buf)? as usize;
        let mut succ = Vec::with_capacity(n_succ);
        for _ in 0..n_succ {
            succ.push(get_u32(&mut buf)? as usize);
        }
        nodes.push(Node { kind, succ });
    }
    let exit = get_u32(&mut buf)? as usize;
    let max_loop_depth = get_u32(&mut buf)? as usize;
    Cfg::from_parts(nodes, exit, max_loop_depth).ok_or(CodecError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{ClusterSpec, JobConfig};
    use profiler::collect_full_profile;

    #[test]
    fn profile_roundtrip() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (profile, _) = collect_full_profile(
            &spec,
            &ds,
            &ClusterSpec::ec2_c1_medium_16(),
            &JobConfig::default(),
            1,
        )
        .unwrap();
        let enc = encode_profile(&profile);
        let dec = decode_profile(&enc).unwrap();
        assert_eq!(dec, profile);
    }

    #[test]
    fn map_only_profile_roundtrip() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let (mut profile, _) = collect_full_profile(
            &spec,
            &ds,
            &ClusterSpec::ec2_c1_medium_16(),
            &JobConfig::default(),
            1,
        )
        .unwrap();
        profile.reduce = None;
        let dec = decode_profile(&encode_profile(&profile)).unwrap();
        assert!(dec.reduce.is_none());
        assert_eq!(dec, profile);
    }

    #[test]
    fn cfg_roundtrip_preserves_matching() {
        for spec in jobs::standard_suite() {
            let cfg = Cfg::from_udf(&spec.map_udf);
            let dec = decode_cfg(&encode_cfg(&cfg)).unwrap();
            assert!(dec.matches(&cfg), "{}", spec.name);
            assert_eq!(dec.node_count(), cfg.node_count());
        }
    }

    #[test]
    fn truncated_profile_errors() {
        let ds = corpus::random_text_1g();
        let (profile, _) = collect_full_profile(
            &jobs::word_count(),
            &ds,
            &ClusterSpec::ec2_c1_medium_16(),
            &JobConfig::default(),
            1,
        )
        .unwrap();
        let enc = encode_profile(&profile);
        assert!(decode_profile(&enc[..enc.len() / 2]).is_err());
    }
}
