//! # pstorm — Profile Storage and Matching for feedback-based MapReduce tuning
//!
//! The paper's contribution: a profile **store** that organizes execution
//! profiles in an extensible column-family data model (Chapter 5), and a
//! profile **matcher** that serves accurate profiles even for previously
//! unseen jobs via multi-stage filtering and map/reduce profile
//! composition (Chapter 4). The [`daemon`] module wires both into the
//! Chapter-3 workflow: sample one map task → match → tune with the
//! Starfish-style CBO, or profile-and-store on a miss.
//!
//! * [`store`] — the Table 5.1 HBase data model over [`cfstore`], with
//!   pushdown filtering and min/max normalization maintenance.
//! * [`matcher`] — the Fig. 4.4 multi-stage matching workflow.
//! * [`daemon`] — the end-to-end PStorM daemon.
//! * [`service`] — the concurrent multi-tenant front-end over the
//!   daemon: bounded queue, admission control, per-tenant circuit
//!   breakers (DESIGN.md §14).
//! * [`codec`] — cell-value encodings for profiles and CFGs.
//!
//! Every subsystem records spans, counters, and events into a shared
//! deterministic [`obs::Registry`] when one is installed via
//! [`PStorM::set_obs`] (off by default); see DESIGN.md §10 and the
//! `trace_report` binary for the rendered per-submission span tree.

pub mod altmodels;
pub mod codec;
pub mod daemon;
pub mod explain;
pub mod extensions;
pub mod matcher;
pub mod service;
pub mod store;
pub mod workflow;

pub use altmodels::{OpenTsdbModel, PrefixModel, ProfileLayout, TwoTableModel};
pub use cfstore::{Reshard, ReshardPhase, ReshardStatus};
pub use daemon::{DaemonError, PStorM, SubmissionOutcome, SubmissionReport};
pub use explain::{explain, Explanation};
pub use extensions::{statics_with_params, transfer_profile};
pub use matcher::{
    match_profile, MatchFailure, MatchResult, MatcherConfig, Side, SideMatch, SubmittedJob,
};
pub use service::{DeadLetter, ServiceConfig, ServiceOutcome, Ticket, TuningService};
pub use store::{
    ColumnarIndex, DynamicRow, NormalizationBounds, ProfileStore, ProfileStoreError, StoredStatics,
};
pub use workflow::{ChainReport, ChainStage};
