//! The alternative store data models of §5.2, for comparison benches.
//!
//! * [`PrefixModel`] — the adopted Table 5.1 design: one table, row keys
//!   `<feature-type>/<job-id>`.
//! * [`OpenTsdbModel`] — §5.2.1: row keys `<feature>/<ts>/JobID=<job>`;
//!   data points of one *feature* are collocated but a job's feature
//!   *vector* is scattered, so assembling vectors for matching touches
//!   many more rows and regions.
//! * [`TwoTableModel`] — §5.2.2: one table per feature type; equivalent
//!   locality but more tables/regions (more region-server Store objects).
//!
//! All three expose the same two operations the matcher needs — insert a
//! job's features, and assemble all dynamic feature vectors — plus the
//! scan metrics that quantify the locality argument.

use bytes::Bytes;

use cfstore::encoding::{decode_f64, encode_f64};
use cfstore::{MiniStore, Put, Scan, ScanMetrics};

use crate::store::MAP_DYNAMIC_COLUMNS;

/// The operations the §5.2 comparison exercises.
pub trait ProfileLayout {
    fn name(&self) -> &'static str;
    /// Insert a job's map-side dynamic features.
    fn insert(&self, job_id: &str, map_dyn: &[f64]);
    /// Assemble every stored job's dynamic feature vector (what matching
    /// stage 1 reads); returns vectors and the scan metrics spent.
    fn fetch_all_dynamic(&self) -> (Vec<(String, Vec<f64>)>, ScanMetrics);
    /// Number of backing tables (the §5.2.2 store-object argument).
    fn table_count(&self) -> usize;
    /// Total regions across tables.
    fn region_count(&self) -> usize;
}

/// The adopted PStorM model.
pub struct PrefixModel {
    store: MiniStore,
}

impl PrefixModel {
    pub fn new(split_threshold: usize) -> Self {
        let store = MiniStore::new();
        store
            .create_table_with_threshold("Jobs", &["f"], split_threshold)
            .unwrap();
        PrefixModel { store }
    }
}

impl ProfileLayout for PrefixModel {
    fn name(&self) -> &'static str {
        "prefix (Table 5.1)"
    }

    fn insert(&self, job_id: &str, map_dyn: &[f64]) {
        for (col, v) in MAP_DYNAMIC_COLUMNS.iter().zip(map_dyn) {
            self.store
                .put(
                    "Jobs",
                    Put::new(
                        Bytes::from(format!("Dynamic/{job_id}")),
                        "f",
                        Bytes::copy_from_slice(col.as_bytes()),
                        encode_f64(*v),
                    ),
                )
                .unwrap();
        }
    }

    fn fetch_all_dynamic(&self) -> (Vec<(String, Vec<f64>)>, ScanMetrics) {
        let (rows, metrics) = self.store.scan("Jobs", &Scan::prefix(b"Dynamic/")).unwrap();
        let out = rows
            .iter()
            .map(|r| {
                let id = String::from_utf8_lossy(&r.row["Dynamic/".len()..]).to_string();
                let v = MAP_DYNAMIC_COLUMNS
                    .iter()
                    .map(|c| decode_f64(r.value("f", c.as_bytes()).unwrap()).unwrap())
                    .collect();
                (id, v)
            })
            .collect();
        (out, metrics)
    }

    fn table_count(&self) -> usize {
        1
    }

    fn region_count(&self) -> usize {
        self.store.region_count("Jobs").unwrap()
    }
}

/// The OpenTSDB-style model: one row per (feature, job).
pub struct OpenTsdbModel {
    store: MiniStore,
}

impl OpenTsdbModel {
    pub fn new(split_threshold: usize) -> Self {
        let store = MiniStore::new();
        store
            .create_table_with_threshold("tsdb", &["t"], split_threshold)
            .unwrap();
        OpenTsdbModel { store }
    }
}

impl ProfileLayout for OpenTsdbModel {
    fn name(&self) -> &'static str {
        "OpenTSDB-style (§5.2.1)"
    }

    fn insert(&self, job_id: &str, map_dyn: &[f64]) {
        for (col, v) in MAP_DYNAMIC_COLUMNS.iter().zip(map_dyn) {
            // <metric>/<base-timestamp>/JobID=<job>; a fixed timestamp
            // bucket suffices for the layout comparison.
            self.store
                .put(
                    "tsdb",
                    Put::new(
                        Bytes::from(format!("{col}/0/JobID={job_id}")),
                        "t",
                        "v",
                        encode_f64(*v),
                    ),
                )
                .unwrap();
        }
    }

    fn fetch_all_dynamic(&self) -> (Vec<(String, Vec<f64>)>, ScanMetrics) {
        // One range scan per feature; vectors must be zipped back together
        // on the client — the poor-locality pattern §5.2.1 describes.
        let mut metrics = ScanMetrics::default();
        let mut by_job: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for col in MAP_DYNAMIC_COLUMNS {
            let (rows, m) = self
                .store
                .scan("tsdb", &Scan::prefix(format!("{col}/").as_bytes()))
                .unwrap();
            metrics.merge(m);
            for r in rows {
                let key = String::from_utf8_lossy(&r.row).to_string();
                let job = key.split("JobID=").nth(1).unwrap_or("").to_string();
                by_job
                    .entry(job)
                    .or_default()
                    .push(decode_f64(r.value("t", b"v").unwrap()).unwrap());
            }
        }
        (by_job.into_iter().collect(), metrics)
    }

    fn table_count(&self) -> usize {
        1
    }

    fn region_count(&self) -> usize {
        self.store.region_count("tsdb").unwrap()
    }
}

/// One table per feature type (§5.2.2).
pub struct TwoTableModel {
    store: MiniStore,
}

impl TwoTableModel {
    pub fn new(split_threshold: usize) -> Self {
        let store = MiniStore::new();
        store
            .create_table_with_threshold("Jobs_Static", &["f"], split_threshold)
            .unwrap();
        store
            .create_table_with_threshold("Jobs_Dynamic", &["f"], split_threshold)
            .unwrap();
        TwoTableModel { store }
    }
}

impl ProfileLayout for TwoTableModel {
    fn name(&self) -> &'static str {
        "table-per-type (§5.2.2)"
    }

    fn insert(&self, job_id: &str, map_dyn: &[f64]) {
        for (col, v) in MAP_DYNAMIC_COLUMNS.iter().zip(map_dyn) {
            self.store
                .put(
                    "Jobs_Dynamic",
                    Put::new(
                        Bytes::copy_from_slice(job_id.as_bytes()),
                        "f",
                        Bytes::copy_from_slice(col.as_bytes()),
                        encode_f64(*v),
                    ),
                )
                .unwrap();
        }
        // The static table exists (and costs region-server memory) even
        // when this particular access path never reads it.
        self.store
            .put(
                "Jobs_Static",
                Put::new(
                    Bytes::copy_from_slice(job_id.as_bytes()),
                    "f",
                    "MAPPER",
                    Bytes::from(format!("{job_id}-mapper")),
                ),
            )
            .unwrap();
    }

    fn fetch_all_dynamic(&self) -> (Vec<(String, Vec<f64>)>, ScanMetrics) {
        let (rows, metrics) = self.store.scan("Jobs_Dynamic", &Scan::all()).unwrap();
        let out = rows
            .iter()
            .map(|r| {
                let id = String::from_utf8_lossy(&r.row).to_string();
                let v = MAP_DYNAMIC_COLUMNS
                    .iter()
                    .map(|c| decode_f64(r.value("f", c.as_bytes()).unwrap()).unwrap())
                    .collect();
                (id, v)
            })
            .collect();
        (out, metrics)
    }

    fn table_count(&self) -> usize {
        2
    }

    fn region_count(&self) -> usize {
        self.store.region_count("Jobs_Static").unwrap()
            + self.store.region_count("Jobs_Dynamic").unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(layout: &dyn ProfileLayout, jobs: usize) {
        for j in 0..jobs {
            let v: Vec<f64> = (0..MAP_DYNAMIC_COLUMNS.len())
                .map(|k| (j * 10 + k) as f64)
                .collect();
            layout.insert(&format!("job{j:04}"), &v);
        }
    }

    #[test]
    fn all_layouts_return_the_same_vectors() {
        let prefix = PrefixModel::new(64);
        let tsdb = OpenTsdbModel::new(64);
        let two = TwoTableModel::new(64);
        for layout in [&prefix as &dyn ProfileLayout, &tsdb, &two] {
            fill(layout, 20);
            let (rows, _) = layout.fetch_all_dynamic();
            assert_eq!(rows.len(), 20, "{}", layout.name());
            assert_eq!(rows[0].1.len(), MAP_DYNAMIC_COLUMNS.len());
        }
    }

    #[test]
    fn tsdb_layout_scans_more_rows_than_prefix() {
        let prefix = PrefixModel::new(64);
        let tsdb = OpenTsdbModel::new(64);
        fill(&prefix, 50);
        fill(&tsdb, 50);
        let (_, mp) = prefix.fetch_all_dynamic();
        let (_, mt) = tsdb.fetch_all_dynamic();
        assert!(
            mt.rows_scanned >= mp.rows_scanned * MAP_DYNAMIC_COLUMNS.len() as u64,
            "tsdb {} vs prefix {}",
            mt.rows_scanned,
            mp.rows_scanned
        );
    }

    #[test]
    fn two_table_layout_doubles_store_objects() {
        let prefix = PrefixModel::new(64);
        let two = TwoTableModel::new(64);
        fill(&prefix, 10);
        fill(&two, 10);
        assert_eq!(prefix.table_count(), 1);
        assert_eq!(two.table_count(), 2);
        assert!(two.region_count() >= prefix.region_count());
    }
}
