//! The PStorM daemon: the end-to-end workflow of Chapter 3.
//!
//! For every submitted job:
//! 1. run **one** sampled map task (plus reducers over its output) with the
//!    profiler on, building the dynamic feature vector;
//! 2. probe the profile store with the multi-stage matcher;
//! 3. on a match, hand the profile to the Starfish CBO and run the job
//!    with the recommended configuration, profiler **off**;
//! 4. on *No Match Found*, run the job with its submitted configuration
//!    and the profiler **on**, and store the collected profile for future
//!    submissions.

use mrjobs::{Dataset, JobSpec};
use mrsim::{simulate, ClusterSpec, JobConfig, JobReport, SimError};
use optimizer::{optimize, CboOptions};
use profiler::{collect_full_profile, collect_sample_profile, JobProfile, SampleSize};
use staticanalysis::StaticFeatures;

use crate::matcher::{match_profile, MatchFailure, MatchResult, MatcherConfig, SubmittedJob};
use crate::store::{ProfileStore, ProfileStoreError};

/// Errors surfaced by the daemon.
#[derive(Debug)]
pub enum DaemonError {
    Store(ProfileStoreError),
    Sim(SimError),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Store(e) => write!(f, "store: {e}"),
            DaemonError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}
impl std::error::Error for DaemonError {}
impl From<ProfileStoreError> for DaemonError {
    fn from(e: ProfileStoreError) -> Self {
        DaemonError::Store(e)
    }
}
impl From<SimError> for DaemonError {
    fn from(e: SimError) -> Self {
        DaemonError::Sim(e)
    }
}

/// How a submission was served.
#[derive(Debug)]
pub enum SubmissionOutcome {
    /// A matching profile was found; the job ran with CBO-tuned settings.
    Tuned {
        matched: MatchResult,
        tuned_config: JobConfig,
        predicted_ms: f64,
    },
    /// No match; the job ran with its submitted configuration while being
    /// profiled, and the collected profile was stored.
    ProfiledAndStored { failure: MatchFailure },
}

/// The full record of one submission.
#[derive(Debug)]
pub struct SubmissionReport {
    pub job_id: String,
    pub outcome: SubmissionOutcome,
    /// The production run of the job.
    pub run: JobReport,
    /// Virtual time spent collecting the 1-task sample.
    pub sampling_ms: f64,
}

/// The PStorM daemon.
pub struct PStorM {
    pub store: ProfileStore,
    pub cluster: ClusterSpec,
    pub matcher: MatcherConfig,
    pub cbo: CboOptions,
}

impl PStorM {
    /// A daemon on the paper's cluster with default thresholds.
    pub fn new() -> Result<Self, ProfileStoreError> {
        Ok(PStorM {
            store: ProfileStore::new()?,
            cluster: ClusterSpec::ec2_c1_medium_16(),
            matcher: MatcherConfig::default(),
            cbo: CboOptions::default(),
        })
    }

    /// Pre-load a full profile (e.g. from a prior profiling run).
    pub fn load_profile(
        &self,
        statics: &StaticFeatures,
        profile: &JobProfile,
    ) -> Result<(), ProfileStoreError> {
        self.store.put_profile(statics, profile)
    }

    /// Handle one job submission end to end.
    pub fn submit(
        &self,
        spec: &JobSpec,
        dataset: &Dataset,
        seed: u64,
    ) -> Result<SubmissionReport, DaemonError> {
        let submitted_config = JobConfig::submitted(spec);

        // Step 1: the 1-task probe.
        let sample = collect_sample_profile(
            spec,
            dataset,
            &self.cluster,
            &submitted_config,
            SampleSize::OneTask,
            seed,
        )?;
        let q = SubmittedJob {
            spec: spec.clone(),
            statics: StaticFeatures::extract(spec),
            sample: sample.profile,
            input_bytes: dataset.logical_bytes,
        };

        // Step 2: probe the store.
        match match_profile(&self.store, &q, &self.matcher)? {
            Ok(matched) => {
                // Step 3: CBO with the matched profile; run tuned.
                let rec = optimize(
                    spec,
                    &matched.profile,
                    dataset.logical_bytes,
                    &self.cluster,
                    &self.cbo,
                )?;
                let run = simulate(spec, dataset, &self.cluster, &rec.config, seed ^ 0x47)?;
                Ok(SubmissionReport {
                    job_id: spec.job_id(),
                    outcome: SubmissionOutcome::Tuned {
                        matched,
                        tuned_config: rec.config,
                        predicted_ms: rec.predicted_ms,
                    },
                    run,
                    sampling_ms: sample.runtime_ms,
                })
            }
            Err(failure) => {
                // Step 4: run with profiling on; store the profile.
                let (profile, run) = collect_full_profile(
                    spec,
                    dataset,
                    &self.cluster,
                    &submitted_config,
                    seed ^ 0x48,
                )?;
                self.store.put_profile(&q.statics, &profile)?;
                Ok(SubmissionReport {
                    job_id: spec.job_id(),
                    outcome: SubmissionOutcome::ProfiledAndStored { failure },
                    run,
                    sampling_ms: sample.runtime_ms,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;

    #[test]
    fn first_submission_profiles_second_submission_tunes() {
        let daemon = PStorM::new().unwrap();
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);

        let first = daemon.submit(&spec, &ds, 1).unwrap();
        assert!(matches!(
            first.outcome,
            SubmissionOutcome::ProfiledAndStored { .. }
        ));
        assert_eq!(daemon.store.len().unwrap(), 1);

        let second = daemon.submit(&spec, &ds, 2).unwrap();
        match &second.outcome {
            SubmissionOutcome::Tuned { matched, .. } => {
                assert_eq!(matched.map.source_job, spec.job_id());
            }
            other => panic!("expected tuned run, got {other:?}"),
        }
        // The tuned run should be much faster than the profiled default run.
        assert!(
            second.run.runtime_ms < first.run.runtime_ms / 2.0,
            "tuned {} vs default {}",
            second.run.runtime_ms,
            first.run.runtime_ms
        );
    }

    #[test]
    fn sampling_cost_is_small() {
        let daemon = PStorM::new().unwrap();
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        let report = daemon.submit(&spec, &ds, 1).unwrap();
        assert!(
            report.sampling_ms < report.run.runtime_ms / 4.0,
            "sampling {} vs run {}",
            report.sampling_ms,
            report.run.runtime_ms
        );
    }
}
