//! The PStorM daemon: the end-to-end workflow of Chapter 3.
//!
//! For every submitted job:
//! 1. run **one** sampled map task (plus reducers over its output) with the
//!    profiler on, building the dynamic feature vector;
//! 2. probe the profile store with the multi-stage matcher;
//! 3. on a match, hand the profile to the Starfish CBO and run the job
//!    with the recommended configuration, profiler **off**;
//! 4. on *No Match Found*, run the job with its submitted configuration
//!    and the profiler **on**, and store the collected profile for future
//!    submissions.
//!
//! On a faulty cluster ([`mrsim::FaultSpec`]) the daemon degrades
//! gracefully instead of surfacing raw fault errors: the sampling probe is
//! retried with capped exponential backoff (simulated time), failed tuned
//! runs fall back to the rule-based optimizer's settings, then to the
//! submitted configuration, and a last-resort rung re-runs with lenient
//! task attempt caps — every rung reported through
//! [`SubmissionOutcome::Degraded`].
//!
//! A `PStorM` serves one caller at a time per tenant; the concurrent,
//! multi-tenant front-end over many daemons is
//! [`crate::service::TuningService`] (DESIGN.md §14).

use std::path::Path;

use cfstore::{RecoveryReport, StoreError};
use mrjobs::{Dataset, JobSpec};
use mrsim::{simulate, ClusterSpec, JobConfig, JobReport, SimError};
use optimizer::{optimize_traced, recommend, CboOptions};
use profiler::{collect_full_profile, collect_sample_profile, JobProfile, SampleSize};
use staticanalysis::StaticFeatures;

use crate::matcher::{match_profile, MatchFailure, MatchResult, MatcherConfig, SubmittedJob};
use crate::store::{ProfileStore, ProfileStoreError};

/// Deterministic virtual cost of replaying one WAL record during
/// recovery (charged to the obs clock, like every other simulated cost).
const RECOVERY_MS_PER_RECORD: f64 = 0.002;
/// Deterministic virtual cost of loading + checksum-verifying one
/// segment file.
const RECOVERY_MS_PER_SEGMENT: f64 = 0.05;

/// Errors surfaced by the daemon.
#[derive(Debug)]
pub enum DaemonError {
    Store(ProfileStoreError),
    Sim(SimError),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Context only; the full cause chain stays reachable through
        // `Error::source()` instead of being flattened into this string.
        match self {
            DaemonError::Store(e) => write!(f, "profile store operation failed: {e}"),
            DaemonError::Sim(e) => write!(f, "job simulation failed: {e}"),
        }
    }
}
impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Store(e) => Some(e),
            DaemonError::Sim(e) => Some(e),
        }
    }
}
impl From<ProfileStoreError> for DaemonError {
    fn from(e: ProfileStoreError) -> Self {
        DaemonError::Store(e)
    }
}
impl From<SimError> for DaemonError {
    fn from(e: SimError) -> Self {
        DaemonError::Sim(e)
    }
}

/// The daemon's degradation ladder settings (all retries and backoff are
/// in *simulated* time — the discrete-event clock, not wall clock).
#[derive(Debug, Clone, Copy)]
pub struct DegradationPolicy {
    /// Extra tries of the 1-task sampling probe after the first failure.
    pub sample_retries: u32,
    /// Simulated backoff before sampling retry `i`:
    /// `backoff_base_ms * 2^i`, charged to the submission's sampling cost.
    pub backoff_base_ms: f64,
    /// Extra seeds tried when a production run dies to an injected fault
    /// before the ladder moves to its next rung.
    pub run_retries: u32,
    /// Task attempt caps used by the last-resort rung: generous enough
    /// that only a pathologically hostile cluster still fails.
    pub lenient_attempt_cap: u32,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            sample_retries: 3,
            backoff_base_ms: 1_000.0,
            run_retries: 2,
            lenient_attempt_cap: 30,
        }
    }
}

/// How a submission was served.
// One value per submission; the size spread between variants is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SubmissionOutcome {
    /// A matching profile was found; the job ran with CBO-tuned settings.
    Tuned {
        matched: MatchResult,
        tuned_config: JobConfig,
        predicted_ms: f64,
    },
    /// No match; the job ran with its submitted configuration while being
    /// profiled, and the collected profile was stored.
    ProfiledAndStored { failure: MatchFailure },
    /// Cluster faults forced the daemon down its degradation ladder; the
    /// job still ran (see [`SubmissionReport::run`]) with `config`, but
    /// without the full tune-from-matched-profile path.
    Degraded {
        /// The configuration the production run finally used.
        config: JobConfig,
        /// Human-readable account of which rung served the run and why.
        reason: String,
    },
}

/// The full record of one submission.
#[derive(Debug)]
pub struct SubmissionReport {
    pub job_id: String,
    pub outcome: SubmissionOutcome,
    /// The production run of the job.
    pub run: JobReport,
    /// Virtual time spent collecting the 1-task sample.
    pub sampling_ms: f64,
}

/// The PStorM daemon.
pub struct PStorM {
    pub store: ProfileStore,
    pub cluster: ClusterSpec,
    pub matcher: MatcherConfig,
    pub cbo: CboOptions,
    pub policy: DegradationPolicy,
    /// Observability registry; disabled by default. Use
    /// [`PStorM::set_obs`] so the store shares the same trace.
    obs: obs::Registry,
}

/// Seed used for retry `i` of a fault-killed run. The simulator is fully
/// deterministic per seed, so re-running with the *same* seed would hit
/// the exact same injected faults; each retry must move to a fresh chaos
/// stream.
fn retry_seed(base: u64, i: u32) -> u64 {
    base.wrapping_add(u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl PStorM {
    /// A daemon on the paper's cluster with default thresholds.
    pub fn new() -> Result<Self, ProfileStoreError> {
        Ok(Self::with_store(
            ProfileStore::new()?,
            ClusterSpec::ec2_c1_medium_16(),
        ))
    }

    /// A daemon over an existing store (e.g. a
    /// [`ProfileStore::tenant_view`]) and cluster, with default matcher,
    /// CBO, and degradation settings. The public fields can be adjusted
    /// afterwards.
    pub fn with_store(store: ProfileStore, cluster: ClusterSpec) -> Self {
        PStorM {
            store,
            cluster,
            matcher: MatcherConfig::default(),
            cbo: CboOptions::default(),
            policy: DegradationPolicy::default(),
            obs: obs::Registry::disabled(),
        }
    }

    /// Start a daemon over a durable store directory, running crash
    /// recovery first. A torn WAL tail (the fingerprint of a crash) is
    /// truncated and reported, not an error — see the returned
    /// [`RecoveryReport`].
    pub fn reopen(dir: &Path) -> Result<(Self, RecoveryReport), ProfileStoreError> {
        Self::reopen_traced(dir, obs::Registry::disabled())
    }

    /// [`Self::reopen`] recording `recovery.*` counters, events, and a
    /// `recovery.reopen` span into `reg`, and attaching `reg` to the
    /// daemon. Recovery's virtual time is a deterministic function of the
    /// replayed work (per-record and per-segment constants), so
    /// fixed-seed traces stay byte-identical across machines
    /// (DESIGN.md §11).
    pub fn reopen_traced(
        dir: &Path,
        reg: obs::Registry,
    ) -> Result<(Self, RecoveryReport), ProfileStoreError> {
        let (mut store, report) = {
            let span = reg.span("recovery.reopen");
            let (store, report) = ProfileStore::reopen(dir)?;
            let virtual_ms = report.records_replayed as f64 * RECOVERY_MS_PER_RECORD
                + report.segments_loaded as f64 * RECOVERY_MS_PER_SEGMENT;
            reg.advance_ms(virtual_ms);
            reg.incr("recovery.segments_loaded", report.segments_loaded);
            reg.incr("recovery.frames_replayed", report.frames_replayed);
            reg.incr("recovery.records_replayed", report.records_replayed);
            reg.incr("recovery.wal_bytes_valid", report.wal_bytes_valid);
            reg.incr("recovery.wal_bytes_truncated", report.wal_bytes_dropped);
            if let Some(t) = &report.truncation {
                reg.event(
                    "recovery.truncated",
                    &[
                        ("reason", t.to_string().into()),
                        ("offset", t.offset().into()),
                    ],
                );
            }
            span.attr("records_replayed", report.records_replayed);
            span.attr("segments_loaded", report.segments_loaded);
            span.attr("wal_bytes_truncated", report.wal_bytes_dropped);
            span.attr("recovery_ms", virtual_ms);
            (store, report)
        };
        store.set_obs(reg.clone());
        Ok((
            PStorM {
                store,
                cluster: ClusterSpec::ec2_c1_medium_16(),
                matcher: MatcherConfig::default(),
                cbo: CboOptions::default(),
                policy: DegradationPolicy::default(),
                obs: reg,
            },
            report,
        ))
    }

    /// Record every subsystem — daemon lifecycle, profile store, matcher,
    /// CBO search, and simulated runs — into clones of `reg`, producing
    /// one coherent per-submission trace on the simulator's virtual clock
    /// (DESIGN.md §10). Pass [`obs::Registry::disabled`] to turn tracing
    /// back off.
    pub fn set_obs(&mut self, reg: obs::Registry) {
        self.store.set_obs(reg.clone());
        self.obs = reg;
    }

    /// The registry submissions are recorded into.
    pub fn obs(&self) -> &obs::Registry {
        &self.obs
    }

    /// Run a full topology change on a sharded backing store while the
    /// daemon keeps serving (DESIGN.md §15). Errors on single-store
    /// backends — open with [`ProfileStore::reopen_sharded`] first.
    pub fn reshard(
        &self,
        plan: cfstore::Reshard,
    ) -> Result<cfstore::ReshardStatus, ProfileStoreError> {
        self.store.reshard(plan)
    }

    /// Pre-load a full profile (e.g. from a prior profiling run).
    pub fn load_profile(
        &self,
        statics: &StaticFeatures,
        profile: &JobProfile,
    ) -> Result<(), ProfileStoreError> {
        self.store.put_profile(statics, profile)
    }

    /// Handle one job submission end to end.
    ///
    /// On a faulty cluster this never leaks a raw fault error while any
    /// degradation rung can still serve the job; only deterministic
    /// failures (bad config, UDF bugs, OOM under the user's own settings)
    /// and pathologically hostile clusters return `Err`.
    ///
    /// # Examples
    ///
    /// The first sighting of a job profiles and stores it; resubmitting
    /// the same job matches the stored profile and runs CBO-tuned:
    ///
    /// ```
    /// use pstorm::daemon::{PStorM, SubmissionOutcome};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let daemon = PStorM::new()?;
    /// let spec = mrjobs::jobs::word_count();
    /// let ds = datagen::corpus::random_text_1g();
    ///
    /// let first = daemon.submit(&spec, &ds, 1)?;
    /// assert!(matches!(
    ///     first.outcome,
    ///     SubmissionOutcome::ProfiledAndStored { .. }
    /// ));
    ///
    /// let second = daemon.submit(&spec, &ds, 2)?;
    /// assert!(matches!(second.outcome, SubmissionOutcome::Tuned { .. }));
    /// # Ok(())
    /// # }
    /// ```
    pub fn submit(
        &self,
        spec: &JobSpec,
        dataset: &Dataset,
        seed: u64,
    ) -> Result<SubmissionReport, DaemonError> {
        let reg = self.obs.clone();
        let span = reg.span("daemon.submit");
        span.attr("job_id", spec.job_id());
        span.attr("dataset", dataset.name.as_str());
        span.attr("seed", seed);
        let submitted_config = JobConfig::submitted(spec);

        // Step 1: the 1-task probe, retried with capped exponential
        // backoff (simulated time) when an injected fault kills it.
        let mut sampling_ms = 0.0;
        let mut sample = None;
        let mut sample_fault: Option<SimError> = None;
        {
            let sample_span = reg.span("daemon.sample");
            let mut attempts = 0u32;
            for i in 0..=self.policy.sample_retries {
                attempts = i + 1;
                if i > 0 {
                    let backoff = self.policy.backoff_base_ms * f64::from(1u32 << (i - 1).min(16));
                    sampling_ms += backoff;
                    reg.event(
                        "daemon.sample.retry",
                        &[("attempt", i.into()), ("backoff_ms", backoff.into())],
                    );
                    reg.advance_ms(backoff);
                }
                match collect_sample_profile(
                    spec,
                    dataset,
                    &self.cluster,
                    &submitted_config,
                    SampleSize::OneTask,
                    retry_seed(seed, i),
                ) {
                    Ok(s) => {
                        sampling_ms += s.runtime_ms;
                        reg.advance_ms(s.runtime_ms);
                        sample = Some(s);
                        break;
                    }
                    Err(e) if e.is_fault() => sample_fault = Some(e),
                    Err(e) => return Err(e.into()),
                }
            }
            sample_span.attr("attempts", attempts);
            sample_span.attr("sampling_ms", sampling_ms);
            sample_span.attr("ok", sample.is_some());
        }
        let Some(sample) = sample else {
            // Rung 1 exhausted: no dynamic features, so matching is off
            // the table. Run the job anyway, un-tuned.
            let fault = sample_fault.expect("sampling loop ran at least once");
            let (config, run, rung) =
                self.degraded_production_run(spec, dataset, &submitted_config, None, seed)?;
            reg.incr("daemon.degraded", 1);
            span.attr("outcome", "degraded");
            return Ok(SubmissionReport {
                job_id: spec.job_id(),
                outcome: SubmissionOutcome::Degraded {
                    config,
                    reason: format!(
                        "sampling probe failed {} times (last: {fault}); skipped matching; {rung}",
                        self.policy.sample_retries + 1
                    ),
                },
                run,
                sampling_ms,
            });
        };
        let q = SubmittedJob {
            spec: spec.clone(),
            statics: StaticFeatures::extract(spec),
            sample: sample.profile,
            input_bytes: dataset.logical_bytes,
        };

        // Step 2: probe the store.
        match match_profile(&self.store, &q, &self.matcher)? {
            Ok(matched) => {
                // Step 3: CBO with the matched profile; run tuned.
                let rec = optimize_traced(
                    spec,
                    &matched.profile,
                    dataset.logical_bytes,
                    &self.cluster,
                    &self.cbo,
                    &reg,
                )?;
                match simulate(spec, dataset, &self.cluster, &rec.config, seed ^ 0x47) {
                    Ok(run) => {
                        mrsim::trace::record_report(&reg, &run);
                        reg.incr("daemon.tuned", 1);
                        span.attr("outcome", "tuned");
                        Ok(SubmissionReport {
                            job_id: spec.job_id(),
                            outcome: SubmissionOutcome::Tuned {
                                matched,
                                tuned_config: rec.config,
                                predicted_ms: rec.predicted_ms,
                            },
                            run,
                            sampling_ms,
                        })
                    }
                    Err(e) if e.is_fault() || matches!(e, SimError::OutOfMemory { .. }) => {
                        // The tuned run died. OOM here means the CBO's
                        // settings (not the user's) were too aggressive
                        // for this profile, so it also falls down the
                        // ladder rather than failing the submission.
                        let (config, run, rung) = self.degraded_production_run(
                            spec,
                            dataset,
                            &submitted_config,
                            Some(&rec.config),
                            seed,
                        )?;
                        reg.incr("daemon.degraded", 1);
                        span.attr("outcome", "degraded");
                        Ok(SubmissionReport {
                            job_id: spec.job_id(),
                            outcome: SubmissionOutcome::Degraded {
                                config,
                                reason: format!("tuned run failed ({e}); {rung}"),
                            },
                            run,
                            sampling_ms,
                        })
                    }
                    Err(e) => Err(e.into()),
                }
            }
            Err(failure) => {
                // Step 4: run with profiling on; store the profile. A
                // faulted-but-finished run is still stored — just with
                // partial confidence, which the matcher compensates for.
                let mut profiled = None;
                let mut last_fault: Option<SimError> = None;
                for i in 0..=self.policy.run_retries {
                    match collect_full_profile(
                        spec,
                        dataset,
                        &self.cluster,
                        &submitted_config,
                        retry_seed(seed ^ 0x48, i),
                    ) {
                        Ok(pr) => {
                            profiled = Some(pr);
                            break;
                        }
                        Err(e) if e.is_fault() => {
                            reg.event(
                                "daemon.profile.retry",
                                &[("attempt", i.into()), ("fault", e.to_string().into())],
                            );
                            last_fault = Some(e);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                match profiled {
                    Some((profile, run)) => {
                        mrsim::trace::record_report(&reg, &run);
                        match self.store.put_profile(&q.statics, &profile) {
                            Ok(()) => {
                                reg.incr("daemon.profiled", 1);
                                span.attr("outcome", "profiled_and_stored");
                                Ok(SubmissionReport {
                                    job_id: spec.job_id(),
                                    outcome: SubmissionOutcome::ProfiledAndStored { failure },
                                    run,
                                    sampling_ms,
                                })
                            }
                            // A crashed/unreachable store must not fail a
                            // job that already ran to completion: serve the
                            // run, report the lost persistence as a
                            // degradation. Matching keeps working from the
                            // in-memory state; the profile is re-collected
                            // on the next submission after a reopen.
                            Err(ProfileStoreError::Store(
                                e @ (StoreError::Crashed | StoreError::Io(_)),
                            )) => {
                                reg.incr("daemon.degraded", 1);
                                reg.event(
                                    "daemon.store_unavailable",
                                    &[("error", e.to_string().into())],
                                );
                                span.attr("outcome", "degraded");
                                Ok(SubmissionReport {
                                    job_id: spec.job_id(),
                                    outcome: SubmissionOutcome::Degraded {
                                        config: submitted_config.clone(),
                                        reason: format!(
                                            "job served, but the profile store rejected the \
                                             collected profile ({e}); nothing persisted"
                                        ),
                                    },
                                    run,
                                    sampling_ms,
                                })
                            }
                            Err(e) => Err(e.into()),
                        }
                    }
                    None => {
                        // Profiling kept faulting: serve the job without
                        // storing a (nonexistent) profile.
                        let fault = last_fault.expect("profiling loop ran at least once");
                        let (config, run, rung) = self.degraded_production_run(
                            spec,
                            dataset,
                            &submitted_config,
                            None,
                            seed,
                        )?;
                        reg.incr("daemon.degraded", 1);
                        span.attr("outcome", "degraded");
                        Ok(SubmissionReport {
                            job_id: spec.job_id(),
                            outcome: SubmissionOutcome::Degraded {
                                config,
                                reason: format!(
                                    "profiling run kept faulting (last: {fault}); no profile stored; {rung}"
                                ),
                            },
                            run,
                            sampling_ms,
                        })
                    }
                }
            }
        }
    }

    /// Serve a job **without** sampling, matching, or tuning: go straight
    /// down the degradation ladder from the rule-based-optimizer rung.
    /// This is the load-shedding path of
    /// [`crate::service::TuningService`] — under admission-control
    /// pressure a submission still runs and still resolves as
    /// [`SubmissionOutcome::Degraded`] (never an overload error), it just
    /// skips the store-touching feedback loop.
    pub fn submit_untuned(
        &self,
        spec: &JobSpec,
        dataset: &Dataset,
        seed: u64,
        why: &str,
    ) -> Result<SubmissionReport, DaemonError> {
        let submitted_config = JobConfig::submitted(spec);
        let (config, run, rung) =
            self.degraded_production_run(spec, dataset, &submitted_config, None, seed)?;
        self.obs.incr("daemon.degraded", 1);
        Ok(SubmissionReport {
            job_id: spec.job_id(),
            outcome: SubmissionOutcome::Degraded {
                config,
                reason: format!("{why}; {rung}"),
            },
            run,
            sampling_ms: 0.0,
        })
    }

    /// Walk the run ladder until some configuration survives the cluster
    /// (see [`run_degradation_ladder`]).
    fn degraded_production_run(
        &self,
        spec: &JobSpec,
        dataset: &Dataset,
        submitted: &JobConfig,
        tuned: Option<&JobConfig>,
        seed: u64,
    ) -> Result<(JobConfig, JobReport, String), DaemonError> {
        run_degradation_ladder(
            &self.cluster,
            &self.policy,
            &self.obs,
            spec,
            dataset,
            submitted,
            tuned,
            seed,
        )
    }
}

/// Walk the run ladder until some configuration survives the cluster:
/// CBO-tuned settings (if any) → `optimizer::rbo` settings → the
/// submitted configuration → the submitted configuration with lenient
/// task attempt caps. Each rung gets `run_retries + 1` seeds; only
/// injected faults (and, on optimizer rungs, optimizer-induced OOM)
/// fall through to the next rung — deterministic errors return `Err`
/// immediately.
///
/// Free-standing so [`crate::service`] can shed load through the ladder
/// without borrowing a tenant's daemon.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_degradation_ladder(
    cluster: &ClusterSpec,
    policy: &DegradationPolicy,
    reg: &obs::Registry,
    spec: &JobSpec,
    dataset: &Dataset,
    submitted: &JobConfig,
    tuned: Option<&JobConfig>,
    seed: u64,
) -> Result<(JobConfig, JobReport, String), DaemonError> {
    let mut lenient = submitted.clone();
    lenient.max_map_attempts = policy.lenient_attempt_cap;
    lenient.max_reduce_attempts = policy.lenient_attempt_cap;

    // (config, label, does optimizer-induced OOM fall through?)
    let mut rungs: Vec<(JobConfig, &str, bool)> = Vec::new();
    if let Some(t) = tuned {
        rungs.push((t.clone(), "CBO-tuned settings", true));
    }
    rungs.push((
        recommend(spec, cluster).config,
        "rule-based optimizer settings",
        true,
    ));
    rungs.push((submitted.clone(), "submitted configuration", false));
    rungs.push((
        lenient,
        "submitted configuration with lenient attempt caps",
        false,
    ));

    let ladder_span = reg.span("daemon.degrade");
    let mut attempt_no = 0u32;
    let mut last_fault: Option<SimError> = None;
    for (config, label, oom_falls_through) in rungs {
        for _ in 0..=policy.run_retries {
            attempt_no += 1;
            reg.event(
                "daemon.degrade.attempt",
                &[("rung", label.into()), ("attempt", attempt_no.into())],
            );
            match simulate(
                spec,
                dataset,
                cluster,
                &config,
                retry_seed(seed ^ 0x47, attempt_no),
            ) {
                Ok(run) => {
                    reg.event(
                        "daemon.degrade.served",
                        &[("rung", label.into()), ("attempts", attempt_no.into())],
                    );
                    ladder_span.attr("served_by", label);
                    ladder_span.attr("attempts", attempt_no);
                    mrsim::trace::record_report(reg, &run);
                    let rung =
                        format!("served by {label} after {attempt_no} fallback run attempt(s)");
                    return Ok((config, run, rung));
                }
                Err(e) if e.is_fault() => last_fault = Some(e),
                // OOM is seed-independent: no point retrying the rung.
                Err(e @ SimError::OutOfMemory { .. }) if oom_falls_through => {
                    last_fault = Some(e);
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    ladder_span.attr("served_by", "none");
    // Every rung exhausted — the cluster is hostile beyond what the
    // policy tolerates. Surface the last fault as a typed error.
    Err(DaemonError::Sim(
        last_fault.expect("ladder has at least one rung"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;

    #[test]
    fn first_submission_profiles_second_submission_tunes() {
        let daemon = PStorM::new().unwrap();
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);

        let first = daemon.submit(&spec, &ds, 1).unwrap();
        assert!(matches!(
            first.outcome,
            SubmissionOutcome::ProfiledAndStored { .. }
        ));
        assert_eq!(daemon.store.len().unwrap(), 1);

        let second = daemon.submit(&spec, &ds, 2).unwrap();
        match &second.outcome {
            SubmissionOutcome::Tuned { matched, .. } => {
                assert_eq!(matched.map.source_job, spec.job_id());
            }
            other => panic!("expected tuned run, got {other:?}"),
        }
        // The tuned run should be much faster than the profiled default run.
        assert!(
            second.run.runtime_ms < first.run.runtime_ms / 2.0,
            "tuned {} vs default {}",
            second.run.runtime_ms,
            first.run.runtime_ms
        );
    }

    #[test]
    fn daemon_error_chain_is_preserved() {
        let e = DaemonError::Sim(SimError::EmptyDataset("empty_ds".into()));
        let src = std::error::Error::source(&e).expect("source must expose the inner SimError");
        assert!(
            src.to_string().contains("empty_ds"),
            "source lost detail: {src}"
        );
        assert!(
            e.to_string().contains("job simulation failed"),
            "display lost context: {e}"
        );

        let e = DaemonError::Store(ProfileStoreError::Corrupt("dyn:vec".into()));
        assert!(std::error::Error::source(&e).is_some());
    }

    /// A corrupt manifest must surface from `PStorM::reopen` as a typed
    /// `RecoveryError` whose full cause chain walks from the daemon down
    /// to the recovery layer — not as a panic or a flattened string.
    #[test]
    fn recovery_error_chain_walks_from_daemon_to_store_layer() {
        let dir = std::env::temp_dir().join(format!(
            "pstorm-daemon-badmanifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST"), b"not a manifest at all").unwrap();

        let err = match PStorM::reopen(&dir) {
            Err(e) => DaemonError::from(e),
            Ok(_) => panic!("reopen over a corrupt manifest must fail"),
        };
        assert!(
            matches!(
                &err,
                DaemonError::Store(ProfileStoreError::Recovery(
                    cfstore::RecoveryError::ManifestCorrupt { .. }
                ))
            ),
            "expected a typed ManifestCorrupt, got {err:?}"
        );
        // Each level adds its own context…
        assert!(err.to_string().contains("profile store operation failed"));
        // …and the chain stays walkable to the recovery layer.
        let store_err = std::error::Error::source(&err).expect("daemon -> store");
        assert!(store_err.to_string().contains("store recovery failed"));
        let recovery_err = std::error::Error::source(store_err).expect("store -> recovery");
        assert!(
            recovery_err.to_string().contains("manifest"),
            "recovery layer lost detail: {recovery_err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_tuned_runs_degrade_instead_of_erroring() {
        use mrsim::FaultSpec;

        let mut daemon = PStorM::new().unwrap();
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();

        // Clean first submission seeds the store with a full profile.
        let first = daemon.submit(&spec, &ds, 1).unwrap();
        assert!(matches!(
            first.outcome,
            SubmissionOutcome::ProfiledAndStored { .. }
        ));

        // Now make the cluster flaky enough that a ~280-map job dies on a
        // sizable fraction of seeds, and resubmit across seeds.
        daemon.cluster.faults = FaultSpec {
            task_failure_prob: 0.2,
            ..FaultSpec::default()
        };
        let mut degraded = 0;
        let mut tuned = 0;
        for seed in 0..24 {
            let report = daemon
                .submit(&spec, &ds, 1000 + seed)
                .expect("moderate fault rates must never surface a raw error");
            match report.outcome {
                SubmissionOutcome::Degraded { ref reason, .. } => {
                    degraded += 1;
                    assert!(!reason.is_empty());
                    assert!(report.run.runtime_ms > 0.0);
                }
                SubmissionOutcome::Tuned { .. } => tuned += 1,
                SubmissionOutcome::ProfiledAndStored { .. } => {}
            }
        }
        assert!(
            degraded > 0,
            "expected at least one degraded submission (tuned: {tuned})"
        );
        assert!(tuned > 0, "expected some tuned submissions to survive");
    }

    #[test]
    fn hostile_cluster_returns_typed_fault_error() {
        use mrsim::FaultSpec;

        let mut daemon = PStorM::new().unwrap();
        daemon.cluster.faults = FaultSpec {
            node_loss_prob: 1.0,
            ..FaultSpec::default()
        };
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        match daemon.submit(&spec, &ds, 5) {
            Err(DaemonError::Sim(e)) => assert!(e.is_fault(), "expected fault error, got {e}"),
            Err(other) => panic!("expected sim fault, got {other}"),
            Ok(report) => panic!("total node loss should not complete: {:?}", report.outcome),
        }
    }

    #[test]
    fn sampling_cost_is_small() {
        let daemon = PStorM::new().unwrap();
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        let report = daemon.submit(&spec, &ds, 1).unwrap();
        assert!(
            report.sampling_ms < report.run.runtime_ms / 4.0,
            "sampling {} vs run {}",
            report.sampling_ms,
            report.run.runtime_ms
        );
    }
}
