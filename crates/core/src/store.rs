//! The PStorM profile store (Chapter 5).
//!
//! Table 5.1's data model over the miniature HBase: one table, one column
//! family, and row keys prefixed with the *feature type*:
//!
//! ```text
//! Static/<job-id>     -> categorical static features + encoded CFGs
//! Dynamic/<job-id>    -> dataflow-statistic features + input size
//! CostFactor/<job-id> -> the Table 4.2 cost-factor features
//! Profile/<job-id>    -> the full encoded Starfish profile
//! Meta/normalization  -> min/max bounds for Euclidean normalization
//! ```
//!
//! The prefix keeps all rows of one feature type contiguous, so each
//! matching stage scans exactly one key range with a pushed-down filter —
//! the locality argument of §5.1.
//!
//! Multi-tenancy (DESIGN.md §14) namespaces this whole layout per tenant:
//! a [`ProfileStore::tenant_view`] shares the backing store but prepends
//! `t/<tenant>/` (see [`cfstore::encoding::tenant_prefix`]) to every row
//! key it reads or writes, so each tenant sees a private copy of the
//! table above. The default tenant's prefix is empty — single-tenant
//! callers keep the exact legacy key layout, bit for bit.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use cfstore::encoding::{decode_f64, decode_f64_vec, encode_f64, encode_f64_vec};
use cfstore::wal::{CrashSpec, SyncPolicy};
use cfstore::{
    MiniStore, Put, RecoveryError, RecoveryReport, Reshard, ReshardStatus, RowResult, Scan,
    ScanMetrics, ShardOptions, ShardedRecoveryReport, ShardedStore, StoreError, StoreOptions,
};
use mlmatch::{DimPrep, MinMaxNormalizer};
use profiler::{CostFactors, JobProfile};
use staticanalysis::{Cfg, SideFeatures, StaticFeatures};

use crate::codec::{decode_cfg, decode_profile, encode_cfg, encode_profile};

/// Table and family names.
const TABLE: &str = "Jobs";
const FAMILY: &str = "f";

/// Dynamic feature column names: the map-side Table 4.1 statistics, then
/// the reduce-side ones.
pub const MAP_DYNAMIC_COLUMNS: [&str; 4] = [
    "MAP_SIZE_SEL",
    "MAP_PAIRS_SEL",
    "COMBINE_SIZE_SEL",
    "COMBINE_PAIRS_SEL",
];
pub const RED_DYNAMIC_COLUMNS: [&str; 2] = ["RED_SIZE_SEL", "RED_PAIRS_SEL"];
const INPUT_BYTES_COLUMN: &str = "INPUT_BYTES";
const HAS_REDUCE_COLUMN: &str = "HAS_REDUCE";

/// Errors from the profile store.
#[derive(Debug)]
pub enum ProfileStoreError {
    Store(StoreError),
    Codec(cfstore::encoding::CodecError),
    Corrupt(String),
    /// The reopen path failed: at-rest corruption of committed data or
    /// I/O trouble (torn WAL tails are *not* errors — they are truncated
    /// and reported in the [`RecoveryReport`]).
    Recovery(RecoveryError),
}

impl std::fmt::Display for ProfileStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileStoreError::Store(e) => write!(f, "{e}"),
            ProfileStoreError::Codec(e) => write!(f, "codec: {e}"),
            ProfileStoreError::Corrupt(s) => write!(f, "corrupt store row: {s}"),
            ProfileStoreError::Recovery(e) => write!(f, "store recovery failed: {e}"),
        }
    }
}
impl std::error::Error for ProfileStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileStoreError::Store(e) => Some(e),
            ProfileStoreError::Codec(e) => Some(e),
            ProfileStoreError::Corrupt(_) => None,
            ProfileStoreError::Recovery(e) => Some(e),
        }
    }
}
impl From<StoreError> for ProfileStoreError {
    fn from(e: StoreError) -> Self {
        ProfileStoreError::Store(e)
    }
}
impl From<RecoveryError> for ProfileStoreError {
    fn from(e: RecoveryError) -> Self {
        ProfileStoreError::Recovery(e)
    }
}
impl From<cfstore::encoding::CodecError> for ProfileStoreError {
    fn from(e: cfstore::encoding::CodecError) -> Self {
        ProfileStoreError::Codec(e)
    }
}

/// One stored job as reconstructed from the store's rows.
#[derive(Debug, Clone)]
pub struct StoredEntry {
    pub job_id: String,
    pub statics: StoredStatics,
    pub profile: JobProfile,
}

/// Static features as stored (categorical vectors + decoded CFGs).
#[derive(Debug, Clone)]
pub struct StoredStatics {
    pub map: SideFeatures,
    pub reduce: SideFeatures,
}

/// The storage engine behind a [`ProfileStore`]: one [`MiniStore`]
/// (in-memory or single-directory durable), or a replicated
/// [`ShardedStore`] that survives the loss of any single shard. The
/// two expose the same table API, so everything above this enum —
/// matcher, columnar index, what-if daemon — is backend-agnostic, and
/// the property suite asserts matcher output is identical across
/// backends.
enum Backend {
    Single(MiniStore),
    Sharded(ShardedStore),
}

impl Backend {
    fn create_table(&self, name: &str, families: &[&str]) -> Result<(), StoreError> {
        match self {
            Backend::Single(s) => s.create_table(name, families),
            Backend::Sharded(s) => s.create_table(name, families),
        }
    }

    fn put(&self, table: &str, put: Put) -> Result<(), StoreError> {
        match self {
            Backend::Single(s) => s.put(table, put),
            Backend::Sharded(s) => s.put(table, put),
        }
    }

    fn put_batch(&self, table: &str, puts: Vec<Put>) -> Result<(), StoreError> {
        match self {
            Backend::Single(s) => s.put_batch(table, puts),
            Backend::Sharded(s) => s.put_batch(table, puts),
        }
    }

    fn get(&self, table: &str, row: &[u8]) -> Result<Option<RowResult>, StoreError> {
        match self {
            Backend::Single(s) => s.get(table, row),
            Backend::Sharded(s) => s.get(table, row),
        }
    }

    fn scan(&self, table: &str, scan: &Scan) -> Result<(Vec<RowResult>, ScanMetrics), StoreError> {
        match self {
            Backend::Single(s) => s.scan(table, scan),
            Backend::Sharded(s) => s.scan(table, scan),
        }
    }

    fn delete_row(&self, table: &str, row: &[u8]) -> Result<bool, StoreError> {
        match self {
            Backend::Single(s) => s.delete_row(table, row),
            Backend::Sharded(s) => s.delete_row(table, row),
        }
    }

    fn flush(&self) -> Result<(), StoreError> {
        match self {
            Backend::Single(s) => s.flush(),
            Backend::Sharded(s) => s.flush(),
        }
    }

    fn is_durable(&self) -> bool {
        match self {
            Backend::Single(s) => s.is_durable(),
            Backend::Sharded(_) => true,
        }
    }

    fn is_crashed(&self) -> bool {
        match self {
            Backend::Single(s) => s.is_crashed(),
            Backend::Sharded(s) => s.is_crashed(),
        }
    }

    fn set_obs(&mut self, reg: obs::Registry) {
        match self {
            Backend::Single(s) => s.set_obs(reg),
            Backend::Sharded(s) => s.set_obs(reg),
        }
    }

    fn corrupt_cell(
        &self,
        table: &str,
        row: &[u8],
        family: &str,
        column: &[u8],
    ) -> Result<bool, StoreError> {
        match self {
            Backend::Single(s) => s.corrupt_cell(table, row, family, column),
            Backend::Sharded(s) => s.corrupt_cell(table, row, family, column),
        }
    }
}

/// The PStorM profile store.
pub struct ProfileStore {
    /// Shared with every [`Self::tenant_view`] of the same backing store.
    store: Arc<Backend>,
    /// Row-key namespace prefix: `""` for the default tenant (legacy
    /// layout), `t/<tenant>/` otherwise. Every key this store builds and
    /// every prefix it scans goes through [`Self::key`] / [`Self::pfx`],
    /// which prepend it.
    ns: String,
    /// The tenant this view is scoped to
    /// ([`cfstore::encoding::DEFAULT_TENANT`] unless created by
    /// [`Self::tenant_view`]).
    tenant: String,
    /// Columnar in-memory projection of the numeric feature rows, rebuilt
    /// lazily after writes. Per-view: each tenant view caches only its
    /// own namespace. See [`ColumnarIndex`].
    index: RwLock<Option<Arc<ColumnarIndex>>>,
    /// Decoded `Meta/normalization` row, invalidated on every insert.
    bounds_cache: RwLock<Option<NormalizationBounds>>,
    /// Observability registry ([`obs::Registry::disabled`] by default);
    /// the matcher reads it through [`ProfileStore::obs`] so one enabled
    /// registry covers the whole store + matcher path.
    obs: obs::Registry,
}

impl ProfileStore {
    /// Create an empty store (one `Jobs` table, one family).
    pub fn new() -> Result<Self, ProfileStoreError> {
        let store = Backend::Single(MiniStore::new());
        store.create_table(TABLE, &[FAMILY])?;
        Ok(ProfileStore {
            store: Arc::new(store),
            ns: String::new(),
            tenant: cfstore::encoding::DEFAULT_TENANT.to_string(),
            index: RwLock::new(None),
            bounds_cache: RwLock::new(None),
            obs: obs::Registry::disabled(),
        })
    }

    /// Open (or create) a durable store at `dir`, running crash recovery
    /// and eagerly rebuilding the stage-1 columnar index from the
    /// recovered rows. Returns the store plus the [`RecoveryReport`].
    pub fn reopen(dir: &Path) -> Result<(Self, RecoveryReport), ProfileStoreError> {
        Self::reopen_with(dir, SyncPolicy::EveryOp, CrashSpec::default())
    }

    /// [`Self::reopen`] with an explicit sync policy and crash spec (the
    /// crash-recovery property tests' entry point).
    pub fn reopen_with(
        dir: &Path,
        policy: SyncPolicy,
        crash: CrashSpec,
    ) -> Result<(Self, RecoveryReport), ProfileStoreError> {
        Self::reopen_with_opts(
            dir,
            StoreOptions {
                sync: policy,
                crash,
                ..StoreOptions::default()
            },
        )
    }

    /// [`Self::reopen`] with full [`StoreOptions`] control — block cache
    /// budget and the background flusher (the hot-path benchmarks' entry
    /// point).
    pub fn reopen_with_opts(
        dir: &Path,
        opts: StoreOptions,
    ) -> Result<(Self, RecoveryReport), ProfileStoreError> {
        let (store, report) = MiniStore::open_with_opts(dir, opts)?;
        let ps = Self::finish_open(Backend::Single(store))?;
        Ok((ps, report))
    }

    /// Open (or create) a *sharded, replicated* store at `dir`: N shard
    /// subdirectories with R-way row replication, self-healing reads,
    /// and recovery that rebuilds any single lost shard from its peers
    /// (DESIGN.md §13). Everything above the storage layer — matcher,
    /// columnar index, tuning loop — behaves identically to
    /// [`Self::reopen`].
    pub fn reopen_sharded(dir: &Path) -> Result<(Self, ShardedRecoveryReport), ProfileStoreError> {
        Self::reopen_sharded_with_opts(dir, ShardOptions::default())
    }

    /// [`Self::reopen_sharded`] with explicit [`ShardOptions`] (shard
    /// count, replication factor, crash injection for the chaos tests).
    pub fn reopen_sharded_with_opts(
        dir: &Path,
        opts: ShardOptions,
    ) -> Result<(Self, ShardedRecoveryReport), ProfileStoreError> {
        Self::reopen_sharded_traced(dir, opts, obs::Registry::disabled())
    }

    /// [`Self::reopen_sharded_with_opts`] with an observability registry
    /// attached from the first byte of recovery, so shard-rebuild and
    /// heal counters (`cfstore.shard.<id>.heal.*`) are captured.
    pub fn reopen_sharded_traced(
        dir: &Path,
        opts: ShardOptions,
        reg: obs::Registry,
    ) -> Result<(Self, ShardedRecoveryReport), ProfileStoreError> {
        let (store, report) = ShardedStore::open_traced(dir, opts, reg.clone())?;
        let mut ps = Self::finish_open(Backend::Sharded(store))?;
        if reg.is_enabled() {
            ps.obs = reg;
        }
        Ok((ps, report))
    }

    fn finish_open(store: Backend) -> Result<Self, ProfileStoreError> {
        match store.create_table(TABLE, &[FAMILY]) {
            Ok(()) | Err(StoreError::TableExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
        let ps = ProfileStore {
            store: Arc::new(store),
            ns: String::new(),
            tenant: cfstore::encoding::DEFAULT_TENANT.to_string(),
            index: RwLock::new(None),
            bounds_cache: RwLock::new(None),
            obs: obs::Registry::disabled(),
        };
        // The first matcher query must not pay the rebuild; surface any
        // half-recovered row inconsistency now rather than mid-match.
        ps.columnar_index()?;
        Ok(ps)
    }

    /// A view of the same backing store scoped to `tenant`: every row key
    /// it builds is namespaced under the tenant's prefix, so the matcher,
    /// columnar index, and normalization bounds running on the view see
    /// **only** that tenant's rows (DESIGN.md §14). Views share the
    /// backend (and its WAL/segments/shards) but carry their own index
    /// and bounds caches; create one view per tenant and route all of
    /// that tenant's traffic through it. Viewing
    /// [`cfstore::encoding::DEFAULT_TENANT`] yields the legacy key layout
    /// unchanged.
    pub fn tenant_view(&self, tenant: &str) -> Result<ProfileStore, ProfileStoreError> {
        let ns = cfstore::encoding::tenant_prefix(tenant)?;
        Ok(ProfileStore {
            store: Arc::clone(&self.store),
            ns,
            tenant: tenant.to_string(),
            index: RwLock::new(None),
            bounds_cache: RwLock::new(None),
            obs: self.obs.clone(),
        })
    }

    /// The tenant this store is scoped to
    /// ([`cfstore::encoding::DEFAULT_TENANT`] for stores not created via
    /// [`Self::tenant_view`]).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Row key `<ns><feature>/<job_id>`.
    fn key(&self, feature: &str, job_id: &str) -> Bytes {
        Bytes::from(format!("{}{feature}/{job_id}", self.ns))
    }

    /// Scan prefix `<ns><feature>/`.
    fn pfx(&self, feature: &str) -> Vec<u8> {
        format!("{}{feature}/", self.ns).into_bytes()
    }

    /// Bytes to strip from a scanned row key to recover the job id.
    fn skip(&self, feature: &str) -> usize {
        self.ns.len() + feature.len() + 1
    }

    /// The per-tenant normalization-bounds row.
    fn meta_key(&self) -> Bytes {
        Bytes::from(format!("{}Meta/normalization", self.ns))
    }

    /// Flush the underlying store's memstores to segment files (no-op for
    /// in-memory stores). Puts since the last flush survive crashes via
    /// the WAL either way; flushing bounds WAL replay length.
    pub fn flush(&self) -> Result<(), ProfileStoreError> {
        Ok(self.store.flush()?)
    }

    /// Whether this store is backed by a directory.
    pub fn is_durable(&self) -> bool {
        self.store.is_durable()
    }

    /// Whether an injected crash point has poisoned the underlying store
    /// (every further durable operation fails fast until [`Self::reopen`]).
    pub fn is_crashed(&self) -> bool {
        self.store.is_crashed()
    }

    /// Route this store's (and the underlying [`MiniStore`]'s) metrics
    /// into `reg`. Pass a clone of the daemon's registry to collect one
    /// coherent trace; see DESIGN.md §10.
    ///
    /// Attach the registry **before** creating tenant views: once views
    /// share the backend, the backend-level `cfstore.*` counters keep
    /// whatever registry they already had (only this view's `store.*`
    /// counters are redirected).
    pub fn set_obs(&mut self, reg: obs::Registry) {
        if let Some(store) = Arc::get_mut(&mut self.store) {
            store.set_obs(reg.clone());
        }
        self.obs = reg;
    }

    /// The registry this store records into (disabled unless
    /// [`Self::set_obs`] was called).
    pub fn obs(&self) -> &obs::Registry {
        &self.obs
    }

    /// Chaos hook: bit-flip one stored cell (e.g. `Profile/<job>`'s
    /// `PROFILE` column) without updating its checksum, so the next read
    /// surfaces [`cfstore::StoreError::Corruption`] through
    /// [`ProfileStoreError::Store`]. Returns whether a cell was hit. The
    /// row is namespace-relative: on a tenant view it corrupts that
    /// tenant's copy of the row.
    pub fn corrupt_cell(&self, row: &[u8], column: &[u8]) -> Result<bool, ProfileStoreError> {
        let full = [self.ns.as_bytes(), row].concat();
        Ok(self.store.corrupt_cell(TABLE, &full, FAMILY, column)?)
    }

    /// Insert (or replace) a job's profile and features, maintaining the
    /// normalization bounds.
    ///
    /// # Examples
    ///
    /// Profile a run and store it; the profile comes back by job id:
    ///
    /// ```
    /// use pstorm::store::ProfileStore;
    /// use staticanalysis::StaticFeatures;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let spec = mrjobs::jobs::word_count();
    /// let ds = datagen::corpus::random_text_1g();
    /// let (profile, _run) = profiler::collect_full_profile(
    ///     &spec,
    ///     &ds,
    ///     &mrsim::ClusterSpec::ec2_c1_medium_16(),
    ///     &mrsim::JobConfig::submitted(&spec),
    ///     7,
    /// )?;
    ///
    /// let store = ProfileStore::new()?;
    /// store.put_profile(&StaticFeatures::extract(&spec), &profile)?;
    /// assert_eq!(store.len()?, 1);
    /// assert_eq!(store.get_profile(&profile.job_id)?.unwrap(), profile);
    /// # Ok(())
    /// # }
    /// ```
    pub fn put_profile(
        &self,
        statics: &StaticFeatures,
        profile: &JobProfile,
    ) -> Result<(), ProfileStoreError> {
        self.obs.incr("store.put_profile", 1);
        let job_id = &profile.job_id;

        // The whole profile — statics, dynamics, cost factors, the blob,
        // and the refreshed normalization bounds — is written as ONE
        // atomic batch (a single WAL frame in durable mode), so recovery
        // can never surface a half-written profile: either every row of
        // the job replays or none does.
        let mut puts: Vec<Put> = Vec::new();

        // Static/<job>: categorical features + CFG cells.
        let static_key = self.key("Static", job_id);
        for (name, value) in statics
            .map
            .categorical
            .iter()
            .chain(&statics.reduce.categorical)
        {
            puts.push(Put::new(
                static_key.clone(),
                FAMILY,
                Bytes::copy_from_slice(name.as_bytes()),
                Bytes::copy_from_slice(value.as_bytes()),
            ));
        }
        if let Some(cfg) = &statics.map.cfg {
            puts.push(Put::new(
                static_key.clone(),
                FAMILY,
                "MAP_CFG",
                encode_cfg(cfg),
            ));
        }
        if let Some(cfg) = &statics.reduce.cfg {
            puts.push(Put::new(
                static_key.clone(),
                FAMILY,
                "RED_CFG",
                encode_cfg(cfg),
            ));
        }

        // Dynamic/<job>: dataflow statistics + input size + reduce flag.
        let dynamic_key = self.key("Dynamic", job_id);
        let map_dyn = profile.map.dynamic_features();
        for (name, v) in MAP_DYNAMIC_COLUMNS.iter().zip(&map_dyn) {
            puts.push(f64_put(dynamic_key.clone(), name, *v));
        }
        if let Some(red) = &profile.reduce {
            for (name, v) in RED_DYNAMIC_COLUMNS
                .iter()
                .zip(red.dynamic_features().iter())
            {
                puts.push(f64_put(dynamic_key.clone(), name, *v));
            }
        }
        puts.push(f64_put(
            dynamic_key.clone(),
            INPUT_BYTES_COLUMN,
            profile.input_bytes,
        ));
        puts.push(f64_put(
            dynamic_key,
            HAS_REDUCE_COLUMN,
            profile.reduce.is_some() as u8 as f64,
        ));

        // CostFactor/<job>.
        let cost_key = self.key("CostFactor", job_id);
        for (name, v) in CostFactors::names()
            .iter()
            .zip(profile.map.cost_factors.as_vec())
        {
            puts.push(f64_put(cost_key.clone(), name, v));
        }

        // Profile/<job>: the full blob.
        puts.push(Put::new(
            self.key("Profile", job_id),
            FAMILY,
            "blob",
            encode_profile(profile),
        ));

        // Meta/normalization: extend min/max bounds.
        let mut bounds = self.normalization_bounds()?;
        let red_dyn = profile
            .reduce
            .as_ref()
            .map(|r| r.dynamic_features())
            .unwrap_or_else(|| vec![1.0, 1.0]);
        let cost = profile.map.cost_factors.as_vec();
        bounds.map_dyn.observe(&map_dyn);
        bounds.red_dyn.observe(&red_dyn);
        bounds.cost.observe(&cost);
        let meta_key = self.meta_key();
        puts.push(Put::new(
            meta_key.clone(),
            FAMILY,
            "map_dyn",
            encode_bounds(&bounds.map_dyn),
        ));
        puts.push(Put::new(
            meta_key.clone(),
            FAMILY,
            "red_dyn",
            encode_bounds(&bounds.red_dyn),
        ));
        puts.push(Put::new(
            meta_key,
            FAMILY,
            "cost",
            encode_bounds(&bounds.cost),
        ));

        self.store.put_batch(TABLE, puts)?;

        // Caches update only after the batch is acknowledged, so a torn
        // (never-acked) write leaves both consistent with the table.
        *self.bounds_cache.write() = Some(bounds);
        *self.index.write() = None;
        Ok(())
    }

    /// The current min/max normalization bounds (identity bounds when the
    /// store is empty). Served from an in-memory cache kept in sync with
    /// the `Meta/normalization` row; the matcher reads the bounds on every
    /// submission and must not pay a decode for it.
    pub fn normalization_bounds(&self) -> Result<NormalizationBounds, ProfileStoreError> {
        if let Some(bounds) = self.bounds_cache.read().as_ref() {
            return Ok(bounds.clone());
        }
        let bounds = self.read_normalization_bounds()?;
        *self.bounds_cache.write() = Some(bounds.clone());
        Ok(bounds)
    }

    fn read_normalization_bounds(&self) -> Result<NormalizationBounds, ProfileStoreError> {
        let row = self.store.get(TABLE, self.meta_key().as_ref())?;
        let decode = |row: &RowResult,
                      col: &str,
                      dim: usize|
         -> Result<MinMaxNormalizer, ProfileStoreError> {
            match row.value(FAMILY, col.as_bytes()) {
                Some(bytes) => decode_bounds(bytes),
                None => Ok(identity_bounds(dim)),
            }
        };
        match row {
            Some(row) => Ok(NormalizationBounds {
                map_dyn: decode(&row, "map_dyn", MAP_DYNAMIC_COLUMNS.len())?,
                red_dyn: decode(&row, "red_dyn", RED_DYNAMIC_COLUMNS.len())?,
                cost: decode(&row, "cost", CostFactors::names().len())?,
            }),
            None => Ok(NormalizationBounds {
                map_dyn: identity_bounds(MAP_DYNAMIC_COLUMNS.len()),
                red_dyn: identity_bounds(RED_DYNAMIC_COLUMNS.len()),
                cost: identity_bounds(CostFactors::names().len()),
            }),
        }
    }

    /// Fetch the full profile of a job.
    pub fn get_profile(&self, job_id: &str) -> Result<Option<JobProfile>, ProfileStoreError> {
        self.obs.incr("store.get_profile", 1);
        let row = self
            .store
            .get(TABLE, self.key("Profile", job_id).as_ref())?;
        match row {
            Some(row) => {
                let blob = row.value(FAMILY, b"blob").ok_or_else(|| {
                    ProfileStoreError::Corrupt(format!("Profile/{job_id} has no blob"))
                })?;
                Ok(Some(decode_profile(blob)?))
            }
            None => Ok(None),
        }
    }

    /// Delete every row of a job (profile eviction). The normalization
    /// bounds are monotone and deliberately not shrunk (matching the
    /// paper's store), so only the columnar index needs invalidation.
    pub fn delete_job(&self, job_id: &str) -> Result<bool, ProfileStoreError> {
        let mut any = false;
        for prefix in ["Static", "Dynamic", "CostFactor", "Profile"] {
            any |= self
                .store
                .delete_row(TABLE, self.key(prefix, job_id).as_ref())?;
        }
        if any {
            *self.index.write() = None;
        }
        Ok(any)
    }

    /// All stored job ids (scans the `Profile/` prefix).
    pub fn job_ids(&self) -> Result<Vec<String>, ProfileStoreError> {
        let (rows, _) = self
            .store
            .scan(TABLE, &Scan::prefix(&self.pfx("Profile")))?;
        let skip = self.skip("Profile");
        rows.iter()
            .map(|r| {
                std::str::from_utf8(&r.row[skip..])
                    .map(str::to_string)
                    .map_err(|_| ProfileStoreError::Corrupt("non-UTF8 job id".to_string()))
            })
            .collect()
    }

    /// Number of stored profiles.
    pub fn len(&self) -> Result<usize, ProfileStoreError> {
        Ok(self.job_ids()?.len())
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> Result<bool, ProfileStoreError> {
        Ok(self.len()? == 0)
    }

    /// Scan the `Dynamic/` rows with a pushed-down predicate; returns the
    /// surviving job ids and the scan metrics. This is how the matcher's
    /// first filter executes at the region servers (§5.3).
    pub fn filter_dynamic(
        &self,
        predicate: impl Fn(&DynamicRow) -> bool + Send + Sync + 'static,
    ) -> Result<(Vec<DynamicRow>, ScanMetrics), ProfileStoreError> {
        let skip = self.skip("Dynamic");
        let scan =
            Scan::prefix(&self.pfx("Dynamic")).with_filter(Box::new(cfstore::PredicateFilter {
                name: "dynamic-feature filter".to_string(),
                pred: move |row: &RowResult| match DynamicRow::parse(row, skip) {
                    Some(d) => predicate(&d),
                    None => false,
                },
            }));
        let (rows, metrics) = self.store.scan(TABLE, &scan)?;
        let parsed = rows
            .iter()
            .filter_map(|r| DynamicRow::parse(r, skip))
            .collect();
        Ok((parsed, metrics))
    }

    /// Fetch a job's stored static features.
    pub fn get_statics(&self, job_id: &str) -> Result<Option<StoredStatics>, ProfileStoreError> {
        let Some(row) = self.store.get(TABLE, self.key("Static", job_id).as_ref())? else {
            return Ok(None);
        };
        Ok(Some(decode_statics(&row)?))
    }

    /// Fetch the static features of *every* stored job with a single
    /// `Static/` prefix scan — the batched alternative to per-job
    /// [`Self::get_statics`] point-gets when a matching stage needs most
    /// of the table anyway.
    pub fn all_statics(&self) -> Result<HashMap<String, StoredStatics>, ProfileStoreError> {
        let (rows, _) = self.store.scan(TABLE, &Scan::prefix(&self.pfx("Static")))?;
        let skip = self.skip("Static");
        rows.iter()
            .map(|row| {
                let id = job_id_of(&row.row, skip)?;
                Ok((id, decode_statics(row)?))
            })
            .collect()
    }

    /// Fetch a job's cost-factor vector.
    pub fn get_cost_factors(&self, job_id: &str) -> Result<Option<Vec<f64>>, ProfileStoreError> {
        let Some(row) = self
            .store
            .get(TABLE, self.key("CostFactor", job_id).as_ref())?
        else {
            return Ok(None);
        };
        Ok(Some(decode_cost_factors(&row, job_id)?))
    }

    /// Fetch the cost factors of every stored job with a single
    /// `CostFactor/` prefix scan (batched alternative to point-gets).
    pub fn all_cost_factors(&self) -> Result<HashMap<String, Vec<f64>>, ProfileStoreError> {
        let (rows, _) = self
            .store
            .scan(TABLE, &Scan::prefix(&self.pfx("CostFactor")))?;
        let skip = self.skip("CostFactor");
        rows.iter()
            .map(|row| {
                let id = job_id_of(&row.row, skip)?;
                let v = decode_cost_factors(row, &id)?;
                Ok((id, v))
            })
            .collect()
    }

    /// The columnar projection of the store's numeric feature rows,
    /// rebuilding it first if a write invalidated it. The returned `Arc`
    /// stays valid (a consistent snapshot) even if the store is written
    /// afterwards.
    pub fn columnar_index(&self) -> Result<Arc<ColumnarIndex>, ProfileStoreError> {
        if let Some(index) = self.index.read().as_ref() {
            self.obs.incr("store.index_hits", 1);
            return Ok(index.clone());
        }
        let index = Arc::new(self.build_columnar_index()?);
        *self.index.write() = Some(index.clone());
        self.obs.incr("store.index_rebuilds", 1);
        Ok(index)
    }

    fn build_columnar_index(&self) -> Result<ColumnarIndex, ProfileStoreError> {
        let (dyn_rows, _) = self
            .store
            .scan(TABLE, &Scan::prefix(&self.pfx("Dynamic")))?;
        let skip = self.skip("Dynamic");
        let mut statics = self.all_statics()?;
        let mut costs = self.all_cost_factors()?;

        let n = dyn_rows.len();
        let cost_dims = CostFactors::names().len();
        let mut index = ColumnarIndex {
            job_ids: Vec::with_capacity(n),
            map_dyn: Vec::with_capacity(n * MAP_DYNAMIC_COLUMNS.len()),
            red_dyn: Vec::with_capacity(n * RED_DYNAMIC_COLUMNS.len()),
            map_lanes: LaneMatrix::empty(MAP_DYNAMIC_COLUMNS.len()),
            red_lanes: LaneMatrix::empty(RED_DYNAMIC_COLUMNS.len()),
            has_reduce: Vec::with_capacity(n),
            cost: Vec::with_capacity(n * cost_dims),
            input_bytes: Vec::with_capacity(n),
            statics: Vec::with_capacity(n),
        };
        for row in &dyn_rows {
            let parsed = DynamicRow::parse(row, skip).ok_or_else(|| {
                ProfileStoreError::Corrupt(format!(
                    "undecodable Dynamic row {}",
                    String::from_utf8_lossy(&row.row)
                ))
            })?;
            let cost = costs.remove(&parsed.job_id).ok_or_else(|| {
                ProfileStoreError::Corrupt(format!("no CostFactor row for {}", parsed.job_id))
            })?;
            index.map_dyn.extend_from_slice(&parsed.map_dyn);
            match &parsed.red_dyn {
                Some(red) => {
                    index.red_dyn.extend_from_slice(red);
                    index.has_reduce.push(true);
                }
                None => {
                    index
                        .red_dyn
                        .extend(std::iter::repeat_n(0.0, RED_DYNAMIC_COLUMNS.len()));
                    index.has_reduce.push(false);
                }
            }
            index.cost.extend_from_slice(&cost);
            index.input_bytes.push(parsed.input_bytes);
            index.statics.push(statics.remove(&parsed.job_id));
            index.job_ids.push(parsed.job_id);
        }
        index.map_lanes = LaneMatrix::from_row_major(&index.map_dyn, MAP_DYNAMIC_COLUMNS.len(), n);
        index.red_lanes = LaneMatrix::from_row_major(&index.red_dyn, RED_DYNAMIC_COLUMNS.len(), n);
        Ok(index)
    }

    /// The underlying HBase (diagnostics and benches). Only available
    /// on single-store backends; sharded stores have no single inner
    /// [`MiniStore`] — use [`Self::sharded`] instead.
    pub fn inner(&self) -> &MiniStore {
        match &*self.store {
            Backend::Single(s) => s,
            Backend::Sharded(_) => {
                panic!("ProfileStore::inner() on a sharded backend; use sharded()")
            }
        }
    }

    /// The underlying sharded store, when this store was opened with
    /// [`Self::reopen_sharded`] (`None` for single-store backends).
    pub fn sharded(&self) -> Option<&ShardedStore> {
        match &*self.store {
            Backend::Sharded(s) => Some(s),
            Backend::Single(_) => None,
        }
    }

    fn sharded_or_err(&self) -> Result<&ShardedStore, ProfileStoreError> {
        self.sharded().ok_or_else(|| {
            ProfileStoreError::Store(StoreError::Io(
                "reshard requires a sharded backend (ProfileStore::reopen_sharded)".to_string(),
            ))
        })
    }

    /// Run a full topology change on a sharded backend (DESIGN.md §15):
    /// begin, copy every unit, verify, cut over, GC. The store keeps
    /// serving reads and writes throughout — tenants submitting through
    /// the service never see the migration except in the counters.
    pub fn reshard(&self, plan: Reshard) -> Result<ReshardStatus, ProfileStoreError> {
        Ok(self.sharded_or_err()?.reshard(plan)?)
    }

    /// Resume a migration a crash left in flight (`Ok(None)` when the
    /// journal shows nothing to resume).
    pub fn resume_reshard(&self) -> Result<Option<ReshardStatus>, ProfileStoreError> {
        Ok(self.sharded_or_err()?.resume_reshard()?)
    }

    /// The in-flight migration, if any (`None` also on single-store
    /// backends, which cannot reshard).
    pub fn reshard_status(&self) -> Option<ReshardStatus> {
        self.sharded().and_then(|s| s.reshard_status())
    }

    /// Backend-routed raw single-cell put into the `Jobs` table (the
    /// workflow layer's plan rows ride on this). The row key is
    /// namespace-relative; tenant views write into their own prefix.
    pub(crate) fn raw_put(&self, mut put: Put) -> Result<(), ProfileStoreError> {
        if !self.ns.is_empty() {
            put.row = Bytes::from([self.ns.as_bytes(), put.row.as_ref()].concat());
        }
        Ok(self.store.put(TABLE, put)?)
    }

    /// Backend-routed raw row get from the `Jobs` table
    /// (namespace-relative, like [`Self::raw_put`]).
    pub(crate) fn raw_get(&self, row: &[u8]) -> Result<Option<RowResult>, ProfileStoreError> {
        let full = [self.ns.as_bytes(), row].concat();
        Ok(self.store.get(TABLE, &full)?)
    }
}

/// Lane width of the chunked struct-of-arrays sweep matrices: eight f64s
/// fill one 64-byte cache line and one AVX-512 register (two AVX2 ones),
/// and LLVM reliably autovectorizes fixed-trip-count loops of this width.
pub const SWEEP_LANES: usize = 8;

/// A dense feature matrix blocked for the stage-1 sweep: rows are grouped
/// into chunks of [`SWEEP_LANES`], and *within* a chunk values are stored
/// dimension-major — a struct-of-arrays layout where each dimension's
/// eight values are contiguous. The sweep then runs dimensions-outer /
/// lanes-inner over fixed-width slices, which the compiler turns into
/// packed SIMD without any explicit intrinsics.
///
/// Each row's distance still accumulates its dimensions in order and
/// compares `acc.sqrt() <= theta`, exactly like the scalar
/// [`MinMaxNormalizer::distance`]; only the loop nest is interchanged, so
/// survivor sets are bit-identical (property-tested against the scan
/// oracle in `tests/tests/property_columnar.rs`).
#[derive(Debug, Clone)]
struct LaneMatrix {
    dims: usize,
    len: usize,
    /// `len.div_ceil(SWEEP_LANES) * dims * SWEEP_LANES` values; row `r`,
    /// dimension `d` lives at
    /// `(r / SWEEP_LANES * dims + d) * SWEEP_LANES + r % SWEEP_LANES`.
    /// Padding rows hold 0.0 and are excluded by the `len` bound.
    data: Vec<f64>,
}

impl LaneMatrix {
    fn empty(dims: usize) -> LaneMatrix {
        LaneMatrix {
            dims,
            len: 0,
            data: Vec::new(),
        }
    }

    fn from_row_major(rows: &[f64], dims: usize, len: usize) -> LaneMatrix {
        debug_assert_eq!(rows.len(), dims * len);
        let mut data = vec![0.0; len.div_ceil(SWEEP_LANES) * dims * SWEEP_LANES];
        for r in 0..len {
            for d in 0..dims {
                data[(r / SWEEP_LANES * dims + d) * SWEEP_LANES + r % SWEEP_LANES] =
                    rows[r * dims + d];
            }
        }
        LaneMatrix { dims, len, data }
    }

    /// Rows whose distance to the prepared query is within `theta`, in row
    /// order; rows where `mask` is false are dropped after the distance
    /// check (matching the scalar sweeps, which also evaluate the masked
    /// predicate per row).
    fn sweep(&self, prep: &[DimPrep], theta: f64, mask: Option<&[bool]>) -> Vec<usize> {
        let mut out = Vec::new();
        let width = self.dims * SWEEP_LANES;
        for (c, chunk) in self.data.chunks_exact(width).enumerate() {
            let mut acc = [0.0f64; SWEEP_LANES];
            for (d, p) in prep.iter().enumerate() {
                let ys = &chunk[d * SWEEP_LANES..(d + 1) * SWEEP_LANES];
                match *p {
                    // The hot regime: branch-free per lane, vectorizes.
                    DimPrep::Scaled { min, range, nx } => {
                        for (a, y) in acc.iter_mut().zip(ys) {
                            let dd = nx - ((y - min) / range).clamp(0.0, 1.0);
                            *a += dd * dd;
                        }
                    }
                    // Degenerate dimensions carry a data-dependent branch;
                    // rare (near-empty stores), so scalar is fine.
                    DimPrep::Degenerate { .. } => {
                        for (a, y) in acc.iter_mut().zip(ys) {
                            let dd = p.delta(*y);
                            *a += dd * dd;
                        }
                    }
                }
            }
            let base = c * SWEEP_LANES;
            for (l, a) in acc.iter().enumerate() {
                let row = base + l;
                if row >= self.len {
                    break;
                }
                if a.sqrt() <= theta && mask.is_none_or(|m| m[row]) {
                    out.push(row);
                }
            }
        }
        out
    }
}

/// A columnar, contiguous in-memory projection of the store's numeric
/// feature rows, in `Dynamic/` key (= lexicographic job id) order.
///
/// Stage 1 of the matcher is a dense distance sweep over every stored
/// profile; doing it over contiguous matrices replaces one B-tree
/// traversal + column decode per row with a linear scan of a few cache
/// lines per candidate. The dynamic-feature matrices are kept twice: a
/// row-major copy serving the per-row accessors (and the scalar reference
/// sweeps), and a `LaneMatrix` blocked for the vectorized sweep — a few
/// dozen bytes per row buys the hot path its SIMD layout. The statics and
/// cost factors ride along so the later stages become array lookups
/// instead of per-job point-gets. The [`MiniStore`] scan path remains the
/// oracle: property tests assert both produce identical stage-1 survivor
/// sets.
#[derive(Debug, Clone)]
pub struct ColumnarIndex {
    job_ids: Vec<String>,
    /// Row-major `len() x MAP_DYNAMIC_COLUMNS.len()`.
    map_dyn: Vec<f64>,
    /// Row-major `len() x RED_DYNAMIC_COLUMNS.len()`; zero-padded for
    /// map-only jobs (masked by `has_reduce`).
    red_dyn: Vec<f64>,
    /// Lane-blocked copy of `map_dyn` (the vectorized sweep operand).
    map_lanes: LaneMatrix,
    /// Lane-blocked copy of `red_dyn`.
    red_lanes: LaneMatrix,
    has_reduce: Vec<bool>,
    /// Row-major `len() x CostFactors::names().len()`.
    cost: Vec<f64>,
    input_bytes: Vec<f64>,
    statics: Vec<Option<StoredStatics>>,
}

impl ColumnarIndex {
    pub fn len(&self) -> usize {
        self.job_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.job_ids.is_empty()
    }

    pub fn job_id(&self, row: usize) -> &str {
        &self.job_ids[row]
    }

    pub fn map_dyn(&self, row: usize) -> &[f64] {
        let d = MAP_DYNAMIC_COLUMNS.len();
        &self.map_dyn[row * d..(row + 1) * d]
    }

    /// `None` for map-only jobs (which cannot serve a reduce side).
    pub fn red_dyn(&self, row: usize) -> Option<&[f64]> {
        if !self.has_reduce[row] {
            return None;
        }
        let d = RED_DYNAMIC_COLUMNS.len();
        Some(&self.red_dyn[row * d..(row + 1) * d])
    }

    pub fn cost_factors(&self, row: usize) -> &[f64] {
        let d = CostFactors::names().len();
        &self.cost[row * d..(row + 1) * d]
    }

    pub fn input_bytes(&self, row: usize) -> f64 {
        self.input_bytes[row]
    }

    pub fn statics(&self, row: usize) -> Option<&StoredStatics> {
        self.statics[row].as_ref()
    }

    /// Stage-1 sweep over the map-side dynamic features: rows whose
    /// normalized Euclidean distance to `q` is within `theta`, in store
    /// order. The vectorized `LaneMatrix::sweep` performs the exact
    /// floating-point operations of [`MinMaxNormalizer::distance`] (the
    /// function the pushed-down scan filter calls) with the loop nest
    /// interchanged, so the survivor set is bit-identical to the scan
    /// path's and to [`Self::sweep_map_dyn_scalar`].
    pub fn sweep_map_dyn(&self, bounds: &MinMaxNormalizer, q: &[f64], theta: f64) -> Vec<usize> {
        self.map_lanes.sweep(&bounds.prepare(q), theta, None)
    }

    /// Stage-1 sweep over the reduce-side dynamic features; map-only rows
    /// never survive.
    pub fn sweep_red_dyn(&self, bounds: &MinMaxNormalizer, q: &[f64], theta: f64) -> Vec<usize> {
        self.red_lanes
            .sweep(&bounds.prepare(q), theta, Some(&self.has_reduce))
    }

    /// The pre-vectorization map-side sweep: one scalar
    /// [`MinMaxNormalizer::distance`] call per row-major row. Kept as the
    /// reference implementation the property suite and `perf_report`
    /// compare the lane-blocked sweep against.
    pub fn sweep_map_dyn_scalar(
        &self,
        bounds: &MinMaxNormalizer,
        q: &[f64],
        theta: f64,
    ) -> Vec<usize> {
        self.map_dyn
            .chunks_exact(MAP_DYNAMIC_COLUMNS.len())
            .enumerate()
            .filter(|(_, row)| bounds.distance(q, row) <= theta)
            .map(|(i, _)| i)
            .collect()
    }

    /// Scalar reference for [`Self::sweep_red_dyn`].
    pub fn sweep_red_dyn_scalar(
        &self,
        bounds: &MinMaxNormalizer,
        q: &[f64],
        theta: f64,
    ) -> Vec<usize> {
        self.red_dyn
            .chunks_exact(RED_DYNAMIC_COLUMNS.len())
            .enumerate()
            .filter(|(i, row)| self.has_reduce[*i] && bounds.distance(q, row) <= theta)
            .map(|(i, _)| i)
            .collect()
    }
}

fn job_id_of(row_key: &[u8], skip: usize) -> Result<String, ProfileStoreError> {
    std::str::from_utf8(&row_key[skip..])
        .map(str::to_string)
        .map_err(|_| ProfileStoreError::Corrupt("non-UTF8 job id".to_string()))
}

fn decode_statics(row: &RowResult) -> Result<StoredStatics, ProfileStoreError> {
    let read_side =
        |names: &[&'static str], cfg_col: &str| -> Result<SideFeatures, ProfileStoreError> {
            let mut categorical = Vec::with_capacity(names.len());
            for name in names {
                let v = row
                    .value(FAMILY, name.as_bytes())
                    .map(|b| String::from_utf8_lossy(b).to_string())
                    .unwrap_or_else(|| "NULL".to_string());
                categorical.push((*name, v));
            }
            let cfg: Option<Cfg> = match row.value(FAMILY, cfg_col.as_bytes()) {
                Some(bytes) => Some(decode_cfg(bytes)?),
                None => None,
            };
            Ok(SideFeatures { categorical, cfg })
        };
    Ok(StoredStatics {
        map: read_side(
            &[
                "IN_FORMATTER",
                "MAPPER",
                "MAP_IN_KEY",
                "MAP_IN_VAL",
                "MAP_OUT_KEY",
                "MAP_OUT_VAL",
                "COMBINER",
                "PARTITIONER",
            ],
            "MAP_CFG",
        )?,
        reduce: read_side(
            &[
                "REDUCER",
                "RED_OUT_KEY",
                "RED_OUT_VAL",
                "OUT_FORMATTER",
                "RED_IN_KEY",
                "RED_IN_VAL",
            ],
            "RED_CFG",
        )?,
    })
}

fn decode_cost_factors(row: &RowResult, job_id: &str) -> Result<Vec<f64>, ProfileStoreError> {
    let mut v = Vec::with_capacity(CostFactors::names().len());
    for name in CostFactors::names() {
        let bytes = row.value(FAMILY, name.as_bytes()).ok_or_else(|| {
            ProfileStoreError::Corrupt(format!("CostFactor/{job_id} missing {name}"))
        })?;
        v.push(decode_f64(bytes)?);
    }
    Ok(v)
}

/// A decoded `Dynamic/` row as seen by pushdown predicates.
#[derive(Debug, Clone)]
pub struct DynamicRow {
    pub job_id: String,
    pub map_dyn: Vec<f64>,
    pub red_dyn: Option<Vec<f64>>,
    pub input_bytes: f64,
}

impl DynamicRow {
    /// `skip` is the namespace + `Dynamic/` prefix length of the view
    /// that scanned the row ([`ProfileStore::skip`]).
    fn parse(row: &RowResult, skip: usize) -> Option<DynamicRow> {
        let job_id = std::str::from_utf8(row.row.get(skip..)?).ok()?;
        let mut map_dyn = Vec::with_capacity(MAP_DYNAMIC_COLUMNS.len());
        for c in MAP_DYNAMIC_COLUMNS {
            map_dyn.push(decode_f64(row.value(FAMILY, c.as_bytes())?).ok()?);
        }
        let has_reduce = decode_f64(row.value(FAMILY, HAS_REDUCE_COLUMN.as_bytes())?).ok()? > 0.5;
        let red_dyn = if has_reduce {
            let mut v = Vec::with_capacity(RED_DYNAMIC_COLUMNS.len());
            for c in RED_DYNAMIC_COLUMNS {
                v.push(decode_f64(row.value(FAMILY, c.as_bytes())?).ok()?);
            }
            Some(v)
        } else {
            None
        };
        let input_bytes = decode_f64(row.value(FAMILY, INPUT_BYTES_COLUMN.as_bytes())?).ok()?;
        Some(DynamicRow {
            job_id: job_id.to_string(),
            map_dyn,
            red_dyn,
            input_bytes,
        })
    }
}

/// The store-maintained normalization bounds for the three numeric feature
/// spaces.
#[derive(Debug, Clone)]
pub struct NormalizationBounds {
    pub map_dyn: MinMaxNormalizer,
    pub red_dyn: MinMaxNormalizer,
    pub cost: MinMaxNormalizer,
}

fn identity_bounds(dim: usize) -> MinMaxNormalizer {
    MinMaxNormalizer {
        mins: vec![f64::INFINITY; dim],
        maxs: vec![f64::NEG_INFINITY; dim],
    }
}

fn encode_bounds(n: &MinMaxNormalizer) -> Bytes {
    let mut all = n.mins.clone();
    all.extend(&n.maxs);
    encode_f64_vec(&all)
}

fn decode_bounds(bytes: &[u8]) -> Result<MinMaxNormalizer, ProfileStoreError> {
    let all = decode_f64_vec(bytes)?;
    let dim = all.len() / 2;
    Ok(MinMaxNormalizer {
        mins: all[..dim].to_vec(),
        maxs: all[dim..].to_vec(),
    })
}

fn f64_put(row: Bytes, column: &str, v: f64) -> Put {
    Put::new(
        row,
        FAMILY,
        Bytes::copy_from_slice(column.as_bytes()),
        encode_f64(v),
    )
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new().expect("fresh store")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{ClusterSpec, JobConfig};
    use profiler::collect_full_profile;

    fn profile_of(spec: &mrjobs::JobSpec, ds: &mrjobs::Dataset) -> (StaticFeatures, JobProfile) {
        let (profile, _) = collect_full_profile(
            spec,
            ds,
            &ClusterSpec::ec2_c1_medium_16(),
            &JobConfig::submitted(spec),
            7,
        )
        .unwrap();
        (StaticFeatures::extract(spec), profile)
    }

    #[test]
    fn put_and_get_roundtrip() {
        let store = ProfileStore::new().unwrap();
        let (statics, profile) = profile_of(&jobs::word_count(), &corpus::random_text_1g());
        store.put_profile(&statics, &profile).unwrap();
        let got = store.get_profile(&profile.job_id).unwrap().unwrap();
        assert_eq!(got, profile);
        assert_eq!(store.job_ids().unwrap(), vec![profile.job_id.clone()]);
        assert_eq!(store.len().unwrap(), 1);
    }

    #[test]
    fn corrupted_profile_blob_surfaces_as_typed_error() {
        let store = ProfileStore::new().unwrap();
        let (statics, profile) = profile_of(&jobs::word_count(), &corpus::random_text_1g());
        store.put_profile(&statics, &profile).unwrap();

        let row = format!("Profile/{}", profile.job_id);
        assert!(store.corrupt_cell(row.as_bytes(), b"blob").unwrap());
        match store.get_profile(&profile.job_id) {
            Err(ProfileStoreError::Store(StoreError::Corruption { row, column })) => {
                assert!(row.starts_with("Profile/"));
                assert_eq!(column, "blob");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        // The error chain stays walkable down to the store layer.
        let err = store.get_profile(&profile.job_id).unwrap_err();
        let src = std::error::Error::source(&err).expect("source preserved");
        assert!(src.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn statics_roundtrip_preserves_cfg_matching() {
        let store = ProfileStore::new().unwrap();
        let spec = jobs::word_cooccurrence_pairs(2);
        let (statics, profile) = profile_of(&spec, &corpus::random_text_1g());
        store.put_profile(&statics, &profile).unwrap();
        let stored = store.get_statics(&profile.job_id).unwrap().unwrap();
        assert_eq!(stored.map.jaccard(&statics.map), 1.0);
        assert_eq!(stored.map.cfg_match(&statics.map), 1.0);
        assert_eq!(stored.reduce.jaccard(&statics.reduce), 1.0);
    }

    #[test]
    fn dynamic_filter_pushdown_prunes_rows() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        for spec in [jobs::word_count(), jobs::word_cooccurrence_pairs(2)] {
            let (s, p) = profile_of(&spec, &text);
            store.put_profile(&s, &p).unwrap();
        }
        // Keep only profiles with large map size selectivity.
        let (rows, metrics) = store.filter_dynamic(|d| d.map_dyn[0] > 3.0).unwrap();
        assert_eq!(metrics.rows_scanned, 2);
        assert!(!rows.is_empty());
        assert!(
            rows.iter().all(|d| d.job_id.contains("cooccurrence")),
            "{rows:?}"
        );
    }

    #[test]
    fn normalization_bounds_grow_with_inserts() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        let (s1, p1) = profile_of(&jobs::word_count(), &text);
        store.put_profile(&s1, &p1).unwrap();
        let b1 = store.normalization_bounds().unwrap();
        let (s2, p2) = profile_of(&jobs::word_cooccurrence_pairs(2), &text);
        store.put_profile(&s2, &p2).unwrap();
        let b2 = store.normalization_bounds().unwrap();
        assert!(b2.map_dyn.maxs[0] >= b1.map_dyn.maxs[0]);
        assert!(b2.map_dyn.maxs[0] > b1.map_dyn.mins[0]);
    }

    #[test]
    fn delete_job_removes_all_rows() {
        let store = ProfileStore::new().unwrap();
        let (s, p) = profile_of(&jobs::word_count(), &corpus::random_text_1g());
        store.put_profile(&s, &p).unwrap();
        assert!(store.delete_job(&p.job_id).unwrap());
        assert!(store.get_profile(&p.job_id).unwrap().is_none());
        assert!(store.get_statics(&p.job_id).unwrap().is_none());
        assert!(store.is_empty().unwrap());
    }

    #[test]
    fn cost_factors_roundtrip() {
        let store = ProfileStore::new().unwrap();
        let (s, p) = profile_of(&jobs::word_count(), &corpus::random_text_1g());
        store.put_profile(&s, &p).unwrap();
        let cf = store.get_cost_factors(&p.job_id).unwrap().unwrap();
        assert_eq!(cf, p.map.cost_factors.as_vec());
    }

    #[test]
    fn columnar_index_mirrors_point_lookups() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        for spec in [jobs::word_count(), jobs::word_cooccurrence_pairs(2)] {
            let (s, p) = profile_of(&spec, &text);
            store.put_profile(&s, &p).unwrap();
        }
        let index = store.columnar_index().unwrap();
        assert_eq!(index.len(), 2);
        let mut ids: Vec<&str> = (0..index.len()).map(|i| index.job_id(i)).collect();
        let mut expected = store.job_ids().unwrap();
        expected.sort();
        assert!(ids.windows(2).all(|w| w[0] <= w[1]), "index in key order");
        ids.sort();
        assert_eq!(ids, expected.iter().map(String::as_str).collect::<Vec<_>>());
        for i in 0..index.len() {
            let id = index.job_id(i);
            assert_eq!(
                index.cost_factors(i),
                store.get_cost_factors(id).unwrap().unwrap()
            );
            let statics = index.statics(i).unwrap();
            let from_store = store.get_statics(id).unwrap().unwrap();
            assert_eq!(statics.map.jaccard(&from_store.map), 1.0);
            let profile = store.get_profile(id).unwrap().unwrap();
            assert_eq!(index.map_dyn(i), profile.map.dynamic_features());
            assert_eq!(index.input_bytes(i), profile.input_bytes);
            match &profile.reduce {
                Some(r) => assert_eq!(index.red_dyn(i).unwrap(), r.dynamic_features()),
                None => assert!(index.red_dyn(i).is_none()),
            }
        }
    }

    #[test]
    fn columnar_index_invalidates_on_writes() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        let (s1, p1) = profile_of(&jobs::word_count(), &text);
        store.put_profile(&s1, &p1).unwrap();
        let before = store.columnar_index().unwrap();
        assert_eq!(before.len(), 1);
        // Same logical snapshot is shared until the next write.
        assert!(Arc::ptr_eq(&before, &store.columnar_index().unwrap()));

        let (s2, p2) = profile_of(&jobs::word_cooccurrence_pairs(2), &text);
        store.put_profile(&s2, &p2).unwrap();
        let after_put = store.columnar_index().unwrap();
        assert_eq!(after_put.len(), 2);
        // The old Arc is a stale but intact snapshot.
        assert_eq!(before.len(), 1);

        store.delete_job(&p1.job_id).unwrap();
        let after_delete = store.columnar_index().unwrap();
        assert_eq!(after_delete.len(), 1);
        assert_eq!(after_delete.job_id(0), p2.job_id);
    }

    #[test]
    fn cached_normalization_bounds_match_stored_row() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        let (s1, p1) = profile_of(&jobs::word_count(), &text);
        store.put_profile(&s1, &p1).unwrap();
        let cached = store.normalization_bounds().unwrap();
        let decoded = store.read_normalization_bounds().unwrap();
        assert_eq!(cached.map_dyn.mins, decoded.map_dyn.mins);
        assert_eq!(cached.map_dyn.maxs, decoded.map_dyn.maxs);
        assert_eq!(cached.cost.mins, decoded.cost.mins);
        // Cache follows subsequent inserts.
        let (s2, p2) = profile_of(&jobs::word_cooccurrence_pairs(2), &text);
        store.put_profile(&s2, &p2).unwrap();
        let cached2 = store.normalization_bounds().unwrap();
        let decoded2 = store.read_normalization_bounds().unwrap();
        assert_eq!(cached2.map_dyn.maxs, decoded2.map_dyn.maxs);
        assert!(cached2.map_dyn.maxs[0] >= cached.map_dyn.maxs[0]);
    }

    #[test]
    fn batched_scans_match_point_gets() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        for spec in [
            jobs::word_count(),
            jobs::word_cooccurrence_pairs(2),
            jobs::sort(),
        ] {
            let ds = if spec.name == "sort" {
                corpus::teragen_1g()
            } else {
                text.clone()
            };
            let (s, p) = profile_of(&spec, &ds);
            store.put_profile(&s, &p).unwrap();
        }
        let all_costs = store.all_cost_factors().unwrap();
        let all_statics = store.all_statics().unwrap();
        assert_eq!(all_costs.len(), 3);
        assert_eq!(all_statics.len(), 3);
        for id in store.job_ids().unwrap() {
            assert_eq!(
                all_costs[&id],
                store.get_cost_factors(&id).unwrap().unwrap()
            );
            let a = &all_statics[&id];
            let b = store.get_statics(&id).unwrap().unwrap();
            assert_eq!(a.map.jaccard(&b.map), 1.0);
            assert_eq!(a.reduce.jaccard(&b.reduce), 1.0);
        }
    }

    #[test]
    fn durable_profile_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "pstorm-store-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let text = corpus::random_text_1g();
        let (s1, p1) = profile_of(&jobs::word_count(), &text);
        let (s2, p2) = profile_of(&jobs::word_cooccurrence_pairs(2), &text);
        let (bounds_before, index_len) = {
            let (store, report) = ProfileStore::reopen(&dir).unwrap();
            assert!(store.is_durable());
            assert_eq!(report.frames_replayed, 0);
            store.put_profile(&s1, &p1).unwrap();
            store.flush().unwrap();
            store.put_profile(&s2, &p2).unwrap(); // lives only in the WAL
            (
                store.normalization_bounds().unwrap(),
                store.columnar_index().unwrap().len(),
            )
        };
        let (store, report) = ProfileStore::reopen(&dir).unwrap();
        assert_eq!(report.segments_loaded, 1);
        assert!(
            report.frames_replayed >= 1,
            "second profile replays from WAL"
        );
        assert!(report.truncation.is_none());
        assert_eq!(store.get_profile(&p1.job_id).unwrap().unwrap(), p1);
        assert_eq!(store.get_profile(&p2.job_id).unwrap().unwrap(), p2);
        let index = store.columnar_index().unwrap();
        assert_eq!(index.len(), index_len);
        let bounds_after = store.normalization_bounds().unwrap();
        assert_eq!(bounds_after.map_dyn.mins, bounds_before.map_dyn.mins);
        assert_eq!(bounds_after.map_dyn.maxs, bounds_before.map_dyn.maxs);
        assert_eq!(bounds_after.cost.maxs, bounds_before.cost.maxs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_views_are_disjoint_namespaces() {
        let base = ProfileStore::new().unwrap();
        let acme = base.tenant_view("acme").unwrap();
        let zen = base.tenant_view("zen").unwrap();
        assert_eq!(acme.tenant(), "acme");
        let text = corpus::random_text_1g();
        let (s1, p1) = profile_of(&jobs::word_count(), &text);
        let (s2, p2) = profile_of(&jobs::word_cooccurrence_pairs(2), &text);

        acme.put_profile(&s1, &p1).unwrap();
        zen.put_profile(&s2, &p2).unwrap();
        base.put_profile(&s1, &p1).unwrap();

        // Each view sees exactly its own rows.
        assert_eq!(acme.job_ids().unwrap(), vec![p1.job_id.clone()]);
        assert_eq!(zen.job_ids().unwrap(), vec![p2.job_id.clone()]);
        assert_eq!(base.job_ids().unwrap(), vec![p1.job_id.clone()]);
        assert!(acme.get_profile(&p2.job_id).unwrap().is_none());
        assert!(zen.get_profile(&p1.job_id).unwrap().is_none());
        assert_eq!(acme.get_profile(&p1.job_id).unwrap().unwrap(), p1);

        // Columnar index and normalization bounds are per tenant: zen's
        // bounds never observed p1's features.
        assert_eq!(acme.columnar_index().unwrap().len(), 1);
        assert_eq!(zen.columnar_index().unwrap().len(), 1);
        let zb = zen.normalization_bounds().unwrap();
        let ab = acme.normalization_bounds().unwrap();
        assert_eq!(zb.map_dyn.maxs, {
            let mut b = identity_bounds(MAP_DYNAMIC_COLUMNS.len());
            b.observe(&p2.map.dynamic_features());
            b.maxs
        });
        assert_eq!(ab.map_dyn.maxs, {
            let mut b = identity_bounds(MAP_DYNAMIC_COLUMNS.len());
            b.observe(&p1.map.dynamic_features());
            b.maxs
        });

        // A tenant's corruption stays inside its namespace.
        let row = format!("Profile/{}", p1.job_id);
        assert!(acme.corrupt_cell(row.as_bytes(), b"blob").unwrap());
        assert!(acme.get_profile(&p1.job_id).is_err());
        assert_eq!(base.get_profile(&p1.job_id).unwrap().unwrap(), p1);

        // Default-tenant view = the legacy layout of the same store.
        let default_view = base.tenant_view(cfstore::encoding::DEFAULT_TENANT).unwrap();
        assert_eq!(default_view.get_profile(&p1.job_id).unwrap().unwrap(), p1);

        assert!(matches!(
            base.tenant_view("no/slash"),
            Err(ProfileStoreError::Codec(_))
        ));
    }

    #[test]
    fn missing_job_returns_none() {
        let store = ProfileStore::new().unwrap();
        assert!(store.get_profile("nope").unwrap().is_none());
        assert!(store.get_statics("nope").unwrap().is_none());
        assert!(store.get_cost_factors("nope").unwrap().is_none());
        assert!(!store.delete_job("nope").unwrap());
    }
}
