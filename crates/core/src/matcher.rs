//! The multi-stage profile matcher (Fig. 4.4).
//!
//! For each side (map, reduce) independently:
//!
//! 1. **Dynamic filter** — normalized Euclidean distance between the
//!    Table 4.1 dataflow statistics of the 1-task sample and each stored
//!    profile, pushed down to the store's region servers;
//!    θ_Eucl = ½·√(#features). An empty survivor set here is a hard
//!    *No Match Found*.
//! 2. **CFG filter** — conservative structural match of the side's CFG.
//! 3. **Jaccard filter** — positional Jaccard ≥ θ_Jacc (0.5) over the
//!    static features.
//! 4. **Tie-break** — among survivors, the profile whose source input size
//!    is closest to the submitted job's.
//!
//! When stages 2–3 empty out (a previously unseen job), the *alternative
//! filter* retries the stage-1 survivors with a Euclidean filter over the
//! cost factors — the features PStorM avoids unless necessary (§4.1.1).
//! The final answer composes the map-side winner's map profile with the
//! reduce-side winner's reduce profile.

use std::collections::HashMap;

use mlmatch::MinMaxNormalizer;
use mrjobs::JobSpec;
use profiler::JobProfile;
use staticanalysis::{SideFeatures, StaticFeatures};

use crate::store::{ColumnarIndex, DynamicRow, ProfileStore, ProfileStoreError, StoredStatics};

/// Matcher thresholds; defaults are the paper's evaluation settings (§6).
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// θ_Jacc: minimum static-feature Jaccard similarity.
    pub theta_jacc: f64,
    /// θ_Eucl as a fraction of the maximum possible normalized distance
    /// (√d); the paper uses ½.
    pub theta_eucl_fraction: f64,
    /// Ablation: run the CFG/Jaccard filters *before* the dynamic filter,
    /// the ordering §4.3 argues against (it wrongly excludes donor
    /// profiles for parameterized jobs).
    pub static_filters_first: bool,
    /// Ablation: include the high-variance cost factors in the stage-1
    /// distance (§4.1.1 argues they should be fallback-only).
    pub include_cost_factors_in_stage1: bool,
    /// Ablation: disable the input-size tie-break of §4.3.
    pub tie_break_input_size: bool,
    /// Ablation: disable composite profiles — require the map and reduce
    /// winners to be the same stored job.
    pub allow_composition: bool,
    /// Serve stage 1 (and the later stages' feature lookups) from the
    /// store's in-memory [`ColumnarIndex`] instead of pushed-down region
    /// scans. The two paths produce identical results (property-tested);
    /// the scan path is kept as the oracle and perf baseline.
    pub use_columnar_index: bool,
    /// How much the stage-1 Euclidean threshold widens for low-confidence
    /// probes: θ is scaled by `1 + widen · (1 − confidence)`. A probe built
    /// from a fault-free run (confidence 1.0) is unaffected; a heavily
    /// perturbed sample gets proportionally more slack, because its noisy
    /// dataflow statistics would otherwise wrongly exclude good donors.
    pub low_confidence_widen: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            theta_jacc: 0.5,
            theta_eucl_fraction: 0.5,
            static_filters_first: false,
            include_cost_factors_in_stage1: false,
            tie_break_input_size: true,
            allow_composition: true,
            use_columnar_index: true,
            low_confidence_widen: 0.5,
        }
    }
}

/// A job submitted for matching: static features plus the 1-task sample
/// profile.
#[derive(Debug, Clone)]
pub struct SubmittedJob {
    pub spec: JobSpec,
    pub statics: StaticFeatures,
    pub sample: JobProfile,
    /// Logical input size of the submission (tie-breaking).
    pub input_bytes: u64,
}

/// Why matching failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchFailure {
    /// The store holds no profiles at all.
    EmptyStore,
    /// No stored profile survived the dynamic-feature filter (§4.3: the
    /// matcher "declares failure to find a matching profile if the set C
    /// becomes empty after the first filter").
    NoDynamicMatch { side: Side },
    /// The alternative cost-factor filter also emptied out.
    NoCostFactorMatch { side: Side },
    /// Composition was disabled (ablation) and map/reduce winners differ.
    CompositionDisabled {
        map_source: String,
        reduce_source: String,
    },
}

/// Which matching side a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Map,
    Reduce,
}

impl Side {
    /// Lower-case label used in traces and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Side::Map => "map",
            Side::Reduce => "reduce",
        }
    }
}

/// How one side's winner was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideMatch {
    pub source_job: String,
    /// Candidates surviving each stage: (dynamic, cfg, jaccard).
    pub survivors: (usize, usize, usize),
    /// Whether the cost-factor fallback produced the winner.
    pub via_fallback: bool,
}

/// A successful match.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// The profile handed to the CBO (possibly composite).
    pub profile: JobProfile,
    pub map: SideMatch,
    /// `None` for map-only submissions.
    pub reduce: Option<SideMatch>,
}

impl MatchResult {
    /// Whether map and reduce sides came from different stored jobs.
    pub fn is_composite(&self) -> bool {
        match &self.reduce {
            Some(r) => r.source_job != self.map.source_job,
            None => false,
        }
    }
}

/// Run the Fig. 4.4 workflow against the store.
///
/// The outer `Result` carries store/IO errors; the inner one is the
/// matching verdict. Decisions are recorded into the store's
/// [`obs::Registry`] (see [`ProfileStore::set_obs`]) as a `matcher.match`
/// span with one `matcher.side` child per matched side.
///
/// # Examples
///
/// A job whose own profile is stored matches itself:
///
/// ```
/// use pstorm::matcher::{match_profile, MatcherConfig, SubmittedJob};
/// use pstorm::store::ProfileStore;
/// use profiler::SampleSize;
/// use staticanalysis::StaticFeatures;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = mrsim::ClusterSpec::ec2_c1_medium_16();
/// let spec = mrjobs::jobs::word_count();
/// let ds = datagen::corpus::random_text_1g();
/// let config = mrsim::JobConfig::submitted(&spec);
///
/// let store = ProfileStore::new()?;
/// let (profile, _) = profiler::collect_full_profile(&spec, &ds, &cluster, &config, 7)?;
/// store.put_profile(&StaticFeatures::extract(&spec), &profile)?;
///
/// let sample =
///     profiler::collect_sample_profile(&spec, &ds, &cluster, &config, SampleSize::OneTask, 3)?;
/// let q = SubmittedJob {
///     spec: spec.clone(),
///     statics: StaticFeatures::extract(&spec),
///     sample: sample.profile,
///     input_bytes: ds.logical_bytes,
/// };
/// let matched = match_profile(&store, &q, &MatcherConfig::default())?
///     .expect("the job's own profile is a perfect match");
/// assert_eq!(matched.map.source_job, spec.job_id());
/// # Ok(())
/// # }
/// ```
pub fn match_profile(
    store: &ProfileStore,
    q: &SubmittedJob,
    cfg: &MatcherConfig,
) -> Result<Result<MatchResult, MatchFailure>, ProfileStoreError> {
    let reg = store.obs().clone();
    let span = reg.span("matcher.match");
    span.attr("job_id", q.spec.job_id());
    // Only non-default tenants are tagged, so single-tenant traces (and
    // the golden trace) keep their pre-multi-tenancy bytes.
    if store.tenant() != cfstore::encoding::DEFAULT_TENANT {
        span.attr("tenant", store.tenant());
    }
    if store.is_empty()? {
        reg.incr("matcher.no_match", 1);
        span.attr("outcome", "empty_store");
        return Ok(Err(MatchFailure::EmptyStore));
    }
    let bounds = store.normalization_bounds()?;
    let index = if cfg.use_columnar_index {
        Some(store.columnar_index()?)
    } else {
        None
    };

    // ---- Map side -------------------------------------------------------
    let map_side = match match_side(
        store,
        q,
        cfg,
        Side::Map,
        &bounds.map_dyn,
        &bounds.cost,
        index.as_deref(),
    )? {
        Ok(m) => m,
        Err(f) => {
            reg.incr("matcher.no_match", 1);
            span.attr("outcome", "no_map_match");
            return Ok(Err(f));
        }
    };

    // ---- Reduce side ----------------------------------------------------
    let reduce_side = if q.sample.reduce.is_some() {
        match match_side(
            store,
            q,
            cfg,
            Side::Reduce,
            &bounds.red_dyn,
            &bounds.cost,
            index.as_deref(),
        )? {
            Ok(m) => Some(m),
            Err(f) => {
                reg.incr("matcher.no_match", 1);
                span.attr("outcome", "no_reduce_match");
                return Ok(Err(f));
            }
        }
    } else {
        None
    };

    if let Some(r) = &reduce_side {
        if !cfg.allow_composition && r.source_job != map_side.source_job {
            reg.incr("matcher.no_match", 1);
            span.attr("outcome", "composition_disabled");
            return Ok(Err(MatchFailure::CompositionDisabled {
                map_source: map_side.source_job.clone(),
                reduce_source: r.source_job.clone(),
            }));
        }
    }

    // ---- Compose --------------------------------------------------------
    let map_profile = store
        .get_profile(&map_side.source_job)?
        .ok_or_else(|| ProfileStoreError::Corrupt(format!("missing {}", map_side.source_job)))?;
    let profile = match &reduce_side {
        Some(r) if r.source_job != map_side.source_job => {
            let red_profile = store
                .get_profile(&r.source_job)?
                .ok_or_else(|| ProfileStoreError::Corrupt(format!("missing {}", r.source_job)))?;
            JobProfile::compose(&map_profile, &red_profile)
        }
        Some(_) => map_profile,
        None => {
            let mut p = map_profile;
            p.reduce = None;
            p
        }
    };

    let result = MatchResult {
        profile,
        map: map_side,
        reduce: reduce_side,
    };
    reg.incr("matcher.matched", 1);
    span.attr("outcome", "matched");
    span.attr("map_source", result.map.source_job.as_str());
    if let Some(r) = &result.reduce {
        span.attr("reduce_source", r.source_job.as_str());
    }
    span.attr("composite", result.is_composite());
    Ok(Ok(result))
}

/// A stage-1 survivor, borrowing its features from whichever backing the
/// path used (columnar index rows, or the owned scan results).
struct Candidate<'a> {
    job_id: &'a str,
    /// The matched side's dynamic features.
    dyn_feats: &'a [f64],
    input_bytes: f64,
    statics: Option<&'a StoredStatics>,
    /// Row in the columnar index; `None` on the scan path.
    index_row: Option<usize>,
}

fn match_side(
    store: &ProfileStore,
    q: &SubmittedJob,
    cfg: &MatcherConfig,
    side: Side,
    dyn_bounds: &MinMaxNormalizer,
    cost_bounds: &MinMaxNormalizer,
    index: Option<&ColumnarIndex>,
) -> Result<Result<SideMatch, MatchFailure>, ProfileStoreError> {
    let (q_dyn, q_side): (Vec<f64>, &SideFeatures) = match side {
        Side::Map => (q.sample.map.dynamic_features(), &q.statics.map),
        Side::Reduce => (
            q.sample
                .reduce
                .as_ref()
                .expect("reduce side matching requires a reduce sample")
                .dynamic_features(),
            &q.statics.reduce,
        ),
    };
    // Graceful degradation: a probe profiled under faults carries partial,
    // noisier statistics; widen the stage-1 acceptance band in proportion
    // to how much of the sampled work actually completed cleanly.
    let widen = 1.0 + cfg.low_confidence_widen * (1.0 - q.sample.confidence.clamp(0.0, 1.0));
    let theta = cfg.theta_eucl_fraction * (q_dyn.len() as f64).sqrt() * widen;

    let reg = store.obs().clone();
    let side_span = reg.span("matcher.side");
    side_span.attr("side", side.label());
    side_span.attr("theta", theta);
    side_span.attr("columnar", index.is_some());
    if widen > 1.0 {
        reg.event(
            "matcher.confidence_widen",
            &[
                ("side", side.label().into()),
                ("confidence", q.sample.confidence.into()),
                ("widen", widen.into()),
            ],
        );
        reg.incr("matcher.confidence_widened", 1);
    }

    // Stage 1: dynamic-feature Euclidean filter — a vectorized sweep of
    // the columnar index, or the legacy pushed-down region scan. Both call
    // the same `MinMaxNormalizer::distance` and visit rows in the same
    // (key) order, so the survivor lists are identical.
    let scan_rows: Vec<DynamicRow>;
    let mut scan_statics: HashMap<String, StoredStatics> = HashMap::new();
    let mut stage1: Vec<Candidate<'_>> = Vec::new();
    let candidates_in: usize;
    match index {
        Some(ix) => {
            candidates_in = ix.len();
            let rows = match side {
                Side::Map => ix.sweep_map_dyn(dyn_bounds, &q_dyn, theta),
                Side::Reduce => ix.sweep_red_dyn(dyn_bounds, &q_dyn, theta),
            };
            for i in rows {
                let dyn_feats = match side {
                    Side::Map => ix.map_dyn(i),
                    Side::Reduce => ix.red_dyn(i).expect("reduce sweep only yields reduce rows"),
                };
                stage1.push(Candidate {
                    job_id: ix.job_id(i),
                    dyn_feats,
                    input_bytes: ix.input_bytes(i),
                    statics: ix.statics(i),
                    index_row: Some(i),
                });
            }
        }
        None => {
            let bounds = dyn_bounds.clone();
            let q_dyn_cl = q_dyn.clone();
            let (rows, metrics) = store.filter_dynamic(move |row: &DynamicRow| {
                let stored: Option<&[f64]> = match side {
                    Side::Map => Some(&row.map_dyn),
                    Side::Reduce => row.red_dyn.as_deref(),
                };
                match stored {
                    Some(v) => bounds.distance(&q_dyn_cl, v) <= theta,
                    None => false, // map-only rows cannot serve a reduce side
                }
            })?;
            candidates_in = metrics.rows_scanned as usize;
            scan_rows = rows;
            // One batched prefix scan for the statics the later stages
            // need, instead of a point-get per surviving row.
            if !scan_rows.is_empty() {
                scan_statics = store.all_statics()?;
            }
            for row in &scan_rows {
                let dyn_feats: &[f64] = match side {
                    Side::Map => &row.map_dyn,
                    Side::Reduce => row.red_dyn.as_deref().expect("filter kept reduce rows"),
                };
                stage1.push(Candidate {
                    job_id: &row.job_id,
                    dyn_feats,
                    input_bytes: row.input_bytes,
                    statics: scan_statics.get(row.job_id.as_str()),
                    index_row: None,
                });
            }
        }
    }

    // Cost factors for a candidate: an index row slice, or a lazily
    // batch-scanned table on the legacy path (never per-row point-gets).
    let scan_costs_for =
        |cands: &[Candidate<'_>]| -> Result<HashMap<String, Vec<f64>>, ProfileStoreError> {
            if index.is_none() && !cands.is_empty() {
                store.all_cost_factors()
            } else {
                Ok(HashMap::new())
            }
        };

    // Ablation: also require cost-factor proximity at stage 1 (the paper
    // keeps these high-variance features out of the primary vector).
    if cfg.include_cost_factors_in_stage1 {
        let q_cost = q.sample.map.cost_factors.as_vec();
        let theta_cost = cfg.theta_eucl_fraction * (q_cost.len() as f64).sqrt();
        let costs = scan_costs_for(&stage1)?;
        stage1.retain(|c| {
            let stored: Option<&[f64]> = match (index, c.index_row) {
                (Some(ix), Some(i)) => Some(ix.cost_factors(i)),
                _ => costs.get(c.job_id).map(Vec::as_slice),
            };
            match stored {
                Some(v) => cost_bounds.distance(&q_cost, v) <= theta_cost,
                None => false,
            }
        });
    }
    // Ablation: the wrong filter order — prune by static features before
    // trusting the dynamics.
    if cfg.static_filters_first {
        stage1.retain(|c| {
            let Some(statics) = c.statics else {
                return false;
            };
            let stored_side = match side {
                Side::Map => &statics.map,
                Side::Reduce => &statics.reduce,
            };
            q_side.cfg_match(stored_side) == 1.0 && q_side.jaccard(stored_side) >= cfg.theta_jacc
        });
    }
    reg.incr("matcher.stage1.candidates_in", candidates_in as u64);
    reg.incr("matcher.stage1.survivors", stage1.len() as u64);
    side_span.attr("candidates_in", candidates_in);
    side_span.attr("stage1", stage1.len());
    if stage1.is_empty() {
        side_span.attr("outcome", "no_dynamic_match");
        return Ok(Err(MatchFailure::NoDynamicMatch { side }));
    }

    // Stages 2 & 3: CFG and Jaccard over stored static features.
    let mut stage2 = Vec::new();
    let mut stage3: Vec<(&Candidate<'_>, f64)> = Vec::new();
    for cand in &stage1 {
        let Some(statics) = cand.statics else {
            continue;
        };
        let stored_side = match side {
            Side::Map => &statics.map,
            Side::Reduce => &statics.reduce,
        };
        if q_side.cfg_match(stored_side) == 1.0 {
            stage2.push(cand);
            let jacc = q_side.jaccard(stored_side);
            if jacc >= cfg.theta_jacc {
                stage3.push((cand, jacc));
            }
        }
    }

    // Tie-break by closest input size (§4.3), then by smallest dynamic
    // distance for candidates on the very same dataset.
    let dyn_distance = |c: &Candidate<'_>| -> f64 { dyn_bounds.distance(&q_dyn, c.dyn_feats) };
    let pick = |candidates: &[&Candidate<'_>]| -> String {
        candidates
            .iter()
            .min_by(|a, b| {
                if cfg.tie_break_input_size {
                    let da = (a.input_bytes - q.input_bytes as f64).abs();
                    let db = (b.input_bytes - q.input_bytes as f64).abs();
                    da.total_cmp(&db)
                        .then_with(|| dyn_distance(a).total_cmp(&dyn_distance(b)))
                } else {
                    // Ablation: no size tie-break; an arbitrary but
                    // deterministic pick among the candidates.
                    std::cmp::Ordering::Less
                }
            })
            .expect("non-empty candidate set")
            .job_id
            .to_string()
    };

    reg.incr("matcher.stage2.survivors", stage2.len() as u64);
    reg.incr("matcher.stage3.survivors", stage3.len() as u64);
    side_span.attr("stage2", stage2.len());
    side_span.attr("stage3", stage3.len());

    if !stage3.is_empty() {
        // Among Jaccard survivors, the most statically similar candidates
        // win before the input-size tie-break: a full static match (the
        // job itself, or its twin on other data) always beats a partial
        // one from the same job family.
        let best_jacc = stage3
            .iter()
            .map(|(_, j)| *j)
            .fold(f64::NEG_INFINITY, f64::max);
        let finalists: Vec<&Candidate<'_>> = stage3
            .iter()
            .filter(|(_, j)| (*j - best_jacc).abs() < 1e-9)
            .map(|(c, _)| *c)
            .collect();
        let source_job = pick(&finalists);
        side_span.attr("outcome", "matched");
        side_span.attr("winner", source_job.as_str());
        side_span.attr("via_fallback", false);
        return Ok(Ok(SideMatch {
            source_job,
            survivors: (stage1.len(), stage2.len(), stage3.len()),
            via_fallback: false,
        }));
    }

    // Alternative filter: Euclidean over the cost factors of the stage-1
    // survivors (the paper's fallback for previously unseen jobs).
    let q_cost = q.sample.map.cost_factors.as_vec();
    let theta_cost = cfg.theta_eucl_fraction * (q_cost.len() as f64).sqrt();
    let costs = scan_costs_for(&stage1)?;
    let fallback: Vec<&Candidate<'_>> = stage1
        .iter()
        .filter(|c| {
            let stored: Option<&[f64]> = match (index, c.index_row) {
                (Some(ix), Some(i)) => Some(ix.cost_factors(i)),
                _ => costs.get(c.job_id).map(Vec::as_slice),
            };
            match stored {
                Some(v) => cost_bounds.distance(&q_cost, v) <= theta_cost,
                None => false,
            }
        })
        .collect();
    reg.incr("matcher.fallback.survivors", fallback.len() as u64);
    side_span.attr("fallback", fallback.len());
    if fallback.is_empty() {
        side_span.attr("outcome", "no_cost_factor_match");
        return Ok(Err(MatchFailure::NoCostFactorMatch { side }));
    }
    let source_job = pick(&fallback);
    side_span.attr("outcome", "matched");
    side_span.attr("winner", source_job.as_str());
    side_span.attr("via_fallback", true);
    Ok(Ok(SideMatch {
        source_job,
        survivors: (stage1.len(), stage2.len(), stage3.len()),
        via_fallback: true,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{ClusterSpec, JobConfig};
    use profiler::{collect_full_profile, collect_sample_profile, SampleSize};

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    fn store_with(jobs_and_data: &[(mrjobs::JobSpec, mrjobs::Dataset)]) -> ProfileStore {
        let store = ProfileStore::new().unwrap();
        for (spec, ds) in jobs_and_data {
            let (profile, _) =
                collect_full_profile(spec, ds, &cl(), &JobConfig::submitted(spec), 17).unwrap();
            store
                .put_profile(&StaticFeatures::extract(spec), &profile)
                .unwrap();
        }
        store
    }

    fn submitted(spec: &mrjobs::JobSpec, ds: &mrjobs::Dataset, seed: u64) -> SubmittedJob {
        let run = collect_sample_profile(
            spec,
            ds,
            &cl(),
            &JobConfig::submitted(spec),
            SampleSize::OneTask,
            seed,
        )
        .unwrap();
        SubmittedJob {
            spec: spec.clone(),
            statics: StaticFeatures::extract(spec),
            sample: run.profile,
            input_bytes: ds.logical_bytes,
        }
    }

    #[test]
    fn sd_state_returns_the_same_job() {
        let text = corpus::random_text_1g();
        let store = store_with(&[
            (jobs::word_count(), text.clone()),
            (jobs::word_cooccurrence_pairs(2), text.clone()),
            (jobs::sort(), corpus::teragen_1g()),
        ]);
        let q = submitted(&jobs::word_count(), &text, 3);
        let result = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(result.map.source_job, "word-count");
        assert_eq!(result.reduce.as_ref().unwrap().source_job, "word-count");
        assert!(!result.is_composite());
        assert!(!result.map.via_fallback);
    }

    #[test]
    fn empty_store_fails_cleanly() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        let q = submitted(&jobs::word_count(), &text, 3);
        let failure = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap_err();
        assert_eq!(failure, MatchFailure::EmptyStore);
    }

    #[test]
    fn unseen_job_composes_from_similar_profiles() {
        // The headline scenario: bigram-relative-frequency's profile serves
        // a never-before-seen co-occurrence submission.
        let text = corpus::wikipedia_35g();
        let store = store_with(&[
            (jobs::bigram_relative_frequency(), text.clone()),
            (jobs::word_count(), text.clone()),
            (jobs::sort(), corpus::teragen_35g()),
        ]);
        let q = submitted(&jobs::word_cooccurrence_pairs(2), &text, 5);
        let outcome = match_profile(&store, &q, &MatcherConfig::default()).unwrap();
        let result = outcome.expect("co-occurrence should match something");
        // The profile must come from a donor (co-occurrence itself is absent).
        assert_ne!(result.map.source_job, q.sample.job_id);
        assert!(
            result.map.via_fallback
                || result
                    .reduce
                    .as_ref()
                    .map(|r| r.via_fallback)
                    .unwrap_or(false)
                || result.is_composite()
                || !result.map.source_job.is_empty()
        );
    }

    #[test]
    fn wildly_different_job_reports_no_dynamic_match() {
        // Only low-selectivity jobs are stored (a single entry would make
        // the min-max bounds degenerate and every distance zero); a
        // co-occurrence submission has dataflow statistics far outside the
        // stored range.
        let store = store_with(&[
            (jobs::sort(), corpus::teragen_1g()),
            (jobs::join(), corpus::tpch_1g()),
            (jobs::cf_user_vectors(), corpus::ratings_1m()),
        ]);
        let q = submitted(
            &jobs::word_cooccurrence_pairs(2),
            &corpus::random_text_1g(),
            5,
        );
        let failure = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap_err();
        assert!(
            matches!(
                failure,
                MatchFailure::NoDynamicMatch { .. } | MatchFailure::NoCostFactorMatch { .. }
            ),
            "{failure:?}"
        );
    }

    #[test]
    fn map_only_submission_skips_reduce_matching() {
        let text = corpus::random_text_1g();
        let mut spec = jobs::word_count();
        spec.reduce_udf = None;
        spec.reducer_class = None;
        spec.combine_udf = None;
        spec.combiner_class = None;
        spec.name = "word-count-maponly".to_string();
        let store = store_with(&[
            (spec.clone(), text.clone()),
            (jobs::word_count(), text.clone()),
        ]);
        let q = submitted(&spec, &text, 9);
        let result = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap();
        assert!(result.reduce.is_none());
        assert!(result.profile.reduce.is_none());
    }

    #[test]
    fn columnar_and_scan_paths_agree() {
        let text = corpus::random_text_1g();
        let store = store_with(&[
            (jobs::word_count(), text.clone()),
            (jobs::word_cooccurrence_pairs(2), text.clone()),
            (jobs::bigram_relative_frequency(), text.clone()),
            (jobs::sort(), corpus::teragen_1g()),
        ]);
        let scan_cfg = MatcherConfig {
            use_columnar_index: false,
            ..MatcherConfig::default()
        };
        for (spec, seed) in [
            (jobs::word_count(), 3),
            (jobs::word_count_while_variant(), 11),
            (jobs::word_cooccurrence_pairs(2), 5),
            (jobs::word_cooccurrence_stripes(2), 7), // far-out dynamics: failure paths must agree too
        ] {
            let q = submitted(&spec, &text, seed);
            let via_index = match_profile(&store, &q, &MatcherConfig::default()).unwrap();
            let via_scan = match_profile(&store, &q, &scan_cfg).unwrap();
            match (via_index, via_scan) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.map, b.map, "{}", spec.name);
                    assert_eq!(a.reduce, b.reduce, "{}", spec.name);
                    assert_eq!(a.profile, b.profile, "{}", spec.name);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{}", spec.name),
                (a, b) => panic!("{}: paths disagree: {a:?} vs {b:?}", spec.name),
            }
        }
    }

    #[test]
    fn low_confidence_probe_widens_stage1_band() {
        // Under a tight stage-1 band, a store of dissimilar jobs rejects a
        // co-occurrence probe at stage 1 (dynamics outside the band). A
        // low-confidence version of the same probe with an aggressive widen
        // factor gets enough extra slack to survive stage 1.
        let store = store_with(&[
            (jobs::sort(), corpus::teragen_1g()),
            (jobs::join(), corpus::tpch_1g()),
            (jobs::cf_user_vectors(), corpus::ratings_1m()),
        ]);
        let mut q = submitted(
            &jobs::word_cooccurrence_pairs(2),
            &corpus::random_text_1g(),
            5,
        );
        let strict_cfg = MatcherConfig {
            theta_eucl_fraction: 0.02,
            ..MatcherConfig::default()
        };
        let strict = match_profile(&store, &q, &strict_cfg).unwrap().unwrap_err();
        assert!(
            matches!(strict, MatchFailure::NoDynamicMatch { .. }),
            "{strict:?}"
        );

        // confidence 0.2 scales θ by 1 + 100·0.8 = 81×, past the default
        // band that is known to admit at least one of these candidates.
        q.sample.confidence = 0.2;
        let widened_cfg = MatcherConfig {
            low_confidence_widen: 100.0,
            ..strict_cfg
        };
        let widened = match_profile(&store, &q, &widened_cfg).unwrap();
        assert!(
            !matches!(widened, Err(MatchFailure::NoDynamicMatch { .. })),
            "stage 1 should have been widened: {widened:?}"
        );

        // A full-confidence probe is unaffected by the widen factor.
        q.sample.confidence = 1.0;
        let unaffected = match_profile(&store, &q, &widened_cfg)
            .unwrap()
            .unwrap_err();
        assert!(matches!(unaffected, MatchFailure::NoDynamicMatch { .. }));
    }

    #[test]
    fn word_count_variant_matches_original_via_cfg() {
        // Different mapper class name, same CFG: the while-variant should
        // match the stored for-variant profile.
        let text = corpus::random_text_1g();
        let store = store_with(&[
            (jobs::word_count(), text.clone()),
            (jobs::sort(), corpus::teragen_1g()),
        ]);
        let q = submitted(&jobs::word_count_while_variant(), &text, 11);
        let result = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(result.map.source_job, "word-count");
        assert!(!result.map.via_fallback, "CFG+Jaccard path should succeed");
    }
}
