//! The multi-stage profile matcher (Fig. 4.4).
//!
//! For each side (map, reduce) independently:
//!
//! 1. **Dynamic filter** — normalized Euclidean distance between the
//!    Table 4.1 dataflow statistics of the 1-task sample and each stored
//!    profile, pushed down to the store's region servers;
//!    θ_Eucl = ½·√(#features). An empty survivor set here is a hard
//!    *No Match Found*.
//! 2. **CFG filter** — conservative structural match of the side's CFG.
//! 3. **Jaccard filter** — positional Jaccard ≥ θ_Jacc (0.5) over the
//!    static features.
//! 4. **Tie-break** — among survivors, the profile whose source input size
//!    is closest to the submitted job's.
//!
//! When stages 2–3 empty out (a previously unseen job), the *alternative
//! filter* retries the stage-1 survivors with a Euclidean filter over the
//! cost factors — the features PStorM avoids unless necessary (§4.1.1).
//! The final answer composes the map-side winner's map profile with the
//! reduce-side winner's reduce profile.

use mlmatch::MinMaxNormalizer;
use mrjobs::JobSpec;
use profiler::JobProfile;
use staticanalysis::{SideFeatures, StaticFeatures};

use crate::store::{DynamicRow, ProfileStore, ProfileStoreError};

/// Matcher thresholds; defaults are the paper's evaluation settings (§6).
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// θ_Jacc: minimum static-feature Jaccard similarity.
    pub theta_jacc: f64,
    /// θ_Eucl as a fraction of the maximum possible normalized distance
    /// (√d); the paper uses ½.
    pub theta_eucl_fraction: f64,
    /// Ablation: run the CFG/Jaccard filters *before* the dynamic filter,
    /// the ordering §4.3 argues against (it wrongly excludes donor
    /// profiles for parameterized jobs).
    pub static_filters_first: bool,
    /// Ablation: include the high-variance cost factors in the stage-1
    /// distance (§4.1.1 argues they should be fallback-only).
    pub include_cost_factors_in_stage1: bool,
    /// Ablation: disable the input-size tie-break of §4.3.
    pub tie_break_input_size: bool,
    /// Ablation: disable composite profiles — require the map and reduce
    /// winners to be the same stored job.
    pub allow_composition: bool,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            theta_jacc: 0.5,
            theta_eucl_fraction: 0.5,
            static_filters_first: false,
            include_cost_factors_in_stage1: false,
            tie_break_input_size: true,
            allow_composition: true,
        }
    }
}

/// A job submitted for matching: static features plus the 1-task sample
/// profile.
#[derive(Debug, Clone)]
pub struct SubmittedJob {
    pub spec: JobSpec,
    pub statics: StaticFeatures,
    pub sample: JobProfile,
    /// Logical input size of the submission (tie-breaking).
    pub input_bytes: u64,
}

/// Why matching failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchFailure {
    /// The store holds no profiles at all.
    EmptyStore,
    /// No stored profile survived the dynamic-feature filter (§4.3: the
    /// matcher "declares failure to find a matching profile if the set C
    /// becomes empty after the first filter").
    NoDynamicMatch { side: Side },
    /// The alternative cost-factor filter also emptied out.
    NoCostFactorMatch { side: Side },
    /// Composition was disabled (ablation) and map/reduce winners differ.
    CompositionDisabled { map_source: String, reduce_source: String },
}

/// Which matching side a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Map,
    Reduce,
}

/// How one side's winner was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideMatch {
    pub source_job: String,
    /// Candidates surviving each stage: (dynamic, cfg, jaccard).
    pub survivors: (usize, usize, usize),
    /// Whether the cost-factor fallback produced the winner.
    pub via_fallback: bool,
}

/// A successful match.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// The profile handed to the CBO (possibly composite).
    pub profile: JobProfile,
    pub map: SideMatch,
    /// `None` for map-only submissions.
    pub reduce: Option<SideMatch>,
}

impl MatchResult {
    /// Whether map and reduce sides came from different stored jobs.
    pub fn is_composite(&self) -> bool {
        match &self.reduce {
            Some(r) => r.source_job != self.map.source_job,
            None => false,
        }
    }
}

/// Run the Fig. 4.4 workflow against the store.
pub fn match_profile(
    store: &ProfileStore,
    q: &SubmittedJob,
    cfg: &MatcherConfig,
) -> Result<Result<MatchResult, MatchFailure>, ProfileStoreError> {
    if store.is_empty()? {
        return Ok(Err(MatchFailure::EmptyStore));
    }
    let bounds = store.normalization_bounds()?;

    // ---- Map side -------------------------------------------------------
    let map_side = match match_side(
        store,
        q,
        cfg,
        Side::Map,
        &bounds.map_dyn,
        &bounds.cost,
    )? {
        Ok(m) => m,
        Err(f) => return Ok(Err(f)),
    };

    // ---- Reduce side ----------------------------------------------------
    let reduce_side = if q.sample.reduce.is_some() {
        match match_side(store, q, cfg, Side::Reduce, &bounds.red_dyn, &bounds.cost)? {
            Ok(m) => Some(m),
            Err(f) => return Ok(Err(f)),
        }
    } else {
        None
    };

    if let Some(r) = &reduce_side {
        if !cfg.allow_composition && r.source_job != map_side.source_job {
            return Ok(Err(MatchFailure::CompositionDisabled {
                map_source: map_side.source_job.clone(),
                reduce_source: r.source_job.clone(),
            }));
        }
    }

    // ---- Compose --------------------------------------------------------
    let map_profile = store
        .get_profile(&map_side.source_job)?
        .ok_or_else(|| ProfileStoreError::Corrupt(format!("missing {}", map_side.source_job)))?;
    let profile = match &reduce_side {
        Some(r) if r.source_job != map_side.source_job => {
            let red_profile = store.get_profile(&r.source_job)?.ok_or_else(|| {
                ProfileStoreError::Corrupt(format!("missing {}", r.source_job))
            })?;
            JobProfile::compose(&map_profile, &red_profile)
        }
        Some(_) => map_profile,
        None => {
            let mut p = map_profile;
            p.reduce = None;
            p
        }
    };

    Ok(Ok(MatchResult {
        profile,
        map: map_side,
        reduce: reduce_side,
    }))
}

fn match_side(
    store: &ProfileStore,
    q: &SubmittedJob,
    cfg: &MatcherConfig,
    side: Side,
    dyn_bounds: &MinMaxNormalizer,
    cost_bounds: &MinMaxNormalizer,
) -> Result<Result<SideMatch, MatchFailure>, ProfileStoreError> {
    let (q_dyn, q_side): (Vec<f64>, &SideFeatures) = match side {
        Side::Map => (q.sample.map.dynamic_features(), &q.statics.map),
        Side::Reduce => (
            q.sample
                .reduce
                .as_ref()
                .expect("reduce side matching requires a reduce sample")
                .dynamic_features(),
            &q.statics.reduce,
        ),
    };
    let theta = cfg.theta_eucl_fraction * (q_dyn.len() as f64).sqrt();

    // Stage 1: dynamic-feature Euclidean filter, pushed down.
    let bounds = dyn_bounds.clone();
    let q_dyn_cl = q_dyn.clone();
    let (mut stage1, _metrics) = store.filter_dynamic(move |row: &DynamicRow| {
        let stored = match side {
            Side::Map => Some(row.map_dyn.clone()),
            Side::Reduce => row.red_dyn.clone(),
        };
        match stored {
            Some(v) => bounds.distance(&q_dyn_cl, &v) <= theta,
            None => false, // map-only stored profiles cannot serve a reduce side
        }
    })?;
    // Ablation: also require cost-factor proximity at stage 1 (the paper
    // keeps these high-variance features out of the primary vector).
    if cfg.include_cost_factors_in_stage1 {
        let q_cost = q.sample.map.cost_factors.as_vec();
        let theta_cost = cfg.theta_eucl_fraction * (q_cost.len() as f64).sqrt();
        let mut kept = Vec::with_capacity(stage1.len());
        for row in stage1 {
            if let Some(stored) = store.get_cost_factors(&row.job_id)? {
                if cost_bounds.distance(&q_cost, &stored) <= theta_cost {
                    kept.push(row);
                }
            }
        }
        stage1 = kept;
    }
    // Ablation: the wrong filter order — prune by static features before
    // trusting the dynamics.
    if cfg.static_filters_first {
        let mut kept = Vec::with_capacity(stage1.len());
        for row in stage1 {
            if let Some(statics) = store.get_statics(&row.job_id)? {
                let stored_side = match side {
                    Side::Map => &statics.map,
                    Side::Reduce => &statics.reduce,
                };
                if q_side.cfg_match(stored_side) == 1.0
                    && q_side.jaccard(stored_side) >= cfg.theta_jacc
                {
                    kept.push(row);
                }
            }
        }
        stage1 = kept;
    }
    if stage1.is_empty() {
        return Ok(Err(MatchFailure::NoDynamicMatch { side }));
    }

    // Stages 2 & 3: CFG and Jaccard over stored static features.
    let mut stage2 = Vec::new();
    let mut stage3: Vec<(&DynamicRow, f64)> = Vec::new();
    for row in &stage1 {
        let Some(statics) = store.get_statics(&row.job_id)? else {
            continue;
        };
        let stored_side = match side {
            Side::Map => &statics.map,
            Side::Reduce => &statics.reduce,
        };
        if q_side.cfg_match(stored_side) == 1.0 {
            stage2.push(row);
            let jacc = q_side.jaccard(stored_side);
            if jacc >= cfg.theta_jacc {
                stage3.push((row, jacc));
            }
        }
    }

    // Tie-break by closest input size (§4.3), then by smallest dynamic
    // distance for candidates on the very same dataset.
    let dyn_distance = |row: &DynamicRow| -> f64 {
        let stored = match side {
            Side::Map => Some(row.map_dyn.clone()),
            Side::Reduce => row.red_dyn.clone(),
        };
        stored
            .map(|v| dyn_bounds.distance(&q_dyn, &v))
            .unwrap_or(f64::INFINITY)
    };
    let pick = |candidates: &[&DynamicRow]| -> String {
        candidates
            .iter()
            .min_by(|a, b| {
                if cfg.tie_break_input_size {
                    let da = (a.input_bytes - q.input_bytes as f64).abs();
                    let db = (b.input_bytes - q.input_bytes as f64).abs();
                    da.total_cmp(&db)
                        .then_with(|| dyn_distance(a).total_cmp(&dyn_distance(b)))
                } else {
                    // Ablation: no size tie-break; an arbitrary but
                    // deterministic pick among the candidates.
                    std::cmp::Ordering::Less
                }
            })
            .expect("non-empty candidate set")
            .job_id
            .clone()
    };

    if !stage3.is_empty() {
        // Among Jaccard survivors, the most statically similar candidates
        // win before the input-size tie-break: a full static match (the
        // job itself, or its twin on other data) always beats a partial
        // one from the same job family.
        let best_jacc = stage3
            .iter()
            .map(|(_, j)| *j)
            .fold(f64::NEG_INFINITY, f64::max);
        let finalists: Vec<&DynamicRow> = stage3
            .iter()
            .filter(|(_, j)| (*j - best_jacc).abs() < 1e-9)
            .map(|(r, _)| *r)
            .collect();
        return Ok(Ok(SideMatch {
            source_job: pick(&finalists),
            survivors: (stage1.len(), stage2.len(), stage3.len()),
            via_fallback: false,
        }));
    }

    // Alternative filter: Euclidean over the cost factors of the stage-1
    // survivors (the paper's fallback for previously unseen jobs).
    let q_cost = q.sample.map.cost_factors.as_vec();
    let theta_cost = cfg.theta_eucl_fraction * (q_cost.len() as f64).sqrt();
    let mut fallback: Vec<&DynamicRow> = Vec::new();
    for row in &stage1 {
        if let Some(stored_cost) = store.get_cost_factors(&row.job_id)? {
            if cost_bounds.distance(&q_cost, &stored_cost) <= theta_cost {
                fallback.push(row);
            }
        }
    }
    if fallback.is_empty() {
        return Ok(Err(MatchFailure::NoCostFactorMatch { side }));
    }
    Ok(Ok(SideMatch {
        source_job: pick(&fallback),
        survivors: (stage1.len(), stage2.len(), stage3.len()),
        via_fallback: true,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{ClusterSpec, JobConfig};
    use profiler::{collect_full_profile, collect_sample_profile, SampleSize};

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    fn store_with(jobs_and_data: &[(mrjobs::JobSpec, mrjobs::Dataset)]) -> ProfileStore {
        let store = ProfileStore::new().unwrap();
        for (spec, ds) in jobs_and_data {
            let (profile, _) =
                collect_full_profile(spec, ds, &cl(), &JobConfig::submitted(spec), 17).unwrap();
            store
                .put_profile(&StaticFeatures::extract(spec), &profile)
                .unwrap();
        }
        store
    }

    fn submitted(spec: &mrjobs::JobSpec, ds: &mrjobs::Dataset, seed: u64) -> SubmittedJob {
        let run = collect_sample_profile(
            spec,
            ds,
            &cl(),
            &JobConfig::submitted(spec),
            SampleSize::OneTask,
            seed,
        )
        .unwrap();
        SubmittedJob {
            spec: spec.clone(),
            statics: StaticFeatures::extract(spec),
            sample: run.profile,
            input_bytes: ds.logical_bytes,
        }
    }

    #[test]
    fn sd_state_returns_the_same_job() {
        let text = corpus::random_text_1g();
        let store = store_with(&[
            (jobs::word_count(), text.clone()),
            (jobs::word_cooccurrence_pairs(2), text.clone()),
            (jobs::sort(), corpus::teragen_1g()),
        ]);
        let q = submitted(&jobs::word_count(), &text, 3);
        let result = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(result.map.source_job, "word-count");
        assert_eq!(result.reduce.as_ref().unwrap().source_job, "word-count");
        assert!(!result.is_composite());
        assert!(!result.map.via_fallback);
    }

    #[test]
    fn empty_store_fails_cleanly() {
        let store = ProfileStore::new().unwrap();
        let text = corpus::random_text_1g();
        let q = submitted(&jobs::word_count(), &text, 3);
        let failure = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap_err();
        assert_eq!(failure, MatchFailure::EmptyStore);
    }

    #[test]
    fn unseen_job_composes_from_similar_profiles() {
        // The headline scenario: bigram-relative-frequency's profile serves
        // a never-before-seen co-occurrence submission.
        let text = corpus::wikipedia_35g();
        let store = store_with(&[
            (jobs::bigram_relative_frequency(), text.clone()),
            (jobs::word_count(), text.clone()),
            (jobs::sort(), corpus::teragen_35g()),
        ]);
        let q = submitted(&jobs::word_cooccurrence_pairs(2), &text, 5);
        let outcome = match_profile(&store, &q, &MatcherConfig::default()).unwrap();
        let result = outcome.expect("co-occurrence should match something");
        // The profile must come from a donor (co-occurrence itself is absent).
        assert_ne!(result.map.source_job, q.sample.job_id);
        assert!(result.map.via_fallback || result.reduce.as_ref().map(|r| r.via_fallback).unwrap_or(false)
                || result.is_composite() || !result.map.source_job.is_empty());
    }

    #[test]
    fn wildly_different_job_reports_no_dynamic_match() {
        // Only low-selectivity jobs are stored (a single entry would make
        // the min-max bounds degenerate and every distance zero); a
        // co-occurrence submission has dataflow statistics far outside the
        // stored range.
        let store = store_with(&[
            (jobs::sort(), corpus::teragen_1g()),
            (jobs::join(), corpus::tpch_1g()),
            (jobs::cf_user_vectors(), corpus::ratings_1m()),
        ]);
        let q = submitted(&jobs::word_cooccurrence_pairs(2), &corpus::random_text_1g(), 5);
        let failure = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap_err();
        assert!(
            matches!(
                failure,
                MatchFailure::NoDynamicMatch { .. } | MatchFailure::NoCostFactorMatch { .. }
            ),
            "{failure:?}"
        );
    }

    #[test]
    fn map_only_submission_skips_reduce_matching() {
        let text = corpus::random_text_1g();
        let mut spec = jobs::word_count();
        spec.reduce_udf = None;
        spec.reducer_class = None;
        spec.combine_udf = None;
        spec.combiner_class = None;
        spec.name = "word-count-maponly".to_string();
        let store = store_with(&[
            (spec.clone(), text.clone()),
            (jobs::word_count(), text.clone()),
        ]);
        let q = submitted(&spec, &text, 9);
        let result = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap();
        assert!(result.reduce.is_none());
        assert!(result.profile.reduce.is_none());
    }

    #[test]
    fn word_count_variant_matches_original_via_cfg() {
        // Different mapper class name, same CFG: the while-variant should
        // match the stored for-variant profile.
        let text = corpus::random_text_1g();
        let store = store_with(&[
            (jobs::word_count(), text.clone()),
            (jobs::sort(), corpus::teragen_1g()),
        ]);
        let q = submitted(&jobs::word_count_while_variant(), &text, 11);
        let result = match_profile(&store, &q, &MatcherConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(result.map.source_job, "word-count");
        assert!(!result.map.via_fallback, "CFG+Jaccard path should succeed");
    }
}
