//! Workflow-level tuning (§7.2.5).
//!
//! Big-data analyses are usually *chains* of MR jobs (the FIM chain, the
//! CF phases, Pig/Hive plans). This module treats a chain as a unit: each
//! stage is tuned through the normal PStorM workflow, and the chain's
//! *plan* — the ordered list of stage job ids — is recorded in the profile
//! store under a new `Plan/` feature-type prefix. Storing a new feature
//! type requires nothing but a new row-key prefix, which is precisely the
//! extensibility property the Table 5.1 data model was chosen for (§5.1).

use bytes::Bytes;

use mrjobs::{Dataset, JobSpec};

use crate::daemon::{DaemonError, PStorM, SubmissionReport};
use crate::store::ProfileStoreError;

/// One stage of a workflow: a job and the dataset it consumes.
pub struct ChainStage {
    pub spec: JobSpec,
    pub dataset: Dataset,
}

/// The result of running a workflow through PStorM.
pub struct ChainReport {
    pub chain_id: String,
    /// Per-stage submission reports, in order.
    pub stages: Vec<SubmissionReport>,
}

impl ChainReport {
    /// Total virtual runtime of the chain (stages run back to back).
    pub fn total_runtime_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.run.runtime_ms).sum()
    }
}

impl PStorM {
    /// Submit a chain of jobs. Each stage goes through the full PStorM
    /// workflow (1-task probe → match → tune, or profile-and-store), and
    /// the chain's plan is recorded under `Plan/<chain-id>` so future
    /// submissions of the same plan can be recognized.
    pub fn submit_chain(
        &self,
        chain_id: &str,
        stages: &[ChainStage],
        seed: u64,
    ) -> Result<ChainReport, DaemonError> {
        let mut reports = Vec::with_capacity(stages.len());
        for (i, stage) in stages.iter().enumerate() {
            let report = self.submit(&stage.spec, &stage.dataset, seed ^ (i as u64 + 1))?;
            reports.push(report);
        }
        self.record_plan(chain_id, stages)?;
        Ok(ChainReport {
            chain_id: chain_id.to_string(),
            stages: reports,
        })
    }

    /// Store the plan row: one column per stage, value = the stage's job
    /// id. A brand-new feature type, added with nothing but a row-key
    /// prefix.
    fn record_plan(&self, chain_id: &str, stages: &[ChainStage]) -> Result<(), ProfileStoreError> {
        for (i, stage) in stages.iter().enumerate() {
            self.store.raw_put(cfstore::Put::new(
                Bytes::from(format!("Plan/{chain_id}")),
                "f",
                Bytes::from(format!("stage{i:02}")),
                Bytes::from(stage.spec.job_id()),
            ))?;
        }
        Ok(())
    }

    /// Read back a stored plan: the ordered stage job ids.
    pub fn get_plan(&self, chain_id: &str) -> Result<Option<Vec<String>>, ProfileStoreError> {
        let row = self.store.raw_get(format!("Plan/{chain_id}").as_bytes())?;
        Ok(row.map(|r| {
            r.columns("f")
                .into_iter()
                .map(|(_, v)| String::from_utf8_lossy(v).to_string())
                .collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SubmissionOutcome;
    use datagen::{corpus, SizeClass};
    use mrjobs::jobs;

    fn fim_chain() -> Vec<ChainStage> {
        vec![
            ChainStage {
                spec: jobs::fim_pass1(4),
                dataset: corpus::input_for("fim-pass1", SizeClass::Small),
            },
            ChainStage {
                spec: jobs::fim_pass2(4),
                dataset: corpus::input_for("fim-pass2", SizeClass::Small),
            },
            ChainStage {
                spec: jobs::fim_pass3(),
                dataset: corpus::input_for("fim-pass3", SizeClass::Small),
            },
        ]
    }

    #[test]
    fn chain_runs_all_stages_and_records_the_plan() {
        let daemon = PStorM::new().unwrap();
        let report = daemon.submit_chain("fim-nightly", &fim_chain(), 7).unwrap();
        assert_eq!(report.stages.len(), 3);
        assert!(report.total_runtime_ms() > 0.0);
        let plan = daemon.get_plan("fim-nightly").unwrap().unwrap();
        assert_eq!(
            plan,
            vec![
                "fim-pass1[min_support=4]",
                "fim-pass2[min_support=4]",
                "fim-pass3"
            ]
        );
        assert!(daemon.get_plan("unknown").unwrap().is_none());
    }

    #[test]
    fn resubmitted_chain_tunes_every_stage() {
        let daemon = PStorM::new().unwrap();
        let first = daemon.submit_chain("fim-nightly", &fim_chain(), 7).unwrap();
        // First pass profiles and stores every stage.
        assert!(first
            .stages
            .iter()
            .all(|s| matches!(s.outcome, SubmissionOutcome::ProfiledAndStored { .. })));

        let second = daemon.submit_chain("fim-nightly", &fim_chain(), 8).unwrap();
        assert!(second
            .stages
            .iter()
            .all(|s| matches!(s.outcome, SubmissionOutcome::Tuned { .. })));
        assert!(
            second.total_runtime_ms() <= first.total_runtime_ms(),
            "tuned chain {} vs default chain {}",
            second.total_runtime_ms(),
            first.total_runtime_ms()
        );
    }
}
