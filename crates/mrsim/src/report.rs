//! Execution reports: what the profiler consumes.
//!
//! Reports carry per-task phase timings, dataflow counters, and the
//! *observed* cost rates (base hardware rates times that task's node-
//! utilization noise) — the raw material from which Starfish-style
//! profiles are aggregated.

use crate::cluster::CostRates;
use crate::config::JobConfig;
use crate::faults::FaultStats;
use crate::phases::{MapPhase, ReducePhase};

/// Report of one simulated map task.
#[derive(Debug, Clone, PartialEq)]
pub struct MapTaskReport {
    pub task_id: u32,
    /// Virtual wall-clock start/end in ms since job submission.
    pub start_ms: f64,
    pub end_ms: f64,
    /// Phase durations in ns (noise included).
    pub phases: Vec<(MapPhase, f64)>,
    pub input_records: f64,
    pub input_bytes: f64,
    /// Raw map-function output (before combining).
    pub out_records: f64,
    pub out_bytes: f64,
    /// Final materialized output (after combining/compression).
    pub final_out_records: f64,
    pub final_out_bytes: f64,
    pub num_spills: u32,
    /// The effective cost rates this task observed.
    pub observed_rates: CostRates,
    /// Interpreter ops of the map UDF.
    pub map_cpu_ops: f64,
    /// 1-based attempt number of the winning attempt (1 on the fault-free
    /// path; higher after retries).
    pub attempt: u32,
    /// True when this result came from a speculative backup that beat the
    /// original attempt.
    pub speculative: bool,
}

impl MapTaskReport {
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    pub fn phase_ms(&self, phase: MapPhase) -> f64 {
        self.phases
            .iter()
            .filter(|(p, _)| *p == phase)
            .map(|(_, ns)| ns / 1e6)
            .sum()
    }
}

/// Report of one simulated reduce task.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceTaskReport {
    pub task_id: u32,
    pub start_ms: f64,
    pub end_ms: f64,
    pub phases: Vec<(ReducePhase, f64)>,
    /// Shuffled bytes (uncompressed view).
    pub shuffle_bytes: f64,
    pub in_records: f64,
    pub out_records: f64,
    pub out_bytes: f64,
    pub observed_rates: CostRates,
    /// Interpreter ops per reduce input record.
    pub reduce_ops_per_record: f64,
    /// 1-based attempt number of the winning attempt.
    pub attempt: u32,
}

impl ReduceTaskReport {
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    pub fn phase_ms(&self, phase: ReducePhase) -> f64 {
        self.phases
            .iter()
            .filter(|(p, _)| *p == phase)
            .map(|(_, ns)| ns / 1e6)
            .sum()
    }
}

/// Report of one simulated job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job id ([`mrjobs::JobSpec::job_id`]).
    pub job_id: String,
    /// The dataset name.
    pub dataset: String,
    /// The configuration the job ran with.
    pub config: JobConfig,
    /// Total virtual job runtime in ms (including job-level overhead).
    pub runtime_ms: f64,
    /// Virtual time when the last map task finished.
    pub maps_done_ms: f64,
    pub map_tasks: Vec<MapTaskReport>,
    pub reduce_tasks: Vec<ReduceTaskReport>,
    /// Fault-injection accounting; all-zero on the fault-free path.
    pub faults: FaultStats,
}

impl JobReport {
    /// Fraction of scheduled attempts that ran to completion — 1.0 on the
    /// fault-free path (nothing goes through the fault machinery). The
    /// profiler uses this as the confidence of profiles built from the run.
    pub fn attempt_success_rate(&self) -> f64 {
        if self.faults.scheduled_attempts == 0 {
            1.0
        } else {
            f64::from(self.faults.successful_attempts) / f64::from(self.faults.scheduled_attempts)
        }
    }

    /// Mean duration of the map tasks, ms.
    pub fn avg_map_ms(&self) -> f64 {
        if self.map_tasks.is_empty() {
            return 0.0;
        }
        self.map_tasks
            .iter()
            .map(MapTaskReport::duration_ms)
            .sum::<f64>()
            / self.map_tasks.len() as f64
    }

    /// Mean duration of the reduce tasks, ms.
    pub fn avg_reduce_ms(&self) -> f64 {
        if self.reduce_tasks.is_empty() {
            return 0.0;
        }
        self.reduce_tasks
            .iter()
            .map(ReduceTaskReport::duration_ms)
            .sum::<f64>()
            / self.reduce_tasks.len() as f64
    }

    /// Average per-map-task phase time in ms.
    pub fn avg_map_phase_ms(&self, phase: MapPhase) -> f64 {
        if self.map_tasks.is_empty() {
            return 0.0;
        }
        self.map_tasks
            .iter()
            .map(|t| t.phase_ms(phase))
            .sum::<f64>()
            / self.map_tasks.len() as f64
    }

    /// Average per-reduce-task phase time in ms.
    pub fn avg_reduce_phase_ms(&self, phase: ReducePhase) -> f64 {
        if self.reduce_tasks.is_empty() {
            return 0.0;
        }
        self.reduce_tasks
            .iter()
            .map(|t| t.phase_ms(phase))
            .sum::<f64>()
            / self.reduce_tasks.len() as f64
    }
}
