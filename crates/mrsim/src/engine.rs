//! The discrete-event job execution engine.
//!
//! Given a job, a dataset, a cluster, and a configuration, the engine:
//! 1. measures (or reuses) the config-independent dataflow,
//! 2. checks the reduce-side memory model,
//! 3. computes per-task phase costs with per-task node-utilization noise,
//! 4. schedules tasks onto slots in waves (maps first; reducers gated by
//!    `mapred.reduce.slowstart.completed.maps` and by shuffle completion),
//! 5. returns a [`JobReport`] with everything the profiler needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrjobs::{Dataset, JobSpec, ValueType};

use crate::cluster::{ClusterSpec, CostRates};
use crate::config::JobConfig;
use crate::dataflow::{analyze, Dataflow};
use crate::error::SimError;
use crate::phases::{
    map_task_costs, reduce_task_costs, MapTaskInputs, ReduceTaskInputs,
};
use crate::report::{JobReport, MapTaskReport, ReduceTaskReport};

/// Fixed job-level overhead (submission, setup, commit), in ms.
const JOB_OVERHEAD_MS: f64 = 4_000.0;

/// In-memory inflation of deserialized container values (Java object
/// overhead); drives the OOM model for Map/List-valued intermediate data.
const CONTAINER_INFLATION: f64 = 6.0;

/// Fraction of the child heap usable for materializing a reduce group.
const HEAP_USABLE_FRACTION: f64 = 0.75;

impl CostRates {
    /// Scale IO/network components by `io_f` and CPU components by `cpu_f`
    /// — one task's observed rates on a more- or less-loaded node.
    pub fn jittered(&self, io_f: f64, cpu_f: f64) -> CostRates {
        CostRates {
            read_hdfs_ns_per_byte: self.read_hdfs_ns_per_byte * io_f,
            write_hdfs_ns_per_byte: self.write_hdfs_ns_per_byte * io_f,
            read_local_ns_per_byte: self.read_local_ns_per_byte * io_f,
            write_local_ns_per_byte: self.write_local_ns_per_byte * io_f,
            network_ns_per_byte: self.network_ns_per_byte * io_f,
            cpu_ns_per_op: self.cpu_ns_per_op * cpu_f,
            sort_ns_per_record: self.sort_ns_per_record * cpu_f,
            serde_ns_per_byte: self.serde_ns_per_byte * cpu_f,
            compress_ns_per_byte: self.compress_ns_per_byte * cpu_f,
            decompress_ns_per_byte: self.decompress_ns_per_byte * cpu_f,
        }
    }
}

/// Simulate a job execution end to end (measures dataflow first).
pub fn simulate(
    spec: &JobSpec,
    dataset: &Dataset,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<JobReport, SimError> {
    let dataflow = analyze(spec, dataset, cluster)?;
    simulate_with_dataflow(spec, &dataflow, &dataset.name, cluster, config, seed)
}

/// Simulate a job execution from a pre-measured dataflow. Reusing the
/// dataflow across configurations is how speedup experiments evaluate many
/// configurations cheaply.
pub fn simulate_with_dataflow(
    spec: &JobSpec,
    dataflow: &Dataflow,
    dataset_name: &str,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<JobReport, SimError> {
    config.validate()?;
    check_memory(spec, dataflow, cluster, config)?;

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ee_d);
    let sigma = cluster.heterogeneity;

    // ---- Map wave scheduling -------------------------------------------
    let m = dataflow.num_map_tasks;
    let mut slot_free = vec![0.0f64; cluster.map_slots().max(1) as usize];
    let mut map_reports = Vec::with_capacity(m as usize);
    let mut total_final_bytes_disk = 0.0;
    let mut total_final_bytes_uncomp = 0.0;
    let mut total_final_records = 0.0;
    for task_id in 0..m {
        let flow = &dataflow.per_task[task_id as usize % dataflow.per_task.len()];
        let io_f = lognormal(&mut rng, sigma);
        let cpu_f = lognormal(&mut rng, sigma);
        let rates = cluster.rates.jittered(io_f, cpu_f);
        let inputs = MapTaskInputs {
            input_bytes: flow.input_bytes,
            input_records: flow.input_records,
            out_records: flow.out_records,
            out_bytes: flow.out_bytes,
            map_cpu_ops: flow.map_ops,
            combine: dataflow.combine,
        };
        let costs = map_task_costs(config, &rates, &inputs);
        total_final_bytes_disk += costs.final_out_bytes;
        total_final_bytes_uncomp += costs.final_out_bytes_uncompressed;
        total_final_records += costs.final_out_records;

        let dur_ms = costs.total_ns() / 1e6;
        let slot = earliest_slot(&slot_free);
        let start = slot_free[slot];
        let end = start + dur_ms;
        slot_free[slot] = end;
        map_reports.push(MapTaskReport {
            task_id,
            start_ms: start,
            end_ms: end,
            phases: costs.phases,
            input_records: flow.input_records,
            input_bytes: flow.input_bytes,
            out_records: flow.out_records,
            out_bytes: flow.out_bytes,
            final_out_records: costs.final_out_records,
            final_out_bytes: costs.final_out_bytes,
            num_spills: costs.num_spills,
            observed_rates: rates,
            map_cpu_ops: flow.map_ops,
        });
    }

    // Map completion ordering for slowstart gating.
    let mut map_ends: Vec<f64> = map_reports.iter().map(|t| t.end_ms).collect();
    map_ends.sort_by(|a, b| a.total_cmp(b));
    let maps_done_ms = *map_ends.last().unwrap_or(&0.0);
    let slowstart_idx =
        ((config.reduce_slowstart * m as f64).ceil() as usize).clamp(1, map_ends.len());
    let reducers_eligible_ms = map_ends[slowstart_idx - 1];

    // ---- Reduce wave scheduling ----------------------------------------
    let mut reduce_reports = Vec::new();
    if let Some(red) = &dataflow.reduce {
        let r = config.num_reduce_tasks;
        let shares = red.partition_shares(r, spec.partitioner);
        let mut rslot_free = vec![reducers_eligible_ms; cluster.reduce_slots().max(1) as usize];
        // Reduce input records depend on whether the combiner ran.
        let total_in_records = if config.use_combiner && dataflow.combine.is_some() {
            total_final_records
        } else {
            red.in_records
        };
        // Aggregating reducers cannot emit more records than they consume;
        // the output estimate (distinct-key based) and the combined-input
        // estimate are extrapolated separately, so reconcile them here.
        let (total_out_records, total_out_bytes) = if red.out_records < red.in_records
            && red.out_records > total_in_records
        {
            let shrink = total_in_records / red.out_records;
            (total_in_records, red.out_bytes * shrink)
        } else {
            (red.out_records, red.out_bytes)
        };
        for (task_id, share) in shares.iter().enumerate() {
            let io_f = lognormal(&mut rng, sigma);
            let cpu_f = lognormal(&mut rng, sigma);
            let rates = cluster.rates.jittered(io_f, cpu_f);
            let inputs = ReduceTaskInputs {
                shuffle_bytes_disk: total_final_bytes_disk * share,
                shuffle_bytes: total_final_bytes_uncomp * share,
                in_records: total_in_records * share,
                num_segments: m,
                reduce_ops_per_record: red.ops_per_record,
                out_bytes: total_out_bytes * share,
                out_records: total_out_records * share,
                heap_bytes: cluster.heap_bytes() as f64,
                map_compressed: config.compress_map_output,
            };
            let costs = reduce_task_costs(config, &rates, &inputs);

            let slot = earliest_slot(&rslot_free);
            let start = rslot_free[slot];
            // Shuffle overlaps map execution but cannot complete before the
            // last map task finished producing output.
            let shuffle_ns: f64 = costs
                .phases
                .iter()
                .filter(|(p, _)| matches!(p, crate::phases::ReducePhase::Shuffle))
                .map(|(_, t)| t)
                .sum();
            let post_shuffle_ns = costs.total_ns() - shuffle_ns;
            let shuffle_end = (start + shuffle_ns / 1e6).max(maps_done_ms);
            let end = shuffle_end + post_shuffle_ns / 1e6;
            rslot_free[slot] = end;
            reduce_reports.push(ReduceTaskReport {
                task_id: task_id as u32,
                start_ms: start,
                end_ms: end,
                phases: costs.phases,
                shuffle_bytes: inputs.shuffle_bytes,
                in_records: inputs.in_records,
                out_records: inputs.out_records,
                out_bytes: inputs.out_bytes,
                observed_rates: rates,
                reduce_ops_per_record: red.ops_per_record,
            });
        }
    }

    let last_end = reduce_reports
        .iter()
        .map(|t| t.end_ms)
        .fold(maps_done_ms, f64::max);

    Ok(JobReport {
        job_id: spec.job_id(),
        dataset: dataset_name.to_string(),
        config: config.clone(),
        runtime_ms: last_end + JOB_OVERHEAD_MS,
        maps_done_ms,
        map_tasks: map_reports,
        reduce_tasks: reduce_reports,
    })
}

/// Predict only the job runtime (ms) from a pre-measured dataflow,
/// without materializing per-task reports.
///
/// For a deterministic cluster (`heterogeneity == 0`) this takes a fast
/// path that prices each *distinct* per-task flow once and replays the
/// slot schedule arithmetically; the result is bit-identical to
/// `simulate_with_dataflow(..).runtime_ms` (asserted by tests) because the
/// full engine draws no noise at zero heterogeneity and the fast path
/// mirrors its accumulation order exactly. Heterogeneous clusters fall
/// back to the full simulation. This is the What-If engine's hot path:
/// the CBO prices hundreds of configurations per search, and skipping
/// 560 `MapTaskReport` allocations per call is most of the win.
pub fn simulate_runtime_ms(
    spec: &JobSpec,
    dataflow: &Dataflow,
    dataset_name: &str,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<f64, SimError> {
    if cluster.heterogeneity > 0.0 {
        return Ok(
            simulate_with_dataflow(spec, dataflow, dataset_name, cluster, config, seed)?
                .runtime_ms,
        );
    }
    config.validate()?;
    check_memory(spec, dataflow, cluster, config)?;

    // ---- Map wave: one cost computation per distinct flow --------------
    let m = dataflow.num_map_tasks;
    let rates = cluster.rates.jittered(1.0, 1.0);
    struct FlowCost {
        dur_ms: f64,
        final_out_bytes: f64,
        final_out_bytes_uncompressed: f64,
        final_out_records: f64,
    }
    let flow_costs: Vec<FlowCost> = dataflow
        .per_task
        .iter()
        .map(|flow| {
            let inputs = MapTaskInputs {
                input_bytes: flow.input_bytes,
                input_records: flow.input_records,
                out_records: flow.out_records,
                out_bytes: flow.out_bytes,
                map_cpu_ops: flow.map_ops,
                combine: dataflow.combine,
            };
            let costs = map_task_costs(config, &rates, &inputs);
            FlowCost {
                dur_ms: costs.total_ns() / 1e6,
                final_out_bytes: costs.final_out_bytes,
                final_out_bytes_uncompressed: costs.final_out_bytes_uncompressed,
                final_out_records: costs.final_out_records,
            }
        })
        .collect();

    let mut slot_free = vec![0.0f64; cluster.map_slots().max(1) as usize];
    let mut map_ends = Vec::with_capacity(m as usize);
    let mut total_final_bytes_disk = 0.0;
    let mut total_final_bytes_uncomp = 0.0;
    let mut total_final_records = 0.0;
    for task_id in 0..m {
        let fc = &flow_costs[task_id as usize % flow_costs.len()];
        total_final_bytes_disk += fc.final_out_bytes;
        total_final_bytes_uncomp += fc.final_out_bytes_uncompressed;
        total_final_records += fc.final_out_records;
        let slot = earliest_slot(&slot_free);
        let end = slot_free[slot] + fc.dur_ms;
        slot_free[slot] = end;
        map_ends.push(end);
    }
    map_ends.sort_by(|a, b| a.total_cmp(b));
    let maps_done_ms = *map_ends.last().unwrap_or(&0.0);
    let slowstart_idx =
        ((config.reduce_slowstart * m as f64).ceil() as usize).clamp(1, map_ends.len());
    let reducers_eligible_ms = map_ends[slowstart_idx - 1];

    // ---- Reduce wave ----------------------------------------------------
    let mut last_end = maps_done_ms;
    if let Some(red) = &dataflow.reduce {
        let r = config.num_reduce_tasks;
        let shares = red.partition_shares(r, spec.partitioner);
        let mut rslot_free = vec![reducers_eligible_ms; cluster.reduce_slots().max(1) as usize];
        let total_in_records = if config.use_combiner && dataflow.combine.is_some() {
            total_final_records
        } else {
            red.in_records
        };
        let (total_out_records, total_out_bytes) = if red.out_records < red.in_records
            && red.out_records > total_in_records
        {
            let shrink = total_in_records / red.out_records;
            (total_in_records, red.out_bytes * shrink)
        } else {
            (red.out_records, red.out_bytes)
        };
        // The what-if dataflow partitions uniformly (and real hash
        // partitions repeat shares), so identical shares produce identical
        // task costs — price each distinct share once and replay.
        let mut share_costs: Vec<(u64, f64, f64)> = Vec::with_capacity(2);
        for share in shares.iter() {
            let bits = share.to_bits();
            let (shuffle_ns, post_shuffle_ns) = match share_costs
                .iter()
                .find(|(b, _, _)| *b == bits)
            {
                Some((_, s, p)) => (*s, *p),
                None => {
                    let inputs = ReduceTaskInputs {
                        shuffle_bytes_disk: total_final_bytes_disk * share,
                        shuffle_bytes: total_final_bytes_uncomp * share,
                        in_records: total_in_records * share,
                        num_segments: m,
                        reduce_ops_per_record: red.ops_per_record,
                        out_bytes: total_out_bytes * share,
                        out_records: total_out_records * share,
                        heap_bytes: cluster.heap_bytes() as f64,
                        map_compressed: config.compress_map_output,
                    };
                    let costs = reduce_task_costs(config, &rates, &inputs);
                    let shuffle_ns: f64 = costs
                        .phases
                        .iter()
                        .filter(|(p, _)| matches!(p, crate::phases::ReducePhase::Shuffle))
                        .map(|(_, t)| t)
                        .sum();
                    let post_shuffle_ns = costs.total_ns() - shuffle_ns;
                    share_costs.push((bits, shuffle_ns, post_shuffle_ns));
                    (shuffle_ns, post_shuffle_ns)
                }
            };
            let slot = earliest_slot(&rslot_free);
            let start = rslot_free[slot];
            let shuffle_end = (start + shuffle_ns / 1e6).max(maps_done_ms);
            let end = shuffle_end + post_shuffle_ns / 1e6;
            rslot_free[slot] = end;
            last_end = last_end.max(end);
        }
    }

    Ok(last_end + JOB_OVERHEAD_MS)
}

/// The reduce-side memory model (see DESIGN.md): jobs with container-typed
/// intermediate values must materialize merged groups; if the largest
/// scaled group inflated by Java object overhead exceeds the usable heap,
/// the task dies with an OOM — as the co-occurrence stripes job did on the
/// 35 GB dataset in the paper.
fn check_memory(
    spec: &JobSpec,
    dataflow: &Dataflow,
    cluster: &ClusterSpec,
    config: &JobConfig,
) -> Result<(), SimError> {
    let Some(red) = &dataflow.reduce else {
        return Ok(());
    };
    if !matches!(spec.map_out_val, ValueType::Map | ValueType::List) {
        return Ok(());
    }
    let combine_shrink = match (config.use_combiner, dataflow.combine) {
        (true, Some(c)) => c.size_selectivity,
        _ => 1.0,
    };
    let needed = red.max_group_bytes * combine_shrink * CONTAINER_INFLATION;
    let budget = cluster.heap_bytes() as f64 * HEAP_USABLE_FRACTION;
    if needed > budget {
        return Err(SimError::OutOfMemory {
            job: spec.job_id(),
            task: "reduce".to_string(),
            needed_bytes: needed as u64,
            heap_bytes: cluster.heap_bytes(),
        });
    }
    Ok(())
}

fn earliest_slot(slots: &[f64]) -> usize {
    let mut best = 0;
    for (i, t) in slots.iter().enumerate() {
        if *t < slots[best] {
            best = i;
        }
    }
    best
}

/// A log-normal multiplicative noise factor with median 1.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;

    fn cluster() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn word_count_runs_and_is_deterministic() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let a = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 7).unwrap();
        let b = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 7).unwrap();
        assert_eq!(a.runtime_ms, b.runtime_ms);
        assert_eq!(a.map_tasks.len(), 16);
        assert_eq!(a.reduce_tasks.len(), 1);
        assert!(a.runtime_ms > JOB_OVERHEAD_MS);
    }

    #[test]
    fn different_seeds_jitter_runtimes() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let a = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 1).unwrap();
        let b = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 2).unwrap();
        assert_ne!(a.runtime_ms, b.runtime_ms);
        // ... but not wildly: same config, same data.
        let ratio = a.runtime_ms / b.runtime_ms;
        assert!((0.5..2.0).contains(&ratio));
    }

    #[test]
    fn more_reducers_speed_up_shuffle_heavy_jobs() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);
        let one = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 3).unwrap();
        let many = JobConfig {
            num_reduce_tasks: 27,
            ..JobConfig::default()
        };
        let tuned = simulate(&spec, &ds, &cluster(), &many, 3).unwrap();
        assert!(
            tuned.runtime_ms < one.runtime_ms / 2.0,
            "27 reducers {} vs 1 reducer {}",
            tuned.runtime_ms,
            one.runtime_ms
        );
    }

    #[test]
    fn slowstart_gates_reducer_start() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let eager = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 3).unwrap();
        let lazy_cfg = JobConfig {
            reduce_slowstart: 1.0,
            ..JobConfig::default()
        };
        let lazy = simulate(&spec, &ds, &cluster(), &lazy_cfg, 3).unwrap();
        let eager_start = eager.reduce_tasks[0].start_ms;
        let lazy_start = lazy.reduce_tasks[0].start_ms;
        assert!(lazy_start >= eager_start);
        assert!((lazy_start - lazy.maps_done_ms).abs() < 1e-6);
    }

    #[test]
    fn stripes_oom_on_large_data_but_not_small() {
        let spec = jobs::word_cooccurrence_stripes(2);
        let small = corpus::random_text_1g();
        let large = corpus::wikipedia_35g();
        let cl = cluster();
        assert!(simulate(&spec, &small, &cl, &JobConfig::default(), 1).is_ok());
        let err = simulate(&spec, &large, &cl, &JobConfig::default(), 1).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn map_only_scheduling_uses_waves() {
        let ds = corpus::wikipedia_35g(); // 560 tasks over 30 slots
        let spec = jobs::word_count();
        let rep = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 5).unwrap();
        assert_eq!(rep.map_tasks.len(), 560);
        // Later tasks start strictly after time 0 (waves).
        assert!(rep.map_tasks.iter().filter(|t| t.start_ms > 0.0).count() > 500);
    }

    #[test]
    fn runtime_only_path_is_bit_identical_on_deterministic_cluster() {
        let zero_het = ClusterSpec {
            heterogeneity: 0.0,
            ..ClusterSpec::ec2_c1_medium_16()
        };
        for (ds, spec) in [
            (corpus::random_text_1g(), jobs::word_count()),
            (corpus::random_text_1g(), jobs::word_cooccurrence_pairs(2)),
            (corpus::wikipedia_35g(), jobs::word_count()),
        ] {
            let dataflow = analyze(&spec, &ds, &zero_het).unwrap();
            for config in [
                JobConfig::default(),
                JobConfig {
                    num_reduce_tasks: 27,
                    use_combiner: false,
                    compress_map_output: false,
                    reduce_slowstart: 1.0,
                    ..JobConfig::default()
                },
            ] {
                let full =
                    simulate_with_dataflow(&spec, &dataflow, &ds.name, &zero_het, &config, 11)
                        .unwrap();
                let fast =
                    simulate_runtime_ms(&spec, &dataflow, &ds.name, &zero_het, &config, 11)
                        .unwrap();
                assert_eq!(
                    full.runtime_ms.to_bits(),
                    fast.to_bits(),
                    "fast path diverged: {} vs {}",
                    full.runtime_ms,
                    fast
                );
            }
        }
    }

    #[test]
    fn runtime_only_path_falls_back_on_heterogeneous_cluster() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let cl = cluster();
        assert!(cl.heterogeneity > 0.0);
        let dataflow = analyze(&spec, &ds, &cl).unwrap();
        let full =
            simulate_with_dataflow(&spec, &dataflow, &ds.name, &cl, &JobConfig::default(), 7)
                .unwrap();
        let fast =
            simulate_runtime_ms(&spec, &dataflow, &ds.name, &cl, &JobConfig::default(), 7)
                .unwrap();
        assert_eq!(full.runtime_ms.to_bits(), fast.to_bits());
    }

    #[test]
    fn runtime_only_path_propagates_errors() {
        let spec = jobs::word_cooccurrence_stripes(2);
        let large = corpus::wikipedia_35g();
        let zero_het = ClusterSpec {
            heterogeneity: 0.0,
            ..ClusterSpec::ec2_c1_medium_16()
        };
        let dataflow = analyze(&spec, &large, &zero_het).unwrap();
        let err = simulate_runtime_ms(
            &spec,
            &dataflow,
            &large.name,
            &zero_het,
            &JobConfig::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let ds = corpus::random_text_1g();
        let bad = JobConfig {
            num_reduce_tasks: 0,
            ..JobConfig::default()
        };
        let err = simulate(&jobs::word_count(), &ds, &cluster(), &bad, 1).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }
}
