//! The discrete-event job execution engine.
//!
//! Given a job, a dataset, a cluster, and a configuration, the engine:
//! 1. measures (or reuses) the config-independent dataflow,
//! 2. checks the reduce-side memory model,
//! 3. computes per-task phase costs with per-task node-utilization noise,
//! 4. schedules tasks onto slots in waves (maps first; reducers gated by
//!    `mapred.reduce.slowstart.completed.maps` and by shuffle completion),
//! 5. returns a [`JobReport`] with everything the profiler needs.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrjobs::{Dataset, JobSpec, ValueType};

use crate::cluster::{ClusterSpec, CostRates};
use crate::config::JobConfig;
use crate::dataflow::{analyze, Dataflow};
use crate::error::SimError;
use crate::faults::FaultStats;
use crate::phases::{map_task_costs, reduce_task_costs, MapTaskInputs, ReduceTaskInputs};
use crate::report::{JobReport, MapTaskReport, ReduceTaskReport};

/// Fixed job-level overhead (submission, setup, commit), in ms.
const JOB_OVERHEAD_MS: f64 = 4_000.0;

/// Salt for the fault-decision RNG stream. Fault draws come from their own
/// stream (distinct from the `seed ^ 0x5eed` noise stream) so enabling
/// fault injection never perturbs the per-task noise sequence.
const FAULT_SEED_SALT: u64 = 0x00fa_17ed;

/// In-memory inflation of deserialized container values (Java object
/// overhead); drives the OOM model for Map/List-valued intermediate data.
const CONTAINER_INFLATION: f64 = 6.0;

/// Fraction of the child heap usable for materializing a reduce group.
const HEAP_USABLE_FRACTION: f64 = 0.75;

impl CostRates {
    /// Scale IO/network components by `io_f` and CPU components by `cpu_f`
    /// — one task's observed rates on a more- or less-loaded node.
    pub fn jittered(&self, io_f: f64, cpu_f: f64) -> CostRates {
        CostRates {
            read_hdfs_ns_per_byte: self.read_hdfs_ns_per_byte * io_f,
            write_hdfs_ns_per_byte: self.write_hdfs_ns_per_byte * io_f,
            read_local_ns_per_byte: self.read_local_ns_per_byte * io_f,
            write_local_ns_per_byte: self.write_local_ns_per_byte * io_f,
            network_ns_per_byte: self.network_ns_per_byte * io_f,
            cpu_ns_per_op: self.cpu_ns_per_op * cpu_f,
            sort_ns_per_record: self.sort_ns_per_record * cpu_f,
            serde_ns_per_byte: self.serde_ns_per_byte * cpu_f,
            compress_ns_per_byte: self.compress_ns_per_byte * cpu_f,
            decompress_ns_per_byte: self.decompress_ns_per_byte * cpu_f,
        }
    }
}

/// Simulate a job execution end to end (measures dataflow first).
pub fn simulate(
    spec: &JobSpec,
    dataset: &Dataset,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<JobReport, SimError> {
    let dataflow = analyze(spec, dataset, cluster)?;
    simulate_with_dataflow(spec, &dataflow, &dataset.name, cluster, config, seed)
}

/// Simulate a job execution from a pre-measured dataflow. Reusing the
/// dataflow across configurations is how speedup experiments evaluate many
/// configurations cheaply.
pub fn simulate_with_dataflow(
    spec: &JobSpec,
    dataflow: &Dataflow,
    dataset_name: &str,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<JobReport, SimError> {
    config.validate()?;
    check_memory(spec, dataflow, cluster, config)?;
    if cluster.faults.is_inert() && cluster.is_uniform_speed() {
        simulate_clean(spec, dataflow, dataset_name, cluster, config, seed)
    } else {
        simulate_faulty(spec, dataflow, dataset_name, cluster, config, seed)
    }
}

/// The legacy fault-free scheduler. Kept byte-for-byte in behavior: with
/// `FaultSpec::default()` and no straggler nodes the public entry points
/// land here, which is what the pinned `to_bits` regression tests assert.
fn simulate_clean(
    spec: &JobSpec,
    dataflow: &Dataflow,
    dataset_name: &str,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<JobReport, SimError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let sigma = cluster.heterogeneity;

    // ---- Map wave scheduling -------------------------------------------
    let m = dataflow.num_map_tasks;
    let mut slot_free = vec![0.0f64; cluster.map_slots().max(1) as usize];
    let mut map_reports = Vec::with_capacity(m as usize);
    let mut total_final_bytes_disk = 0.0;
    let mut total_final_bytes_uncomp = 0.0;
    let mut total_final_records = 0.0;
    for task_id in 0..m {
        let flow = &dataflow.per_task[task_id as usize % dataflow.per_task.len()];
        let io_f = lognormal(&mut rng, sigma);
        let cpu_f = lognormal(&mut rng, sigma);
        let rates = cluster.rates.jittered(io_f, cpu_f);
        let inputs = MapTaskInputs {
            input_bytes: flow.input_bytes,
            input_records: flow.input_records,
            out_records: flow.out_records,
            out_bytes: flow.out_bytes,
            map_cpu_ops: flow.map_ops,
            combine: dataflow.combine,
        };
        let costs = map_task_costs(config, &rates, &inputs);
        total_final_bytes_disk += costs.final_out_bytes;
        total_final_bytes_uncomp += costs.final_out_bytes_uncompressed;
        total_final_records += costs.final_out_records;

        let dur_ms = costs.total_ns() / 1e6;
        let slot = earliest_slot(&slot_free);
        let start = slot_free[slot];
        let end = start + dur_ms;
        slot_free[slot] = end;
        map_reports.push(MapTaskReport {
            task_id,
            start_ms: start,
            end_ms: end,
            phases: costs.phases,
            input_records: flow.input_records,
            input_bytes: flow.input_bytes,
            out_records: flow.out_records,
            out_bytes: flow.out_bytes,
            final_out_records: costs.final_out_records,
            final_out_bytes: costs.final_out_bytes,
            num_spills: costs.num_spills,
            observed_rates: rates,
            map_cpu_ops: flow.map_ops,
            attempt: 1,
            speculative: false,
        });
    }

    // Map completion ordering for slowstart gating.
    let mut map_ends: Vec<f64> = map_reports.iter().map(|t| t.end_ms).collect();
    map_ends.sort_by(|a, b| a.total_cmp(b));
    let maps_done_ms = *map_ends.last().unwrap_or(&0.0);
    let slowstart_idx =
        ((config.reduce_slowstart * m as f64).ceil() as usize).clamp(1, map_ends.len());
    let reducers_eligible_ms = map_ends[slowstart_idx - 1];

    // ---- Reduce wave scheduling ----------------------------------------
    let mut reduce_reports = Vec::new();
    if let Some(red) = &dataflow.reduce {
        let r = config.num_reduce_tasks;
        let shares = red.partition_shares(r, spec.partitioner);
        let mut rslot_free = vec![reducers_eligible_ms; cluster.reduce_slots().max(1) as usize];
        // Reduce input records depend on whether the combiner ran.
        let total_in_records = if config.use_combiner && dataflow.combine.is_some() {
            total_final_records
        } else {
            red.in_records
        };
        // Aggregating reducers cannot emit more records than they consume;
        // the output estimate (distinct-key based) and the combined-input
        // estimate are extrapolated separately, so reconcile them here.
        let (total_out_records, total_out_bytes) =
            if red.out_records < red.in_records && red.out_records > total_in_records {
                let shrink = total_in_records / red.out_records;
                (total_in_records, red.out_bytes * shrink)
            } else {
                (red.out_records, red.out_bytes)
            };
        for (task_id, share) in shares.iter().enumerate() {
            let io_f = lognormal(&mut rng, sigma);
            let cpu_f = lognormal(&mut rng, sigma);
            let rates = cluster.rates.jittered(io_f, cpu_f);
            let inputs = ReduceTaskInputs {
                shuffle_bytes_disk: total_final_bytes_disk * share,
                shuffle_bytes: total_final_bytes_uncomp * share,
                in_records: total_in_records * share,
                num_segments: m,
                reduce_ops_per_record: red.ops_per_record,
                out_bytes: total_out_bytes * share,
                out_records: total_out_records * share,
                heap_bytes: cluster.heap_bytes() as f64,
                map_compressed: config.compress_map_output,
            };
            let costs = reduce_task_costs(config, &rates, &inputs);

            let slot = earliest_slot(&rslot_free);
            let start = rslot_free[slot];
            // Shuffle overlaps map execution but cannot complete before the
            // last map task finished producing output.
            let shuffle_ns: f64 = costs
                .phases
                .iter()
                .filter(|(p, _)| matches!(p, crate::phases::ReducePhase::Shuffle))
                .map(|(_, t)| t)
                .sum();
            let post_shuffle_ns = costs.total_ns() - shuffle_ns;
            let shuffle_end = (start + shuffle_ns / 1e6).max(maps_done_ms);
            let end = shuffle_end + post_shuffle_ns / 1e6;
            rslot_free[slot] = end;
            reduce_reports.push(ReduceTaskReport {
                task_id: task_id as u32,
                start_ms: start,
                end_ms: end,
                phases: costs.phases,
                shuffle_bytes: inputs.shuffle_bytes,
                in_records: inputs.in_records,
                out_records: inputs.out_records,
                out_bytes: inputs.out_bytes,
                observed_rates: rates,
                reduce_ops_per_record: red.ops_per_record,
                attempt: 1,
            });
        }
    }

    let last_end = reduce_reports
        .iter()
        .map(|t| t.end_ms)
        .fold(maps_done_ms, f64::max);

    Ok(JobReport {
        job_id: spec.job_id(),
        dataset: dataset_name.to_string(),
        config: config.clone(),
        runtime_ms: last_end + JOB_OVERHEAD_MS,
        maps_done_ms,
        map_tasks: map_reports,
        reduce_tasks: reduce_reports,
        faults: FaultStats::default(),
    })
}

/// The fault-aware scheduler: bounded task retries, straggler nodes,
/// whole-node loss with re-execution of lost map output, and speculative
/// backups for the slowest map stragglers.
///
/// Fault decisions come from a dedicated `chaos` RNG stream; per-attempt
/// noise comes from the same noise stream the clean path uses (but draws
/// happen per *attempt*, so retry patterns shift the sequence — only the
/// inert path is bit-identical to the legacy engine, which is the
/// guarantee the regression tests pin down).
fn simulate_faulty(
    spec: &JobSpec,
    dataflow: &Dataflow,
    dataset_name: &str,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<JobReport, SimError> {
    let faults = cluster.faults.clamped();
    let sigma = cluster.heterogeneity;
    let mut noise = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut chaos = StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
    let mut stats = FaultStats::default();

    let m = dataflow.num_map_tasks;
    let spn = cluster.map_slots_per_node.max(1) as usize;
    let workers = cluster.workers.max(1) as usize;
    let has_reduce = dataflow.reduce.is_some();

    // ---- Node death schedule -------------------------------------------
    // Deaths are placed uniformly inside a rough fault-free makespan
    // estimate; a death drawn past the real end simply never fires.
    let est = estimate_makespan_ms(dataflow, cluster, config, has_reduce);
    let mut node_death = vec![f64::INFINITY; workers];
    for d in node_death.iter_mut() {
        if chaos.gen::<f64>() < faults.node_loss_prob {
            *d = chaos.gen::<f64>() * est;
        }
    }
    stats.nodes_lost = node_death.iter().filter(|d| d.is_finite()).count() as u32;

    // ---- Map attempts ---------------------------------------------------
    struct MapWin {
        report: MapTaskReport,
        node: usize,
        final_uncomp: f64,
    }
    let mut winners: Vec<Option<MapWin>> = (0..m).map(|_| None).collect();
    let mut slot_free = vec![0.0f64; cluster.map_slots().max(1) as usize];
    let mut pending: VecDeque<(u32, u32)> = (0..m).map(|t| (t, 1)).collect();

    // One scheduling step for the queue of pending (task, attempt) pairs.
    // Each attempt draws fresh noise, may fail partway (injected), may be
    // killed by losing its node, or completes and becomes the task's
    // current winner.
    macro_rules! drain_map_queue {
        () => {
            while let Some((task_id, attempt)) = pending.pop_front() {
                if attempt > config.max_map_attempts {
                    return Err(SimError::TaskAttemptsExhausted {
                        job: spec.job_id(),
                        task: format!("map-{task_id}"),
                        attempts: config.max_map_attempts,
                    });
                }
                let Some(slot) = earliest_alive_slot(&slot_free, &node_death, spn) else {
                    return Err(SimError::ClusterLost { job: spec.job_id() });
                };
                let node = slot / spn;
                let start = slot_free[slot];
                let io_f = lognormal(&mut noise, sigma);
                let cpu_f = lognormal(&mut noise, sigma);
                let slow = cluster.node_slowdown_factor(node);
                let rates = cluster.rates.jittered(io_f * slow, cpu_f * slow);
                let flow = &dataflow.per_task[task_id as usize % dataflow.per_task.len()];
                let inputs = MapTaskInputs {
                    input_bytes: flow.input_bytes,
                    input_records: flow.input_records,
                    out_records: flow.out_records,
                    out_bytes: flow.out_bytes,
                    map_cpu_ops: flow.map_ops,
                    combine: dataflow.combine,
                };
                let costs = map_task_costs(config, &rates, &inputs);
                let dur_ms = costs.total_ns() / 1e6;
                stats.scheduled_attempts += 1;
                if chaos.gen::<f64>() < faults.task_failure_prob {
                    // Injected attempt failure partway through the run.
                    let died_at = (start + dur_ms * chaos.gen::<f64>()).min(node_death[node]);
                    stats.failed_attempts += 1;
                    stats.wasted_ms += died_at - start;
                    slot_free[slot] = died_at;
                    pending.push_back((task_id, attempt + 1));
                    continue;
                }
                let end = start + dur_ms;
                if node_death[node] < end {
                    // Node died under the attempt; the kill does not count
                    // against the task's attempt budget (as in Hadoop).
                    stats.failed_attempts += 1;
                    stats.wasted_ms += node_death[node] - start;
                    slot_free[slot] = node_death[node];
                    pending.push_back((task_id, attempt));
                    continue;
                }
                stats.successful_attempts += 1;
                slot_free[slot] = end;
                winners[task_id as usize] = Some(MapWin {
                    report: MapTaskReport {
                        task_id,
                        start_ms: start,
                        end_ms: end,
                        phases: costs.phases,
                        input_records: flow.input_records,
                        input_bytes: flow.input_bytes,
                        out_records: flow.out_records,
                        out_bytes: flow.out_bytes,
                        final_out_records: costs.final_out_records,
                        final_out_bytes: costs.final_out_bytes,
                        num_spills: costs.num_spills,
                        observed_rates: rates,
                        map_cpu_ops: flow.map_ops,
                        attempt,
                        speculative: false,
                    },
                    node,
                    final_uncomp: costs.final_out_bytes_uncompressed,
                });
            }
        };
    }
    drain_map_queue!();

    // ---- Speculative backups for map stragglers ------------------------
    if faults.speculation && m > 1 {
        let mut durs: Vec<f64> = winners
            .iter()
            .map(|w| w.as_ref().map(|w| w.report.duration_ms()).unwrap_or(0.0))
            .collect();
        durs.sort_by(|a, b| a.total_cmp(b));
        let median = durs[durs.len() / 2];
        let threshold = median * faults.speculation_threshold;
        let max_backups = ((m as f64) * faults.speculation_cap).ceil() as usize;
        // Slowest first, bounded by the speculation cap.
        let mut stragglers: Vec<u32> = (0..m)
            .filter(|t| {
                winners[*t as usize]
                    .as_ref()
                    .map(|w| w.report.duration_ms() > threshold)
                    .unwrap_or(false)
            })
            .collect();
        stragglers.sort_by(|a, b| {
            let da = winners[*a as usize].as_ref().unwrap().report.duration_ms();
            let db = winners[*b as usize].as_ref().unwrap().report.duration_ms();
            db.total_cmp(&da)
        });
        stragglers.truncate(max_backups);
        for task_id in stragglers {
            let (orig_start, orig_end, orig_attempt) = {
                let w = winners[task_id as usize].as_ref().unwrap();
                (w.report.start_ms, w.report.end_ms, w.report.attempt)
            };
            let Some(slot) = earliest_alive_slot(&slot_free, &node_death, spn) else {
                break; // cluster nearly gone; no capacity to speculate
            };
            let start = slot_free[slot].max(orig_start);
            if start >= orig_end {
                continue; // original finished before a backup could launch
            }
            let node = slot / spn;
            let io_f = lognormal(&mut noise, sigma);
            let cpu_f = lognormal(&mut noise, sigma);
            let slow = cluster.node_slowdown_factor(node);
            let rates = cluster.rates.jittered(io_f * slow, cpu_f * slow);
            let flow = &dataflow.per_task[task_id as usize % dataflow.per_task.len()];
            let inputs = MapTaskInputs {
                input_bytes: flow.input_bytes,
                input_records: flow.input_records,
                out_records: flow.out_records,
                out_bytes: flow.out_bytes,
                map_cpu_ops: flow.map_ops,
                combine: dataflow.combine,
            };
            let costs = map_task_costs(config, &rates, &inputs);
            let dur_ms = costs.total_ns() / 1e6;
            stats.scheduled_attempts += 1;
            if chaos.gen::<f64>() < faults.task_failure_prob {
                let died_at = (start + dur_ms * chaos.gen::<f64>()).min(node_death[node]);
                stats.failed_attempts += 1;
                stats.wasted_ms += died_at - start;
                slot_free[slot] = died_at;
                continue; // the original result stands
            }
            let end = start + dur_ms;
            if node_death[node] < end {
                stats.failed_attempts += 1;
                stats.wasted_ms += node_death[node] - start;
                slot_free[slot] = node_death[node];
                continue;
            }
            slot_free[slot] = end;
            if end < orig_end {
                // Backup wins: the backup counts as the success and the
                // original attempt — already tallied as a success when the
                // wave drained — is reclassified as the speculative kill,
                // so `successful_attempts` nets out unchanged.
                stats.speculative_kills += 1;
                stats.speculative_wins += 1;
                stats.wasted_ms += end - orig_start;
                winners[task_id as usize] = Some(MapWin {
                    report: MapTaskReport {
                        task_id,
                        start_ms: start,
                        end_ms: end,
                        phases: costs.phases,
                        input_records: flow.input_records,
                        input_bytes: flow.input_bytes,
                        out_records: flow.out_records,
                        out_bytes: flow.out_bytes,
                        final_out_records: costs.final_out_records,
                        final_out_bytes: costs.final_out_bytes,
                        num_spills: costs.num_spills,
                        observed_rates: rates,
                        map_cpu_ops: flow.map_ops,
                        attempt: orig_attempt + 1,
                        speculative: true,
                    },
                    node,
                    final_uncomp: costs.final_out_bytes_uncompressed,
                });
            } else {
                // Original wins: the completed backup is discarded.
                stats.speculative_kills += 1;
                stats.wasted_ms += end - start;
            }
        }
    }

    // ---- Node loss: re-execute map output lost with its node -----------
    // Map output lives on the local disk of the node that ran the task;
    // when that node is (or will be) lost and a reduce phase still needs
    // the output, the task re-executes elsewhere. Iterate until every
    // winning attempt sits on a surviving node.
    if has_reduce {
        loop {
            let mut lost = false;
            for t in 0..m {
                let relaunch = {
                    let w = winners[t as usize].as_ref().unwrap();
                    node_death[w.node].is_finite()
                };
                if relaunch {
                    stats.map_tasks_reexecuted += 1;
                    {
                        let w = winners[t as usize].as_ref().unwrap();
                        stats.wasted_ms += w.report.duration_ms();
                    }
                    pending.push_back((t, 1));
                    lost = true;
                }
            }
            if !lost {
                break;
            }
            drain_map_queue!();
        }
    }

    let map_reports: Vec<MapTaskReport> = winners
        .iter()
        .map(|w| w.as_ref().unwrap().report.clone())
        .collect();
    let total_final_bytes_disk: f64 = map_reports.iter().map(|t| t.final_out_bytes).sum();
    let total_final_records: f64 = map_reports.iter().map(|t| t.final_out_records).sum();
    let total_final_bytes_uncomp: f64 = winners
        .iter()
        .map(|w| w.as_ref().unwrap().final_uncomp)
        .sum();

    let mut map_ends: Vec<f64> = map_reports.iter().map(|t| t.end_ms).collect();
    map_ends.sort_by(|a, b| a.total_cmp(b));
    let maps_done_ms = *map_ends.last().unwrap_or(&0.0);
    let slowstart_idx =
        ((config.reduce_slowstart * m as f64).ceil() as usize).clamp(1, map_ends.len().max(1));
    let reducers_eligible_ms = if map_ends.is_empty() {
        0.0
    } else {
        map_ends[slowstart_idx - 1]
    };

    // ---- Reduce attempts ------------------------------------------------
    let mut reduce_reports = Vec::new();
    if let Some(red) = &dataflow.reduce {
        let r = config.num_reduce_tasks;
        let shares = red.partition_shares(r, spec.partitioner);
        let rspn = cluster.reduce_slots_per_node.max(1) as usize;
        let mut rslot_free = vec![reducers_eligible_ms; cluster.reduce_slots().max(1) as usize];
        let total_in_records = if config.use_combiner && dataflow.combine.is_some() {
            total_final_records
        } else {
            red.in_records
        };
        let (total_out_records, total_out_bytes) =
            if red.out_records < red.in_records && red.out_records > total_in_records {
                let shrink = total_in_records / red.out_records;
                (total_in_records, red.out_bytes * shrink)
            } else {
                (red.out_records, red.out_bytes)
            };
        let mut rpending: VecDeque<(usize, u32)> = (0..shares.len()).map(|t| (t, 1)).collect();
        while let Some((task_id, attempt)) = rpending.pop_front() {
            if attempt > config.max_reduce_attempts {
                return Err(SimError::TaskAttemptsExhausted {
                    job: spec.job_id(),
                    task: format!("reduce-{task_id}"),
                    attempts: config.max_reduce_attempts,
                });
            }
            let Some(slot) = earliest_alive_slot(&rslot_free, &node_death, rspn) else {
                return Err(SimError::ClusterLost { job: spec.job_id() });
            };
            let node = slot / rspn;
            let start = rslot_free[slot];
            let share = shares[task_id];
            let io_f = lognormal(&mut noise, sigma);
            let cpu_f = lognormal(&mut noise, sigma);
            let slow = cluster.node_slowdown_factor(node);
            let rates = cluster.rates.jittered(io_f * slow, cpu_f * slow);
            let inputs = ReduceTaskInputs {
                shuffle_bytes_disk: total_final_bytes_disk * share,
                shuffle_bytes: total_final_bytes_uncomp * share,
                in_records: total_in_records * share,
                num_segments: m,
                reduce_ops_per_record: red.ops_per_record,
                out_bytes: total_out_bytes * share,
                out_records: total_out_records * share,
                heap_bytes: cluster.heap_bytes() as f64,
                map_compressed: config.compress_map_output,
            };
            let costs = reduce_task_costs(config, &rates, &inputs);
            let shuffle_ns: f64 = costs
                .phases
                .iter()
                .filter(|(p, _)| matches!(p, crate::phases::ReducePhase::Shuffle))
                .map(|(_, t)| t)
                .sum();
            let post_shuffle_ns = costs.total_ns() - shuffle_ns;
            let shuffle_end = (start + shuffle_ns / 1e6).max(maps_done_ms);
            let end = shuffle_end + post_shuffle_ns / 1e6;
            let dur_ms = end - start;
            stats.scheduled_attempts += 1;
            if chaos.gen::<f64>() < faults.task_failure_prob {
                let died_at = (start + dur_ms * chaos.gen::<f64>()).min(node_death[node]);
                stats.failed_attempts += 1;
                stats.wasted_ms += died_at - start;
                rslot_free[slot] = died_at;
                rpending.push_back((task_id, attempt + 1));
                continue;
            }
            if node_death[node] < end {
                stats.failed_attempts += 1;
                stats.wasted_ms += node_death[node] - start;
                rslot_free[slot] = node_death[node];
                rpending.push_back((task_id, attempt));
                continue;
            }
            stats.successful_attempts += 1;
            rslot_free[slot] = end;
            reduce_reports.push(ReduceTaskReport {
                task_id: task_id as u32,
                start_ms: start,
                end_ms: end,
                phases: costs.phases,
                shuffle_bytes: inputs.shuffle_bytes,
                in_records: inputs.in_records,
                out_records: inputs.out_records,
                out_bytes: inputs.out_bytes,
                observed_rates: rates,
                reduce_ops_per_record: red.ops_per_record,
                attempt,
            });
        }
        reduce_reports.sort_by_key(|t| t.task_id);
    }

    let last_end = reduce_reports
        .iter()
        .map(|t| t.end_ms)
        .fold(maps_done_ms, f64::max);

    Ok(JobReport {
        job_id: spec.job_id(),
        dataset: dataset_name.to_string(),
        config: config.clone(),
        runtime_ms: last_end + JOB_OVERHEAD_MS,
        maps_done_ms,
        map_tasks: map_reports,
        reduce_tasks: reduce_reports,
        faults: stats,
    })
}

/// Rough fault-free makespan estimate used to place node deaths inside
/// the job's lifetime. Accuracy only shapes *where* deaths land; any
/// deterministic estimate keeps the simulation reproducible.
fn estimate_makespan_ms(
    dataflow: &Dataflow,
    cluster: &ClusterSpec,
    config: &JobConfig,
    has_reduce: bool,
) -> f64 {
    let rates = cluster.rates.jittered(1.0, 1.0);
    let per_flow: Vec<f64> = dataflow
        .per_task
        .iter()
        .map(|flow| {
            let inputs = MapTaskInputs {
                input_bytes: flow.input_bytes,
                input_records: flow.input_records,
                out_records: flow.out_records,
                out_bytes: flow.out_bytes,
                map_cpu_ops: flow.map_ops,
                combine: dataflow.combine,
            };
            map_task_costs(config, &rates, &inputs).total_ns() / 1e6
        })
        .collect();
    let mut total = 0.0;
    for task_id in 0..dataflow.num_map_tasks {
        total += per_flow[task_id as usize % per_flow.len()];
    }
    let wave = total / f64::from(cluster.map_slots().max(1));
    wave * if has_reduce { 3.0 } else { 1.5 } + JOB_OVERHEAD_MS
}

/// The earliest-free slot whose node is still alive when the slot frees;
/// `None` when every surviving node is gone.
fn earliest_alive_slot(slot_free: &[f64], node_death: &[f64], spn: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, t) in slot_free.iter().enumerate() {
        if node_death[i / spn] <= *t {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if *t < slot_free[b] => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Predict only the job runtime (ms) from a pre-measured dataflow,
/// without materializing per-task reports.
///
/// For a deterministic cluster (`heterogeneity == 0`) this takes a fast
/// path that prices each *distinct* per-task flow once and replays the
/// slot schedule arithmetically; the result is bit-identical to
/// `simulate_with_dataflow(..).runtime_ms` (asserted by tests) because the
/// full engine draws no noise at zero heterogeneity and the fast path
/// mirrors its accumulation order exactly. Heterogeneous clusters fall
/// back to the full simulation. This is the What-If engine's hot path:
/// the CBO prices hundreds of configurations per search, and skipping
/// 560 `MapTaskReport` allocations per call is most of the win.
pub fn simulate_runtime_ms(
    spec: &JobSpec,
    dataflow: &Dataflow,
    dataset_name: &str,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<f64, SimError> {
    if cluster.heterogeneity > 0.0 || !cluster.faults.is_inert() || !cluster.is_uniform_speed() {
        return Ok(
            simulate_with_dataflow(spec, dataflow, dataset_name, cluster, config, seed)?.runtime_ms,
        );
    }
    config.validate()?;
    check_memory(spec, dataflow, cluster, config)?;

    // ---- Map wave: one cost computation per distinct flow --------------
    let m = dataflow.num_map_tasks;
    let rates = cluster.rates.jittered(1.0, 1.0);
    struct FlowCost {
        dur_ms: f64,
        final_out_bytes: f64,
        final_out_bytes_uncompressed: f64,
        final_out_records: f64,
    }
    let flow_costs: Vec<FlowCost> = dataflow
        .per_task
        .iter()
        .map(|flow| {
            let inputs = MapTaskInputs {
                input_bytes: flow.input_bytes,
                input_records: flow.input_records,
                out_records: flow.out_records,
                out_bytes: flow.out_bytes,
                map_cpu_ops: flow.map_ops,
                combine: dataflow.combine,
            };
            let costs = map_task_costs(config, &rates, &inputs);
            FlowCost {
                dur_ms: costs.total_ns() / 1e6,
                final_out_bytes: costs.final_out_bytes,
                final_out_bytes_uncompressed: costs.final_out_bytes_uncompressed,
                final_out_records: costs.final_out_records,
            }
        })
        .collect();

    let mut slot_free = vec![0.0f64; cluster.map_slots().max(1) as usize];
    let mut map_ends = Vec::with_capacity(m as usize);
    let mut total_final_bytes_disk = 0.0;
    let mut total_final_bytes_uncomp = 0.0;
    let mut total_final_records = 0.0;
    for task_id in 0..m {
        let fc = &flow_costs[task_id as usize % flow_costs.len()];
        total_final_bytes_disk += fc.final_out_bytes;
        total_final_bytes_uncomp += fc.final_out_bytes_uncompressed;
        total_final_records += fc.final_out_records;
        let slot = earliest_slot(&slot_free);
        let end = slot_free[slot] + fc.dur_ms;
        slot_free[slot] = end;
        map_ends.push(end);
    }
    map_ends.sort_by(|a, b| a.total_cmp(b));
    let maps_done_ms = *map_ends.last().unwrap_or(&0.0);
    let slowstart_idx =
        ((config.reduce_slowstart * m as f64).ceil() as usize).clamp(1, map_ends.len());
    let reducers_eligible_ms = map_ends[slowstart_idx - 1];

    // ---- Reduce wave ----------------------------------------------------
    let mut last_end = maps_done_ms;
    if let Some(red) = &dataflow.reduce {
        let r = config.num_reduce_tasks;
        let shares = red.partition_shares(r, spec.partitioner);
        let mut rslot_free = vec![reducers_eligible_ms; cluster.reduce_slots().max(1) as usize];
        let total_in_records = if config.use_combiner && dataflow.combine.is_some() {
            total_final_records
        } else {
            red.in_records
        };
        let (total_out_records, total_out_bytes) =
            if red.out_records < red.in_records && red.out_records > total_in_records {
                let shrink = total_in_records / red.out_records;
                (total_in_records, red.out_bytes * shrink)
            } else {
                (red.out_records, red.out_bytes)
            };
        // The what-if dataflow partitions uniformly (and real hash
        // partitions repeat shares), so identical shares produce identical
        // task costs — price each distinct share once and replay.
        let mut share_costs: Vec<(u64, f64, f64)> = Vec::with_capacity(2);
        for share in shares.iter() {
            let bits = share.to_bits();
            let (shuffle_ns, post_shuffle_ns) =
                match share_costs.iter().find(|(b, _, _)| *b == bits) {
                    Some((_, s, p)) => (*s, *p),
                    None => {
                        let inputs = ReduceTaskInputs {
                            shuffle_bytes_disk: total_final_bytes_disk * share,
                            shuffle_bytes: total_final_bytes_uncomp * share,
                            in_records: total_in_records * share,
                            num_segments: m,
                            reduce_ops_per_record: red.ops_per_record,
                            out_bytes: total_out_bytes * share,
                            out_records: total_out_records * share,
                            heap_bytes: cluster.heap_bytes() as f64,
                            map_compressed: config.compress_map_output,
                        };
                        let costs = reduce_task_costs(config, &rates, &inputs);
                        let shuffle_ns: f64 = costs
                            .phases
                            .iter()
                            .filter(|(p, _)| matches!(p, crate::phases::ReducePhase::Shuffle))
                            .map(|(_, t)| t)
                            .sum();
                        let post_shuffle_ns = costs.total_ns() - shuffle_ns;
                        share_costs.push((bits, shuffle_ns, post_shuffle_ns));
                        (shuffle_ns, post_shuffle_ns)
                    }
                };
            let slot = earliest_slot(&rslot_free);
            let start = rslot_free[slot];
            let shuffle_end = (start + shuffle_ns / 1e6).max(maps_done_ms);
            let end = shuffle_end + post_shuffle_ns / 1e6;
            rslot_free[slot] = end;
            last_end = last_end.max(end);
        }
    }

    Ok(last_end + JOB_OVERHEAD_MS)
}

/// The reduce-side memory model (see DESIGN.md): jobs with container-typed
/// intermediate values must materialize merged groups; if the largest
/// scaled group inflated by Java object overhead exceeds the usable heap,
/// the task dies with an OOM — as the co-occurrence stripes job did on the
/// 35 GB dataset in the paper.
fn check_memory(
    spec: &JobSpec,
    dataflow: &Dataflow,
    cluster: &ClusterSpec,
    config: &JobConfig,
) -> Result<(), SimError> {
    let Some(red) = &dataflow.reduce else {
        return Ok(());
    };
    if !matches!(spec.map_out_val, ValueType::Map | ValueType::List) {
        return Ok(());
    }
    let combine_shrink = match (config.use_combiner, dataflow.combine) {
        (true, Some(c)) => c.size_selectivity,
        _ => 1.0,
    };
    let needed = red.max_group_bytes * combine_shrink * CONTAINER_INFLATION;
    let budget = cluster.heap_bytes() as f64 * HEAP_USABLE_FRACTION;
    if needed > budget {
        return Err(SimError::OutOfMemory {
            job: spec.job_id(),
            task: "reduce".to_string(),
            needed_bytes: needed as u64,
            heap_bytes: cluster.heap_bytes(),
        });
    }
    Ok(())
}

fn earliest_slot(slots: &[f64]) -> usize {
    let mut best = 0;
    for (i, t) in slots.iter().enumerate() {
        if *t < slots[best] {
            best = i;
        }
    }
    best
}

/// A log-normal multiplicative noise factor with median 1.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;

    fn cluster() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn word_count_runs_and_is_deterministic() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let a = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 7).unwrap();
        let b = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 7).unwrap();
        assert_eq!(a.runtime_ms, b.runtime_ms);
        assert_eq!(a.map_tasks.len(), 16);
        assert_eq!(a.reduce_tasks.len(), 1);
        assert!(a.runtime_ms > JOB_OVERHEAD_MS);
    }

    #[test]
    fn different_seeds_jitter_runtimes() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let a = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 1).unwrap();
        let b = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 2).unwrap();
        assert_ne!(a.runtime_ms, b.runtime_ms);
        // ... but not wildly: same config, same data.
        let ratio = a.runtime_ms / b.runtime_ms;
        assert!((0.5..2.0).contains(&ratio));
    }

    #[test]
    fn more_reducers_speed_up_shuffle_heavy_jobs() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);
        let one = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 3).unwrap();
        let many = JobConfig {
            num_reduce_tasks: 27,
            ..JobConfig::default()
        };
        let tuned = simulate(&spec, &ds, &cluster(), &many, 3).unwrap();
        assert!(
            tuned.runtime_ms < one.runtime_ms / 2.0,
            "27 reducers {} vs 1 reducer {}",
            tuned.runtime_ms,
            one.runtime_ms
        );
    }

    #[test]
    fn slowstart_gates_reducer_start() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let eager = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 3).unwrap();
        let lazy_cfg = JobConfig {
            reduce_slowstart: 1.0,
            ..JobConfig::default()
        };
        let lazy = simulate(&spec, &ds, &cluster(), &lazy_cfg, 3).unwrap();
        let eager_start = eager.reduce_tasks[0].start_ms;
        let lazy_start = lazy.reduce_tasks[0].start_ms;
        assert!(lazy_start >= eager_start);
        assert!((lazy_start - lazy.maps_done_ms).abs() < 1e-6);
    }

    #[test]
    fn stripes_oom_on_large_data_but_not_small() {
        let spec = jobs::word_cooccurrence_stripes(2);
        let small = corpus::random_text_1g();
        let large = corpus::wikipedia_35g();
        let cl = cluster();
        assert!(simulate(&spec, &small, &cl, &JobConfig::default(), 1).is_ok());
        let err = simulate(&spec, &large, &cl, &JobConfig::default(), 1).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn map_only_scheduling_uses_waves() {
        let ds = corpus::wikipedia_35g(); // 560 tasks over 30 slots
        let spec = jobs::word_count();
        let rep = simulate(&spec, &ds, &cluster(), &JobConfig::default(), 5).unwrap();
        assert_eq!(rep.map_tasks.len(), 560);
        // Later tasks start strictly after time 0 (waves).
        assert!(rep.map_tasks.iter().filter(|t| t.start_ms > 0.0).count() > 500);
    }

    #[test]
    fn runtime_only_path_is_bit_identical_on_deterministic_cluster() {
        let zero_het = ClusterSpec {
            heterogeneity: 0.0,
            ..ClusterSpec::ec2_c1_medium_16()
        };
        for (ds, spec) in [
            (corpus::random_text_1g(), jobs::word_count()),
            (corpus::random_text_1g(), jobs::word_cooccurrence_pairs(2)),
            (corpus::wikipedia_35g(), jobs::word_count()),
        ] {
            let dataflow = analyze(&spec, &ds, &zero_het).unwrap();
            for config in [
                JobConfig::default(),
                JobConfig {
                    num_reduce_tasks: 27,
                    use_combiner: false,
                    compress_map_output: false,
                    reduce_slowstart: 1.0,
                    ..JobConfig::default()
                },
            ] {
                let full =
                    simulate_with_dataflow(&spec, &dataflow, &ds.name, &zero_het, &config, 11)
                        .unwrap();
                let fast = simulate_runtime_ms(&spec, &dataflow, &ds.name, &zero_het, &config, 11)
                    .unwrap();
                assert_eq!(
                    full.runtime_ms.to_bits(),
                    fast.to_bits(),
                    "fast path diverged: {} vs {}",
                    full.runtime_ms,
                    fast
                );
            }
        }
    }

    #[test]
    fn runtime_only_path_falls_back_on_heterogeneous_cluster() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let cl = cluster();
        assert!(cl.heterogeneity > 0.0);
        let dataflow = analyze(&spec, &ds, &cl).unwrap();
        let full =
            simulate_with_dataflow(&spec, &dataflow, &ds.name, &cl, &JobConfig::default(), 7)
                .unwrap();
        let fast =
            simulate_runtime_ms(&spec, &dataflow, &ds.name, &cl, &JobConfig::default(), 7).unwrap();
        assert_eq!(full.runtime_ms.to_bits(), fast.to_bits());
    }

    #[test]
    fn runtime_only_path_propagates_errors() {
        let spec = jobs::word_cooccurrence_stripes(2);
        let large = corpus::wikipedia_35g();
        let zero_het = ClusterSpec {
            heterogeneity: 0.0,
            ..ClusterSpec::ec2_c1_medium_16()
        };
        let dataflow = analyze(&spec, &large, &zero_het).unwrap();
        let err = simulate_runtime_ms(
            &spec,
            &dataflow,
            &large.name,
            &zero_het,
            &JobConfig::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let ds = corpus::random_text_1g();
        let bad = JobConfig {
            num_reduce_tasks: 0,
            ..JobConfig::default()
        };
        let err = simulate(&jobs::word_count(), &ds, &cluster(), &bad, 1).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    /// Pinned pre-fault-injection outputs: `FaultSpec::default()` must keep
    /// `simulate()` bit-identical to the engine before the fault layer
    /// existed. The `to_bits` values were captured from that build.
    #[test]
    fn inert_faults_are_bit_identical_to_pre_fault_engine() {
        let cl = cluster();
        assert!(cl.faults.is_inert() && cl.is_uniform_speed());
        let cases: [(mrjobs::JobSpec, mrjobs::Dataset, u64, u64); 5] = [
            (
                jobs::word_count(),
                corpus::random_text_1g(),
                7,
                0x40e49dc854e6c38e,
            ),
            (
                jobs::word_count(),
                corpus::random_text_1g(),
                11,
                0x40e1d78e7dbfdb23,
            ),
            (
                jobs::word_cooccurrence_pairs(2),
                corpus::wikipedia_35g(),
                3,
                0x419484c1f41df7fb,
            ),
            (jobs::sort(), corpus::teragen_1g(), 5, 0x40fe239266270300),
            (jobs::join(), corpus::tpch_1g(), 13, 0x410793788fc667a0),
        ];
        for (spec, ds, seed, bits) in &cases {
            let rep = simulate(spec, ds, &cl, &JobConfig::default(), *seed).unwrap();
            assert_eq!(
                rep.runtime_ms.to_bits(),
                *bits,
                "{} on {} seed {seed}: {} != pinned",
                spec.job_id(),
                ds.name,
                rep.runtime_ms
            );
            assert_eq!(rep.faults, crate::faults::FaultStats::default());
        }
    }

    #[test]
    fn task_failures_are_retried_and_accounted() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let cl = ClusterSpec {
            faults: crate::faults::FaultSpec {
                task_failure_prob: 0.3,
                ..crate::faults::FaultSpec::default()
            },
            ..cluster()
        };
        let rep = simulate(&spec, &ds, &cl, &JobConfig::default(), 42).unwrap();
        assert!(rep.faults.failed_attempts > 0, "{:?}", rep.faults);
        assert!(rep.faults.wasted_ms > 0.0);
        assert!(rep.faults.is_conserved(), "{:?}", rep.faults);
        assert!(rep.map_tasks.iter().any(|t| t.attempt > 1));
        // All 16 map tasks still produced a winning attempt.
        assert_eq!(rep.map_tasks.len(), 16);
    }

    #[test]
    fn exhausted_attempts_fail_the_job() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let cl = ClusterSpec {
            faults: crate::faults::FaultSpec {
                task_failure_prob: 0.999,
                ..crate::faults::FaultSpec::default()
            },
            ..cluster()
        };
        let err = simulate(&spec, &ds, &cl, &JobConfig::default(), 1).unwrap_err();
        assert!(
            matches!(err, SimError::TaskAttemptsExhausted { .. }),
            "{err}"
        );
        assert!(err.is_fault());
    }

    #[test]
    fn losing_every_node_loses_the_cluster() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let cl = ClusterSpec {
            faults: crate::faults::FaultSpec {
                node_loss_prob: 1.0,
                ..crate::faults::FaultSpec::default()
            },
            ..cluster()
        };
        let err = simulate(&spec, &ds, &cl, &JobConfig::default(), 2).unwrap_err();
        assert!(matches!(err, SimError::ClusterLost { .. }), "{err}");
        assert!(err.is_fault());
    }

    #[test]
    fn occasional_node_loss_reexecutes_lost_map_output() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        // Scan seeds for a run where a node dies *after* completing map
        // work, forcing re-execution of its lost output; a node that dies
        // before finishing any map triggers nothing (legitimately).
        let mut saw_reexecution = false;
        for seed in 0..64 {
            let cl = ClusterSpec {
                faults: crate::faults::FaultSpec {
                    node_loss_prob: 0.08,
                    ..crate::faults::FaultSpec::default()
                },
                ..cluster()
            };
            if let Ok(rep) = simulate(&spec, &ds, &cl, &JobConfig::default(), seed) {
                assert!(rep.faults.is_conserved(), "seed {seed}: {:?}", rep.faults);
                if rep.faults.map_tasks_reexecuted > 0 {
                    assert!(rep.faults.nodes_lost > 0, "{:?}", rep.faults);
                    assert!(rep.faults.wasted_ms > 0.0);
                    saw_reexecution = true;
                }
            }
        }
        assert!(
            saw_reexecution,
            "no seed in 0..64 re-executed lost map output"
        );
    }

    #[test]
    fn speculation_rescues_straggler_nodes() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let mut slow = vec![1.0; 15];
        slow[0] = 4.0; // slots 0 and 1 run 4x slower
        let base = ClusterSpec {
            node_slowdown: slow.clone(),
            heterogeneity: 0.0,
            ..cluster()
        };
        let spec_on = ClusterSpec {
            faults: crate::faults::FaultSpec {
                speculation: true,
                ..crate::faults::FaultSpec::default()
            },
            ..base.clone()
        };
        let plain = simulate(&spec, &ds, &base, &JobConfig::default(), 9).unwrap();
        let rescued = simulate(&spec, &ds, &spec_on, &JobConfig::default(), 9).unwrap();
        assert!(rescued.faults.speculative_wins > 0, "{:?}", rescued.faults);
        assert!(rescued.faults.is_conserved(), "{:?}", rescued.faults);
        assert!(
            rescued.maps_done_ms < plain.maps_done_ms,
            "speculation did not help: {} vs {}",
            rescued.maps_done_ms,
            plain.maps_done_ms
        );
        assert!(rescued.map_tasks.iter().any(|t| t.speculative));
    }

    #[test]
    fn runtime_only_path_falls_back_under_faults() {
        let ds = corpus::random_text_1g();
        let spec = jobs::word_count();
        let cl = ClusterSpec {
            heterogeneity: 0.0,
            faults: crate::faults::FaultSpec {
                task_failure_prob: 0.2,
                ..crate::faults::FaultSpec::default()
            },
            ..cluster()
        };
        let dataflow = analyze(&spec, &ds, &cl).unwrap();
        let full =
            simulate_with_dataflow(&spec, &dataflow, &ds.name, &cl, &JobConfig::default(), 3)
                .unwrap();
        let fast =
            simulate_runtime_ms(&spec, &dataflow, &ds.name, &cl, &JobConfig::default(), 3).unwrap();
        assert_eq!(full.runtime_ms.to_bits(), fast.to_bits());
        assert!(full.faults.scheduled_attempts > 0);
    }
}
