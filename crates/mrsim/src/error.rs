//! Simulator errors.

use mrjobs::InterpError;
use std::fmt;

use crate::config::ConfigError;

/// Errors raised while simulating a job execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The dataset sample contains no records.
    EmptyDataset(String),
    /// A UDF failed during dataflow measurement.
    Udf {
        job: String,
        udf: String,
        source: InterpError,
    },
    /// Invalid job configuration.
    Config(ConfigError),
    /// A task exceeded the child JVM heap — the fate of the co-occurrence
    /// stripes job on the 35 GB dataset in the paper (§6.1.1).
    OutOfMemory {
        job: String,
        task: String,
        needed_bytes: u64,
        heap_bytes: u64,
    },
    /// Fault injection: a task kept failing until it exhausted its
    /// configured attempt cap (`mapred.{map,reduce}.max.attempts`), which
    /// fails the whole job, as in Hadoop.
    TaskAttemptsExhausted {
        job: String,
        task: String,
        attempts: u32,
    },
    /// Fault injection: every worker node was lost before the job could
    /// finish — nowhere left to schedule attempts.
    ClusterLost { job: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyDataset(name) => write!(f, "dataset `{name}` has no sample records"),
            SimError::Udf { job, udf, source } => {
                write!(f, "job `{job}`: UDF `{udf}` failed: {source}")
            }
            SimError::Config(e) => write!(f, "{e}"),
            SimError::OutOfMemory {
                job,
                task,
                needed_bytes,
                heap_bytes,
            } => write!(
                f,
                "job `{job}`: {task} exceeded heap: needs ~{needed_bytes} bytes, heap is {heap_bytes}"
            ),
            SimError::TaskAttemptsExhausted { job, task, attempts } => {
                write!(f, "job `{job}`: {task} failed all {attempts} attempts")
            }
            SimError::ClusterLost { job } => {
                write!(f, "job `{job}`: all worker nodes lost before completion")
            }
        }
    }
}

impl SimError {
    /// True for errors produced by injected cluster faults (transient: a
    /// retry with a different seed or a laxer attempt cap may succeed), as
    /// opposed to deterministic modelling errors (bad config, UDF failure,
    /// OOM) that recur on every retry.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            SimError::TaskAttemptsExhausted { .. } | SimError::ClusterLost { .. }
        )
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Udf { source, .. } => Some(source),
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}
