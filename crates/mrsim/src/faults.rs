//! Deterministic, seedable fault injection for the simulated cluster.
//!
//! The paper's profiles come from a real EC2 Hadoop deployment where task
//! attempts fail, nodes straggle or disappear, and speculative execution
//! re-runs the slowest stragglers. [`FaultSpec`] parameterizes those
//! failure modes; the engine draws every fault decision from its own RNG
//! stream (seeded separately from the per-task noise stream) so turning
//! faults on does not perturb the noise draws of the fault-free model.
//!
//! `FaultSpec::default()` disables everything and the engine routes to the
//! exact legacy scheduling code, so the fault-free simulation stays
//! bit-identical (asserted by regression tests against pinned
//! `f64::to_bits` values).

/// Fault-injection parameters of a simulated cluster.
///
/// All probabilities are per-draw in `[0, 1)`. The default is fully inert.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability that any single task attempt fails partway through
    /// (lost child JVM, disk error, ...). The attempt's partial runtime is
    /// wasted and the task is retried up to the configured attempt cap.
    pub task_failure_prob: f64,
    /// Probability that a worker node is lost at some point during the
    /// job. Attempts running on the node are killed; completed map output
    /// stored on the node is lost and the map tasks re-execute (when the
    /// job has a reduce phase that still needs the output).
    pub node_loss_prob: f64,
    /// Enable speculative re-execution of straggling map tasks.
    pub speculation: bool,
    /// A map task is a straggler when its duration exceeds this multiple
    /// of the median successful map duration.
    pub speculation_threshold: f64,
    /// At most this fraction of map tasks get speculative backups.
    pub speculation_cap: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            task_failure_prob: 0.0,
            node_loss_prob: 0.0,
            speculation: false,
            speculation_threshold: 1.5,
            speculation_cap: 0.1,
        }
    }
}

impl FaultSpec {
    /// A moderately faulty cluster: occasional attempt failures, rare node
    /// loss, speculation on — the profile of a busy shared EC2 deployment.
    pub fn flaky() -> Self {
        FaultSpec {
            task_failure_prob: 0.02,
            node_loss_prob: 0.01,
            speculation: true,
            ..FaultSpec::default()
        }
    }

    /// True when no fault mechanism can fire; the engine then uses the
    /// legacy (bit-identical) scheduling path.
    pub fn is_inert(&self) -> bool {
        self.task_failure_prob <= 0.0 && self.node_loss_prob <= 0.0 && !self.speculation
    }

    /// Clamp probabilities into sane ranges (used defensively by the
    /// engine so a hand-built spec cannot loop forever).
    pub fn clamped(&self) -> FaultSpec {
        FaultSpec {
            task_failure_prob: self.task_failure_prob.clamp(0.0, 0.999),
            node_loss_prob: self.node_loss_prob.clamp(0.0, 1.0),
            speculation: self.speculation,
            speculation_threshold: self.speculation_threshold.max(1.0),
            speculation_cap: self.speculation_cap.clamp(0.0, 1.0),
        }
    }
}

/// Attempt-level accounting of a faulted run, carried on
/// [`crate::report::JobReport`]. The invariant (asserted by the chaos
/// property tests) is:
///
/// ```text
/// successful_attempts + failed_attempts + speculative_kills
///     == scheduled_attempts
/// ```
///
/// On the legacy (inert) path no attempts are "scheduled" through the
/// fault machinery and the stats stay all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Total task attempts handed to a slot (map + reduce + speculative).
    pub scheduled_attempts: u32,
    /// Attempts that ran to completion and whose result was kept or lost
    /// only later (node loss after completion re-executes the task but
    /// does not retroactively un-succeed the attempt).
    pub successful_attempts: u32,
    /// Attempts that died: injected task failures plus attempts killed by
    /// losing their node mid-run.
    pub failed_attempts: u32,
    /// Losers of speculative races (the copy whose result was discarded).
    pub speculative_kills: u32,
    /// Speculative backups that finished before the original attempt.
    pub speculative_wins: u32,
    /// Simulated time burned in failed/killed/discarded attempts, ms.
    pub wasted_ms: f64,
    /// Worker nodes lost during the job.
    pub nodes_lost: u32,
    /// Map tasks re-executed because their output died with a node.
    pub map_tasks_reexecuted: u32,
}

impl FaultStats {
    /// The conservation invariant checked by the chaos tests.
    pub fn is_conserved(&self) -> bool {
        self.successful_attempts + self.failed_attempts + self.speculative_kills
            == self.scheduled_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        assert!(FaultSpec::default().is_inert());
        assert!(!FaultSpec::flaky().is_inert());
        assert!(!FaultSpec {
            speculation: true,
            ..FaultSpec::default()
        }
        .is_inert());
    }

    #[test]
    fn clamping_bounds_probabilities() {
        let wild = FaultSpec {
            task_failure_prob: 7.0,
            node_loss_prob: -1.0,
            speculation: true,
            speculation_threshold: 0.2,
            speculation_cap: 3.0,
        };
        let c = wild.clamped();
        assert!(c.task_failure_prob < 1.0);
        assert_eq!(c.node_loss_prob, 0.0);
        assert!(c.speculation_threshold >= 1.0);
        assert!(c.speculation_cap <= 1.0);
    }

    #[test]
    fn zero_stats_are_conserved() {
        assert!(FaultStats::default().is_conserved());
    }
}
