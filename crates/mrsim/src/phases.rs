//! The per-task phase cost model.
//!
//! Pure functions mapping (configuration, cost rates, dataflow numbers) to
//! per-phase virtual times for map and reduce tasks. The simulator calls
//! these with *measured* dataflow plus per-task noise; the What-If engine
//! calls the very same functions with *profile-derived* dataflow and no
//! noise. Sharing the equations is what makes profile quality — not model
//! mismatch — the dominant factor in tuning quality, mirroring how
//! Starfish's WIF models real Hadoop mechanics.

use crate::cluster::{CostRates, COMPRESSION_RATIO};
use crate::config::JobConfig;
use crate::dataflow::CombineFlow;

/// Phases of a map task, as in a Starfish map profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapPhase {
    /// Reading and deserializing the input split from HDFS.
    Read,
    /// Running the map UDF.
    Map,
    /// Serializing map output into the sort buffer.
    Collect,
    /// Sorting/combining/compressing/writing buffer spills.
    Spill,
    /// External merge of spills into the final map output file.
    Merge,
    /// Fixed task setup/cleanup overhead.
    Setup,
}

/// Phases of a reduce task, as in a Starfish reduce profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducePhase {
    /// Fetching map output over the network (plus shuffle-buffer spills).
    Shuffle,
    /// The reduce-side external merge sort.
    Sort,
    /// Running the reduce UDF.
    Reduce,
    /// Writing and (optionally) compressing job output to HDFS.
    Write,
    /// Fixed task setup/cleanup overhead.
    Setup,
}

/// Fixed per-task overheads (JVM start, task setup/commit), in ns.
pub const MAP_TASK_SETUP_NS: f64 = 1.2e9;
pub const REDUCE_TASK_SETUP_NS: f64 = 2.5e9;

/// Dataflow inputs of one map task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapTaskInputs {
    pub input_bytes: f64,
    pub input_records: f64,
    pub out_records: f64,
    pub out_bytes: f64,
    /// Total interpreter ops of the map UDF over the task's records.
    pub map_cpu_ops: f64,
    /// Combiner selectivities, if the job ships a combiner.
    pub combine: Option<CombineFlow>,
}

/// The cost breakdown of one map task.
#[derive(Debug, Clone, PartialEq)]
pub struct MapTaskCosts {
    /// `(phase, virtual ns)` in execution order.
    pub phases: Vec<(MapPhase, f64)>,
    /// Number of buffer spills.
    pub num_spills: u32,
    /// Records in the final map output file (after combining).
    pub final_out_records: f64,
    /// On-disk bytes of the final map output file (after combining and
    /// compression) — what the shuffle will move.
    pub final_out_bytes: f64,
    /// Uncompressed bytes of the final map output.
    pub final_out_bytes_uncompressed: f64,
}

impl MapTaskCosts {
    /// Total virtual time of the task in ns.
    pub fn total_ns(&self) -> f64 {
        self.phases.iter().map(|(_, t)| t).sum()
    }
}

/// Compute the phase costs of one map task.
pub fn map_task_costs(
    config: &JobConfig,
    rates: &CostRates,
    inputs: &MapTaskInputs,
) -> MapTaskCosts {
    let mut phases = Vec::with_capacity(6);
    phases.push((MapPhase::Setup, MAP_TASK_SETUP_NS));

    // READ: pull the split off HDFS and deserialize records.
    let read = inputs.input_bytes * (rates.read_hdfs_ns_per_byte + rates.serde_ns_per_byte);
    phases.push((MapPhase::Read, read));

    // MAP: the UDF itself.
    phases.push((MapPhase::Map, inputs.map_cpu_ops * rates.cpu_ns_per_op));

    // COLLECT: serialize into the sort buffer.
    phases.push((
        MapPhase::Collect,
        inputs.out_bytes * rates.serde_ns_per_byte,
    ));

    // SPILL: how many times does the buffer fill?
    let (rec_cap_bytes, meta_cap_records) = config.sort_buffer_capacity();
    let avg_rec = if inputs.out_records > 0.0 {
        inputs.out_bytes / inputs.out_records
    } else {
        1.0
    };
    let records_per_spill = (rec_cap_bytes / avg_rec).min(meta_cap_records).max(1.0);
    let num_spills = if inputs.out_records <= 0.0 {
        1u32
    } else {
        (inputs.out_records / records_per_spill).ceil().max(1.0) as u32
    };
    let spill_records = inputs.out_records / num_spills as f64;

    let combining = config.use_combiner && inputs.combine.is_some();
    // Combining is deduplication: its selectivity depends on how many
    // records each spill groups together, so larger sort buffers combine
    // better (a genuine cross-parameter interaction).
    let (comb_rec_sel, comb_size_sel, comb_ops) = match (combining, inputs.combine) {
        (true, Some(c)) => (
            c.record_selectivity_at(spill_records),
            c.size_selectivity_at(spill_records),
            c.ops_per_record,
        ),
        _ => (1.0, 1.0, 0.0),
    };

    // Per-spill: sort, combine, compress, write to local disk.
    let sort_cpu = inputs.out_records * log2(spill_records) * rates.sort_ns_per_record;
    let combine_cpu = if combining {
        inputs.out_records * comb_ops * rates.cpu_ns_per_op
    } else {
        0.0
    };
    let spilled_records = inputs.out_records * comb_rec_sel;
    let spilled_bytes_uncomp = inputs.out_bytes * comb_size_sel;
    let (compress_cpu, spilled_bytes_disk) = if config.compress_map_output {
        (
            spilled_bytes_uncomp * rates.compress_ns_per_byte,
            spilled_bytes_uncomp * COMPRESSION_RATIO,
        )
    } else {
        (0.0, spilled_bytes_uncomp)
    };
    let spill_write = spilled_bytes_disk * rates.write_local_ns_per_byte;
    phases.push((
        MapPhase::Spill,
        sort_cpu + combine_cpu + compress_cpu + spill_write,
    ));

    // MERGE: multi-pass external merge of the spill files.
    let mut final_records = spilled_records;
    let mut final_bytes_uncomp = spilled_bytes_uncomp;
    let mut final_bytes_disk = spilled_bytes_disk;
    let mut merge_ns = 0.0;
    if num_spills > 1 {
        let passes = merge_passes(num_spills, config.io_sort_factor);
        // The combiner runs again during the merge when enough spills
        // exist; it dedups across the whole task's output, so the final
        // record count approaches the task-wide distinct-key count.
        if combining && num_spills >= config.min_num_spills_for_combine {
            let c = inputs.combine.expect("combining implies a combiner");
            let task_rec_sel = c.record_selectivity_at(inputs.out_records);
            let task_size_sel = c.size_selectivity_at(inputs.out_records);
            merge_ns += final_records * comb_ops * rates.cpu_ns_per_op;
            let target_records = inputs.out_records * task_rec_sel;
            let target_uncomp = inputs.out_bytes * task_size_sel;
            let shrink_rec = (target_records / final_records).clamp(0.0, 1.0);
            let shrink_size = (target_uncomp / final_bytes_uncomp).clamp(0.0, 1.0);
            final_records *= shrink_rec;
            final_bytes_uncomp *= shrink_size;
            final_bytes_disk *= shrink_size;
        }
        let per_pass_io =
            final_bytes_disk * (rates.read_local_ns_per_byte + rates.write_local_ns_per_byte);
        let per_pass_codec = if config.compress_map_output {
            final_bytes_disk * rates.decompress_ns_per_byte
                + final_bytes_uncomp * rates.compress_ns_per_byte
        } else {
            0.0
        };
        let per_pass_cpu = final_records * rates.sort_ns_per_record;
        merge_ns += passes as f64 * (per_pass_io + per_pass_codec + per_pass_cpu);
    }
    phases.push((MapPhase::Merge, merge_ns));

    MapTaskCosts {
        phases,
        num_spills,
        final_out_records: final_records,
        final_out_bytes: final_bytes_disk,
        final_out_bytes_uncompressed: final_bytes_uncomp,
    }
}

/// Dataflow inputs of one reduce task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceTaskInputs {
    /// This reducer's shuffle volume, as stored on the map side (compressed
    /// if `mapred.compress.map.output`).
    pub shuffle_bytes_disk: f64,
    /// The same volume uncompressed.
    pub shuffle_bytes: f64,
    /// Reduce input records for this task.
    pub in_records: f64,
    /// Map-output segments fetched (== number of map tasks).
    pub num_segments: u32,
    /// Interpreter ops per reduce input record.
    pub reduce_ops_per_record: f64,
    /// This task's share of job output bytes (uncompressed).
    pub out_bytes: f64,
    /// This task's share of job output records.
    pub out_records: f64,
    /// Child JVM heap bytes.
    pub heap_bytes: f64,
    /// Whether map output is compressed.
    pub map_compressed: bool,
}

/// The cost breakdown of one reduce task.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceTaskCosts {
    pub phases: Vec<(ReducePhase, f64)>,
    /// Bytes that overflowed the shuffle buffer onto local disk.
    pub disk_resident_bytes: f64,
    /// On-disk output bytes written to HDFS (after output compression).
    pub written_bytes: f64,
}

impl ReduceTaskCosts {
    /// Total virtual time of the task in ns.
    pub fn total_ns(&self) -> f64 {
        self.phases.iter().map(|(_, t)| t).sum()
    }
}

/// Compute the phase costs of one reduce task.
pub fn reduce_task_costs(
    config: &JobConfig,
    rates: &CostRates,
    inputs: &ReduceTaskInputs,
) -> ReduceTaskCosts {
    let mut phases = Vec::with_capacity(5);
    phases.push((ReducePhase::Setup, REDUCE_TASK_SETUP_NS));

    // SHUFFLE: fetch over the network; overflow past the shuffle buffer is
    // merged to local disk.
    let buffer_cap = inputs.heap_bytes * config.shuffle_input_buffer_percent;
    let merge_trigger = buffer_cap * config.shuffle_merge_percent;
    // Data kept in memory after the shuffle: at most one merge-trigger's
    // worth (the rest has been merged to disk in waves).
    let mem_resident = inputs.shuffle_bytes.min(merge_trigger.max(1.0));
    let disk_resident = (inputs.shuffle_bytes - mem_resident).max(0.0);
    let mut shuffle_ns = inputs.shuffle_bytes_disk * rates.network_ns_per_byte;
    if inputs.map_compressed {
        shuffle_ns += inputs.shuffle_bytes_disk * rates.decompress_ns_per_byte;
    }
    shuffle_ns += disk_resident * rates.write_local_ns_per_byte;
    phases.push((ReducePhase::Shuffle, shuffle_ns));

    // SORT: multi-pass merge of on-disk segments.
    let mut sort_ns = 0.0;
    if disk_resident > 0.0 {
        // Segment count: in-memory merges flush about a merge-trigger's
        // worth per segment; the inmem threshold caps how many map outputs
        // accumulate per flush.
        let by_bytes = (disk_resident / merge_trigger.max(1.0)).ceil();
        let by_segments = (inputs.num_segments as f64 / config.inmem_merge_threshold as f64).ceil();
        let segments = by_bytes.max(by_segments).max(1.0) as u32;
        if segments > 1 {
            let passes = merge_passes(segments, config.io_sort_factor);
            sort_ns += passes as f64
                * (disk_resident * (rates.read_local_ns_per_byte + rates.write_local_ns_per_byte)
                    + inputs.in_records * rates.sort_ns_per_record);
        }
    }
    phases.push((ReducePhase::Sort, sort_ns));

    // REDUCE: read input (from memory where the reduce input buffer
    // allows, from disk otherwise) and run the UDF.
    let reduce_mem_cap = inputs.heap_bytes * config.reduce_input_buffer_percent + mem_resident;
    let from_disk = (inputs.shuffle_bytes - reduce_mem_cap)
        .max(0.0)
        .min(disk_resident);
    let reduce_ns = from_disk * rates.read_local_ns_per_byte
        + inputs.shuffle_bytes * rates.serde_ns_per_byte
        + inputs.in_records * inputs.reduce_ops_per_record * rates.cpu_ns_per_op;
    phases.push((ReducePhase::Reduce, reduce_ns));

    // WRITE: serialize, optionally compress, write to HDFS.
    let (codec_ns, written) = if config.compress_output {
        (
            inputs.out_bytes * rates.compress_ns_per_byte,
            inputs.out_bytes * COMPRESSION_RATIO,
        )
    } else {
        (0.0, inputs.out_bytes)
    };
    let write_ns = inputs.out_bytes * rates.serde_ns_per_byte
        + codec_ns
        + written * rates.write_hdfs_ns_per_byte;
    phases.push((ReducePhase::Write, write_ns));

    ReduceTaskCosts {
        phases,
        disk_resident_bytes: disk_resident,
        written_bytes: written,
    }
}

/// Number of passes an external merge of `segments` runs with fan-in
/// `factor` needs to produce a single sorted stream.
pub fn merge_passes(segments: u32, factor: u32) -> u32 {
    let factor = factor.max(2) as f64;
    let segments = segments.max(1) as f64;
    (segments.ln() / factor.ln()).ceil().max(1.0) as u32
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> CostRates {
        CostRates::default()
    }

    fn map_inputs() -> MapTaskInputs {
        MapTaskInputs {
            input_bytes: 64.0 * 1024.0 * 1024.0,
            input_records: 500_000.0,
            out_records: 2_000_000.0,
            out_bytes: 180.0 * 1024.0 * 1024.0,
            map_cpu_ops: 10_000_000.0,
            combine: Some(CombineFlow {
                record_selectivity: 0.3,
                size_selectivity: 0.35,
                ops_per_record: 4.0,
                ref_records: 100_000.0,
                alpha: 0.4,
            }),
        }
    }

    #[test]
    fn bigger_sort_buffer_means_fewer_spills() {
        let small = JobConfig {
            io_sort_mb: 50,
            ..JobConfig::default()
        };
        let big = JobConfig {
            io_sort_mb: 400,
            ..JobConfig::default()
        };
        // Without a combiner the tradeoff is pure: fewer spills and fewer
        // merge passes always win. (With a combiner, extra spills give the
        // merge-time combiner another shot at shrinking data — a real
        // cross-parameter interaction the RBO discussion in §2.2 describes.)
        let mut inputs = map_inputs();
        inputs.combine = None;
        let cs = map_task_costs(&small, &rates(), &inputs);
        let cb = map_task_costs(&big, &rates(), &inputs);
        assert!(cs.num_spills > cb.num_spills);
        assert!(cb.total_ns() < cs.total_ns());
    }

    #[test]
    fn combiner_shrinks_map_output() {
        let on = JobConfig::default();
        let off = JobConfig {
            use_combiner: false,
            ..JobConfig::default()
        };
        let c_on = map_task_costs(&on, &rates(), &map_inputs());
        let c_off = map_task_costs(&off, &rates(), &map_inputs());
        assert!(c_on.final_out_bytes < c_off.final_out_bytes / 2.0);
    }

    #[test]
    fn compression_shrinks_disk_bytes_but_costs_cpu() {
        let comp = JobConfig {
            compress_map_output: true,
            ..JobConfig::default()
        };
        let plain = JobConfig::default();
        let c_comp = map_task_costs(&comp, &rates(), &map_inputs());
        let c_plain = map_task_costs(&plain, &rates(), &map_inputs());
        assert!(c_comp.final_out_bytes < c_plain.final_out_bytes);
        assert_eq!(
            c_comp.final_out_bytes_uncompressed,
            c_plain.final_out_bytes_uncompressed
        );
    }

    #[test]
    fn single_spill_skips_merge() {
        let cfg = JobConfig {
            io_sort_mb: 1024,
            io_sort_record_percent: 0.3,
            ..JobConfig::default()
        };
        let mut inputs = map_inputs();
        inputs.out_records = 1000.0;
        inputs.out_bytes = 100_000.0;
        let c = map_task_costs(&cfg, &rates(), &inputs);
        assert_eq!(c.num_spills, 1);
        let merge = c
            .phases
            .iter()
            .find(|(p, _)| *p == MapPhase::Merge)
            .unwrap()
            .1;
        assert_eq!(merge, 0.0);
    }

    #[test]
    fn merge_passes_formula() {
        assert_eq!(merge_passes(1, 10), 1);
        assert_eq!(merge_passes(10, 10), 1);
        assert_eq!(merge_passes(11, 10), 2);
        assert_eq!(merge_passes(100, 10), 2);
        assert_eq!(merge_passes(101, 10), 3);
        assert_eq!(merge_passes(8, 2), 3);
    }

    fn reduce_inputs() -> ReduceTaskInputs {
        ReduceTaskInputs {
            shuffle_bytes_disk: 500.0 * 1024.0 * 1024.0,
            shuffle_bytes: 500.0 * 1024.0 * 1024.0,
            in_records: 5_000_000.0,
            num_segments: 560,
            reduce_ops_per_record: 5.0,
            out_bytes: 50.0 * 1024.0 * 1024.0,
            out_records: 100_000.0,
            heap_bytes: 300.0 * 1024.0 * 1024.0,
            map_compressed: false,
        }
    }

    #[test]
    fn small_shuffles_stay_in_memory() {
        let mut inputs = reduce_inputs();
        inputs.shuffle_bytes = 50.0 * 1024.0 * 1024.0;
        inputs.shuffle_bytes_disk = inputs.shuffle_bytes;
        let c = reduce_task_costs(&JobConfig::default(), &rates(), &inputs);
        assert_eq!(c.disk_resident_bytes, 0.0);
        let sort = c
            .phases
            .iter()
            .find(|(p, _)| *p == ReducePhase::Sort)
            .unwrap()
            .1;
        assert_eq!(sort, 0.0);
    }

    #[test]
    fn big_shuffles_spill_and_sort() {
        let c = reduce_task_costs(&JobConfig::default(), &rates(), &reduce_inputs());
        assert!(c.disk_resident_bytes > 0.0);
        let sort = c
            .phases
            .iter()
            .find(|(p, _)| *p == ReducePhase::Sort)
            .unwrap()
            .1;
        assert!(sort > 0.0);
    }

    #[test]
    fn bigger_shuffle_buffer_reduces_spilling() {
        let small = JobConfig {
            shuffle_input_buffer_percent: 0.2,
            ..JobConfig::default()
        };
        let big = JobConfig {
            shuffle_input_buffer_percent: 0.9,
            ..JobConfig::default()
        };
        let cs = reduce_task_costs(&small, &rates(), &reduce_inputs());
        let cb = reduce_task_costs(&big, &rates(), &reduce_inputs());
        assert!(cb.disk_resident_bytes < cs.disk_resident_bytes);
        assert!(cb.total_ns() < cs.total_ns());
    }

    #[test]
    fn output_compression_shrinks_written_bytes() {
        let comp = JobConfig {
            compress_output: true,
            ..JobConfig::default()
        };
        let c = reduce_task_costs(&comp, &rates(), &reduce_inputs());
        let p = reduce_task_costs(&JobConfig::default(), &rates(), &reduce_inputs());
        assert!(c.written_bytes < p.written_bytes);
    }

    #[test]
    fn phase_totals_are_positive_and_ordered() {
        let c = map_task_costs(&JobConfig::default(), &rates(), &map_inputs());
        assert!(c.total_ns() > MAP_TASK_SETUP_NS);
        let kinds: Vec<MapPhase> = c.phases.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            kinds,
            vec![
                MapPhase::Setup,
                MapPhase::Read,
                MapPhase::Map,
                MapPhase::Collect,
                MapPhase::Spill,
                MapPhase::Merge
            ]
        );
    }
}
