//! Cluster model: nodes, slots, heap, and base cost rates.
//!
//! The default cluster mirrors the paper's testbed: 16 Amazon EC2
//! c1.medium nodes — one master, 15 workers with 2 map slots and 2 reduce
//! slots each and 300 MB of task heap.

use crate::faults::FaultSpec;

/// Base cost rates of the cluster hardware, in nanoseconds per byte /
/// record / abstract op. These are the quantities the profile *cost
/// factors* (Table 4.2) estimate from observed task executions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRates {
    /// Reading a byte from HDFS (remote-ish, checksummed).
    pub read_hdfs_ns_per_byte: f64,
    /// Writing a byte to HDFS (3-way replication).
    pub write_hdfs_ns_per_byte: f64,
    /// Reading a byte from local disk.
    pub read_local_ns_per_byte: f64,
    /// Writing a byte to local disk.
    pub write_local_ns_per_byte: f64,
    /// Moving a byte across the network (shuffle).
    pub network_ns_per_byte: f64,
    /// One abstract interpreter op (UDF CPU).
    pub cpu_ns_per_op: f64,
    /// Sorting work per record per comparison pass.
    pub sort_ns_per_record: f64,
    /// Serialization/deserialization per byte.
    pub serde_ns_per_byte: f64,
    /// Compression per input byte.
    pub compress_ns_per_byte: f64,
    /// Decompression per compressed byte.
    pub decompress_ns_per_byte: f64,
}

impl Default for CostRates {
    fn default() -> Self {
        // Calibrated to c1.medium-era hardware: ~60 MB/s effective HDFS
        // read, ~25 MB/s replicated write, ~100 MB/s local disk, ~35 MB/s
        // aggregate shuffle bandwidth per reducer.
        CostRates {
            read_hdfs_ns_per_byte: 16.0,
            write_hdfs_ns_per_byte: 40.0,
            read_local_ns_per_byte: 10.0,
            write_local_ns_per_byte: 14.0,
            network_ns_per_byte: 28.0,
            cpu_ns_per_op: 18.0,
            sort_ns_per_record: 90.0,
            serde_ns_per_byte: 2.5,
            compress_ns_per_byte: 6.0,
            decompress_ns_per_byte: 3.0,
        }
    }
}

/// The compression codec model (LZO-like): output/input size ratio.
pub const COMPRESSION_RATIO: f64 = 0.45;

/// A simulated Hadoop cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Worker (TaskTracker/DataNode) count; the master is implicit.
    pub workers: u32,
    /// Map slots per worker.
    pub map_slots_per_node: u32,
    /// Reduce slots per worker.
    pub reduce_slots_per_node: u32,
    /// Max heap of a task child JVM, in MB.
    pub child_heap_mb: u64,
    /// HDFS block size in MB; one map task per block.
    pub hdfs_block_mb: u64,
    /// Base hardware cost rates.
    pub rates: CostRates,
    /// Log-normal sigma of per-task slowdown noise, modelling node
    /// utilization heterogeneity. This is what makes profile *cost
    /// factors* vary between sample tasks of the same job (§4.1.1).
    pub heterogeneity: f64,
    /// Persistent per-node slowdown multipliers (straggler nodes): entry
    /// `i` scales every task duration on worker `i`. Missing entries mean
    /// `1.0`; an empty vector is a fully uniform cluster.
    pub node_slowdown: Vec<f64>,
    /// Fault-injection parameters; [`FaultSpec::default`] is fully inert
    /// and keeps the simulator on its legacy bit-identical path.
    pub faults: FaultSpec,
}

impl ClusterSpec {
    /// The paper's testbed: 15 workers × (2 map + 2 reduce) slots,
    /// 300 MB task heap, 64 MB blocks.
    pub fn ec2_c1_medium_16() -> Self {
        ClusterSpec {
            workers: 15,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            child_heap_mb: 300,
            hdfs_block_mb: 64,
            rates: CostRates::default(),
            heterogeneity: 0.18,
            node_slowdown: Vec::new(),
            faults: FaultSpec::default(),
        }
    }

    /// The slowdown multiplier of worker `node` (1.0 when unspecified).
    pub fn node_slowdown_factor(&self, node: usize) -> f64 {
        self.node_slowdown.get(node).copied().unwrap_or(1.0)
    }

    /// True when every worker runs at nominal speed (no stragglers).
    pub fn is_uniform_speed(&self) -> bool {
        self.node_slowdown.iter().all(|&s| s == 1.0)
    }

    /// Total map slots.
    pub fn map_slots(&self) -> u32 {
        self.workers * self.map_slots_per_node
    }

    /// Total reduce slots.
    pub fn reduce_slots(&self) -> u32 {
        self.workers * self.reduce_slots_per_node
    }

    /// HDFS block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.hdfs_block_mb * 1024 * 1024
    }

    /// Task child heap in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.child_heap_mb * 1024 * 1024
    }

    /// Number of map tasks for a dataset of `logical_bytes` (one per HDFS
    /// split, at least one).
    pub fn num_splits(&self, logical_bytes: u64) -> u32 {
        (logical_bytes.div_ceil(self.block_bytes())).max(1) as u32
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::ec2_c1_medium_16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_has_30_slots_each_way() {
        let c = ClusterSpec::ec2_c1_medium_16();
        assert_eq!(c.map_slots(), 30);
        assert_eq!(c.reduce_slots(), 30);
    }

    #[test]
    fn splits_round_up() {
        let c = ClusterSpec::ec2_c1_medium_16();
        assert_eq!(c.num_splits(1), 1);
        assert_eq!(c.num_splits(64 * 1024 * 1024), 1);
        assert_eq!(c.num_splits(64 * 1024 * 1024 + 1), 2);
        // 35 GB / 64 MB = 560 splits, matching the paper's ~571 map tasks.
        assert_eq!(c.num_splits(35 * (1 << 30)), 560);
    }

    #[test]
    fn rates_are_positive() {
        let r = CostRates::default();
        for v in [
            r.read_hdfs_ns_per_byte,
            r.write_hdfs_ns_per_byte,
            r.read_local_ns_per_byte,
            r.write_local_ns_per_byte,
            r.network_ns_per_byte,
            r.cpu_ns_per_op,
            r.sort_ns_per_record,
            r.serde_ns_per_byte,
            r.compress_ns_per_byte,
            r.decompress_ns_per_byte,
        ] {
            assert!(v > 0.0);
        }
    }
}
