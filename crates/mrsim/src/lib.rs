//! # mrsim — a discrete-event Hadoop MapReduce simulator
//!
//! The substrate standing in for the paper's 16-node EC2 Hadoop cluster.
//! It executes real UDFs (via the `mrjobs` interpreter) over dataset
//! samples to measure dataflow, then prices every phase of every map and
//! reduce task under a given configuration ([`config::JobConfig`], the 14
//! parameters of Table 2.1) and schedules tasks onto slots in waves.
//!
//! Modules:
//! * [`config`] — the tuning surface (Table 2.1) and buffer capacity model.
//! * [`cluster`] — nodes, slots, heap, base cost rates, heterogeneity.
//! * [`dataflow`] — config-independent dataflow measurement and scaling.
//! * [`phases`] — the pure per-task phase cost model (shared with the
//!   What-If engine in the `whatif` crate).
//! * [`engine`] — OOM model, per-task noise, slot scheduling, reports.
//! * [`faults`] — seedable fault injection: attempt failures, bounded
//!   retries, straggler nodes, speculation, and whole-node loss.
//! * [`report`] — per-task and per-job execution reports.
//! * [`trace`] — replaying a [`JobReport`]'s virtual timeline into the
//!   deterministic observability layer (`obs`).

pub mod cluster;
pub mod config;
pub mod dataflow;
pub mod engine;
pub mod error;
pub mod faults;
pub mod phases;
pub mod report;
pub mod trace;

pub use cluster::{ClusterSpec, CostRates, COMPRESSION_RATIO};
pub use config::{ConfigError, JobConfig};
pub use dataflow::{analyze, CombineFlow, Dataflow, ReduceFlow, SplitFlow};
pub use engine::{simulate, simulate_runtime_ms, simulate_with_dataflow};
pub use error::SimError;
pub use faults::{FaultSpec, FaultStats};
pub use phases::{MapPhase, ReducePhase};
pub use report::{JobReport, MapTaskReport, ReduceTaskReport};
