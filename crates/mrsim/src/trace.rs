//! Recording simulated executions into an [`obs::Registry`].
//!
//! A [`JobReport`] *is* the job's virtual timeline: task start/end times
//! and per-phase costs are all in simulated milliseconds. This module
//! replays that timeline into the observability layer — `sim.job` /
//! `sim.maps` / `sim.reduces` spans with phase breakdowns, task-duration
//! histograms, and fault counters — and advances the registry's virtual
//! clock by the job's runtime, so a daemon trace strings successive runs
//! end to end on one deterministic clock. No wall-clock time is involved
//! anywhere (DESIGN.md §10).

use obs::{ms_to_ns, Registry, Value};

use crate::phases::{MapPhase, ReducePhase};
use crate::report::JobReport;

/// All phases, in the fixed order they are reported in span attributes.
const MAP_PHASES: [(MapPhase, &str); 6] = [
    (MapPhase::Read, "read_ms"),
    (MapPhase::Map, "map_ms"),
    (MapPhase::Collect, "collect_ms"),
    (MapPhase::Spill, "spill_ms"),
    (MapPhase::Merge, "merge_ms"),
    (MapPhase::Setup, "setup_ms"),
];
const REDUCE_PHASES: [(ReducePhase, &str); 5] = [
    (ReducePhase::Shuffle, "shuffle_ms"),
    (ReducePhase::Sort, "sort_ms"),
    (ReducePhase::Reduce, "reduce_ms"),
    (ReducePhase::Write, "write_ms"),
    (ReducePhase::Setup, "setup_ms"),
];

/// Record a finished simulated run under the registry's current open span
/// and advance the virtual clock by `report.runtime_ms`.
///
/// Emits one `sim.job` span covering the run, with `sim.maps` (submission
/// to last map finish) and, for reduce jobs, `sim.reduces` (first reduce
/// start to last reduce end) children. Each carries average per-task
/// phase times as attributes; per-task durations feed the
/// `sim.map_task_ms` / `sim.reduce_task_ms` histograms, and the
/// `sim.*` counters accumulate task and fault totals.
pub fn record_report(reg: &Registry, report: &JobReport) {
    if !reg.is_enabled() {
        return;
    }
    let t0 = reg.now_ns();
    let end = t0 + ms_to_ns(report.runtime_ms);
    {
        let job = reg.span("sim.job");
        job.attr("job_id", report.job_id.as_str());
        job.attr("dataset", report.dataset.as_str());
        job.attr("runtime_ms", report.runtime_ms);
        job.attr("map_tasks", report.map_tasks.len());
        job.attr("reduce_tasks", report.reduce_tasks.len());
        if report.faults.scheduled_attempts > 0 {
            job.attr("attempt_success_rate", report.attempt_success_rate());
        }

        let mut map_attrs: Vec<(&str, Value)> = vec![
            ("tasks", Value::U64(report.map_tasks.len() as u64)),
            ("avg_task_ms", Value::F64(report.avg_map_ms())),
        ];
        for (phase, label) in MAP_PHASES {
            map_attrs.push((label, Value::F64(report.avg_map_phase_ms(phase))));
        }
        reg.record_span(
            "sim.maps",
            t0,
            t0 + ms_to_ns(report.maps_done_ms),
            &map_attrs,
        );

        if !report.reduce_tasks.is_empty() {
            let first_start = report
                .reduce_tasks
                .iter()
                .map(|t| t.start_ms)
                .fold(f64::INFINITY, f64::min);
            let last_end = report
                .reduce_tasks
                .iter()
                .map(|t| t.end_ms)
                .fold(0.0, f64::max);
            let mut red_attrs: Vec<(&str, Value)> = vec![
                ("tasks", Value::U64(report.reduce_tasks.len() as u64)),
                ("avg_task_ms", Value::F64(report.avg_reduce_ms())),
            ];
            for (phase, label) in REDUCE_PHASES {
                red_attrs.push((label, Value::F64(report.avg_reduce_phase_ms(phase))));
            }
            reg.record_span(
                "sim.reduces",
                t0 + ms_to_ns(first_start),
                t0 + ms_to_ns(last_end),
                &red_attrs,
            );
        }

        for t in &report.map_tasks {
            reg.observe("sim.map_task_ms", t.duration_ms());
        }
        for t in &report.reduce_tasks {
            reg.observe("sim.reduce_task_ms", t.duration_ms());
        }
        reg.incr("sim.jobs", 1);
        reg.incr("sim.map_tasks", report.map_tasks.len() as u64);
        reg.incr("sim.reduce_tasks", report.reduce_tasks.len() as u64);
        if report.faults.scheduled_attempts > 0 {
            reg.incr(
                "sim.fault.scheduled_attempts",
                u64::from(report.faults.scheduled_attempts),
            );
            reg.incr(
                "sim.fault.failed_attempts",
                u64::from(report.faults.failed_attempts),
            );
            reg.incr("sim.fault.nodes_lost", u64::from(report.faults.nodes_lost));
        }

        // Move the shared clock to the job's end so the `sim.job` span —
        // closed when `job` drops — covers exactly [t0, t0+runtime], and
        // whatever the caller records next starts after this run.
        reg.advance_ms(report.runtime_ms);
    }
    // Monotone, not equal: concurrent recorders (the multi-tenant
    // service's workers share one registry) may advance the clock
    // between our `now_ns` read and here.
    debug_assert!(reg.now_ns() >= end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, ClusterSpec, JobConfig};
    use datagen::corpus;
    use mrjobs::jobs;

    #[test]
    fn report_recording_replays_the_virtual_timeline() {
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        let cl = ClusterSpec::ec2_c1_medium_16();
        let report = simulate(&spec, &ds, &cl, &JobConfig::submitted(&spec), 7).unwrap();

        let reg = Registry::new();
        reg.advance_ms(100.0); // pre-existing virtual time
        record_report(&reg, &report);
        let snap = reg.snapshot();

        let job = snap.spans.iter().find(|s| s.name == "sim.job").unwrap();
        assert_eq!(job.start_ns, ms_to_ns(100.0));
        assert_eq!(
            job.end_ns,
            Some(ms_to_ns(100.0) + ms_to_ns(report.runtime_ms))
        );
        let maps = snap.spans.iter().find(|s| s.name == "sim.maps").unwrap();
        assert_eq!(maps.parent, Some(job.id));
        assert_eq!(
            maps.end_ns.unwrap() - maps.start_ns,
            ms_to_ns(report.maps_done_ms)
        );
        assert_eq!(snap.counters["sim.jobs"], 1);
        assert_eq!(
            snap.counters["sim.map_tasks"],
            report.map_tasks.len() as u64
        );
        assert_eq!(
            snap.histograms["sim.map_task_ms"].count,
            report.map_tasks.len() as u64
        );
        // Clock advanced by exactly the runtime.
        assert_eq!(snap.clock_ns, ms_to_ns(100.0) + ms_to_ns(report.runtime_ms));
    }

    #[test]
    fn disabled_registry_is_untouched() {
        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        let cl = ClusterSpec::ec2_c1_medium_16();
        let report = simulate(&spec, &ds, &cl, &JobConfig::submitted(&spec), 7).unwrap();
        let reg = Registry::disabled();
        record_report(&reg, &report);
        assert_eq!(reg.now_ns(), 0);
        assert!(reg.snapshot().spans.is_empty());
    }
}
