//! The 14 Starfish-identified Hadoop configuration parameters (Table 2.1).

/// Job configuration: the tuning surface of the paper. Field names follow
/// the Hadoop property names; defaults are the Hadoop defaults of
/// Table 2.1.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// `io.sort.mb` — size in MB of the map-side sort buffer.
    pub io_sort_mb: u64,
    /// `io.sort.record.percent` — fraction of the sort buffer reserved for
    /// per-record metadata (16 bytes per record).
    pub io_sort_record_percent: f64,
    /// `io.sort.spill.percent` — buffer fill threshold that triggers a
    /// spill.
    pub io_sort_spill_percent: f64,
    /// `io.sort.factor` — number of streams merged at once in external
    /// merge sort.
    pub io_sort_factor: u32,
    /// `mapreduce.combine.class` — whether the job's combiner (if it has
    /// one) is enabled.
    pub use_combiner: bool,
    /// `min.num.spills.for.combine` — minimum spill count before the
    /// combiner also runs during the merge phase.
    pub min_num_spills_for_combine: u32,
    /// `mapred.compress.map.output` — compress intermediate data.
    pub compress_map_output: bool,
    /// `mapred.reduce.slowstart.completed.maps` — fraction of map tasks
    /// that must finish before reducers are scheduled.
    pub reduce_slowstart: f64,
    /// `mapred.reduce.tasks` — number of reduce tasks.
    pub num_reduce_tasks: u32,
    /// `mapred.job.shuffle.input.buffer.percent` — fraction of reduce heap
    /// buffering shuffled data.
    pub shuffle_input_buffer_percent: f64,
    /// `mapred.job.shuffle.merge.percent` — shuffle buffer fill threshold
    /// triggering an in-memory merge.
    pub shuffle_merge_percent: f64,
    /// `mapred.inmem.merge.threshold` — number of map-output segments
    /// accumulated before an in-memory merge.
    pub inmem_merge_threshold: u32,
    /// `mapred.job.reduce.input.buffer.percent` — fraction of reduce heap
    /// allowed to hold reduce input in memory during the reduce phase.
    pub reduce_input_buffer_percent: f64,
    /// `mapred.output.compress` — compress job output.
    pub compress_output: bool,
    /// `mapred.map.max.attempts` — attempts per map task before the job
    /// fails (Hadoop default 4). Only observable under fault injection.
    pub max_map_attempts: u32,
    /// `mapred.reduce.max.attempts` — attempts per reduce task before the
    /// job fails (Hadoop default 4). Only observable under fault injection.
    pub max_reduce_attempts: u32,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            io_sort_mb: 100,
            io_sort_record_percent: 0.05,
            io_sort_spill_percent: 0.8,
            io_sort_factor: 10,
            use_combiner: true,
            min_num_spills_for_combine: 3,
            compress_map_output: false,
            reduce_slowstart: 0.05,
            num_reduce_tasks: 1,
            shuffle_input_buffer_percent: 0.7,
            shuffle_merge_percent: 0.66,
            inmem_merge_threshold: 1000,
            reduce_input_buffer_percent: 0.0,
            compress_output: false,
            max_map_attempts: 4,
            max_reduce_attempts: 4,
        }
    }
}

/// A configuration validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}
impl std::error::Error for ConfigError {}

impl JobConfig {
    /// Validate parameter ranges (mirrors Hadoop's own constraints).
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn frac(name: &str, v: f64) -> Result<(), ConfigError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(ConfigError(format!("{name} must be in [0,1], got {v}")))
            }
        }
        if !(1..=2048).contains(&self.io_sort_mb) {
            return Err(ConfigError(format!(
                "io.sort.mb must be in [1,2048], got {}",
                self.io_sort_mb
            )));
        }
        frac("io.sort.record.percent", self.io_sort_record_percent)?;
        if self.io_sort_record_percent >= 0.5 {
            return Err(ConfigError(
                "io.sort.record.percent must be < 0.5".to_string(),
            ));
        }
        frac("io.sort.spill.percent", self.io_sort_spill_percent)?;
        if self.io_sort_spill_percent < 0.1 {
            return Err(ConfigError(
                "io.sort.spill.percent must be >= 0.1".to_string(),
            ));
        }
        if self.io_sort_factor < 2 {
            return Err(ConfigError("io.sort.factor must be >= 2".to_string()));
        }
        frac(
            "mapred.reduce.slowstart.completed.maps",
            self.reduce_slowstart,
        )?;
        if self.num_reduce_tasks == 0 {
            return Err(ConfigError("mapred.reduce.tasks must be >= 1".to_string()));
        }
        frac(
            "mapred.job.shuffle.input.buffer.percent",
            self.shuffle_input_buffer_percent,
        )?;
        frac(
            "mapred.job.shuffle.merge.percent",
            self.shuffle_merge_percent,
        )?;
        if self.inmem_merge_threshold == 0 {
            return Err(ConfigError(
                "mapred.inmem.merge.threshold must be >= 1".to_string(),
            ));
        }
        frac(
            "mapred.job.reduce.input.buffer.percent",
            self.reduce_input_buffer_percent,
        )?;
        if self.min_num_spills_for_combine == 0 {
            return Err(ConfigError(
                "min.num.spills.for.combine must be >= 1".to_string(),
            ));
        }
        if self.max_map_attempts == 0 {
            return Err(ConfigError(
                "mapred.map.max.attempts must be >= 1".to_string(),
            ));
        }
        if self.max_reduce_attempts == 0 {
            return Err(ConfigError(
                "mapred.reduce.max.attempts must be >= 1".to_string(),
            ));
        }
        Ok(())
    }

    /// The configuration a job runs with when the user does no tuning:
    /// Hadoop defaults plus whatever the job's driver code sets itself
    /// (commonly `mapred.reduce.tasks`). This is the "default
    /// configuration" baseline of Table 6.2 and Fig. 6.3.
    pub fn submitted(spec: &mrjobs::JobSpec) -> JobConfig {
        let mut cfg = JobConfig::default();
        if let Some(r) = spec.driver_reduce_tasks {
            cfg.num_reduce_tasks = r;
        }
        cfg
    }

    /// The sort-buffer capacity model: returns `(record_bytes_capacity,
    /// metadata_record_capacity)` — how many serialized bytes and how many
    /// records fit before `io.sort.spill.percent` triggers a spill. Hadoop
    /// reserves `io.sort.record.percent` of the buffer for 16-byte
    /// per-record accounting entries.
    pub fn sort_buffer_capacity(&self) -> (f64, f64) {
        let buffer = (self.io_sort_mb * 1024 * 1024) as f64;
        let record_bytes =
            buffer * (1.0 - self.io_sort_record_percent) * self.io_sort_spill_percent;
        let meta_records = buffer * self.io_sort_record_percent * self.io_sort_spill_percent / 16.0;
        (record_bytes, meta_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2_1() {
        let c = JobConfig::default();
        assert_eq!(c.io_sort_mb, 100);
        assert_eq!(c.io_sort_record_percent, 0.05);
        assert_eq!(c.io_sort_spill_percent, 0.8);
        assert_eq!(c.io_sort_factor, 10);
        assert_eq!(c.min_num_spills_for_combine, 3);
        assert!(!c.compress_map_output);
        assert_eq!(c.reduce_slowstart, 0.05);
        assert_eq!(c.num_reduce_tasks, 1);
        assert_eq!(c.shuffle_input_buffer_percent, 0.7);
        assert_eq!(c.shuffle_merge_percent, 0.66);
        assert_eq!(c.inmem_merge_threshold, 1000);
        assert_eq!(c.reduce_input_buffer_percent, 0.0);
        assert!(!c.compress_output);
        assert_eq!(c.max_map_attempts, 4);
        assert_eq!(c.max_reduce_attempts, 4);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = [
            JobConfig {
                num_reduce_tasks: 0,
                ..JobConfig::default()
            },
            JobConfig {
                io_sort_mb: 0,
                ..JobConfig::default()
            },
            JobConfig {
                io_sort_record_percent: 0.9,
                ..JobConfig::default()
            },
            JobConfig {
                io_sort_factor: 1,
                ..JobConfig::default()
            },
            JobConfig {
                max_map_attempts: 0,
                ..JobConfig::default()
            },
            JobConfig {
                max_reduce_attempts: 0,
                ..JobConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should not validate");
        }
    }

    #[test]
    fn sort_buffer_capacity_partitions_the_buffer() {
        let c = JobConfig::default();
        let (bytes, metas) = c.sort_buffer_capacity();
        // 100MB * 0.95 * 0.8 of record space
        assert!((bytes - 100.0 * 1024.0 * 1024.0 * 0.95 * 0.8).abs() < 1.0);
        // 100MB * 0.05 * 0.8 / 16 records of metadata space
        assert!((metas - 100.0 * 1024.0 * 1024.0 * 0.05 * 0.8 / 16.0).abs() < 1.0);
    }

    #[test]
    fn larger_record_percent_trades_bytes_for_records() {
        let big_meta = JobConfig {
            io_sort_record_percent: 0.2,
            ..JobConfig::default()
        };
        let (b1, m1) = JobConfig::default().sort_buffer_capacity();
        let (b2, m2) = big_meta.sort_buffer_capacity();
        assert!(b2 < b1);
        assert!(m2 > m1);
    }
}
