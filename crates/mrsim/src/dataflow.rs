//! Config-independent dataflow measurement.
//!
//! For a given (job, dataset) pair, the simulator runs the job's UDFs over
//! the physical sample once, divided into representative chunks (one chunk
//! stands in for one HDFS split), and extrapolates per-task and total
//! dataflow statistics to the dataset's logical scale. Everything that
//! depends on the *configuration* (spills, merges, compression, reducer
//! count) is left to the phase cost model in [`crate::phases`]; everything
//! here depends only on the job semantics and the data.

use std::collections::BTreeMap;

use mrjobs::interp::{run_map, run_reduce, value_hash};
use mrjobs::{Dataset, JobSpec, Partitioner, Value};

use crate::cluster::ClusterSpec;
use crate::error::SimError;

/// Per-map-task dataflow at logical scale. Tasks cycle over the measured
/// chunks, so tasks differ the way real splits differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitFlow {
    pub input_records: f64,
    pub input_bytes: f64,
    pub out_records: f64,
    pub out_bytes: f64,
    /// Interpreter ops spent in the map UDF for this task.
    pub map_ops: f64,
}

/// Combiner selectivities measured by grouping and combining each chunk's
/// map output (approximating per-spill combining).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombineFlow {
    /// `out_records / in_records` measured over groups of `ref_records`
    /// records, in (0, 1].
    pub record_selectivity: f64,
    /// `out_bytes / in_bytes` at the same granularity, in (0, 1].
    pub size_selectivity: f64,
    /// Interpreter ops per input record.
    pub ops_per_record: f64,
    /// How many records the selectivities were measured over. Combining is
    /// deduplication, so its selectivity improves with group size: the
    /// phase model rescales it to the actual spill size using `alpha`.
    pub ref_records: f64,
    /// Heaps-law exponent of distinct intermediate keys
    /// (`distinct(n) ~ n^alpha`): selectivity at spill size `n` is
    /// `record_selectivity * (n / ref_records)^(alpha - 1)`.
    pub alpha: f64,
}

impl CombineFlow {
    /// Record selectivity at a given combining group size.
    pub fn record_selectivity_at(&self, records: f64) -> f64 {
        rescale_selectivity(
            self.record_selectivity,
            self.ref_records,
            self.alpha,
            records,
        )
    }

    /// Size selectivity at a given combining group size.
    pub fn size_selectivity_at(&self, records: f64) -> f64 {
        rescale_selectivity(self.size_selectivity, self.ref_records, self.alpha, records)
    }
}

fn rescale_selectivity(sel_ref: f64, ref_records: f64, alpha: f64, records: f64) -> f64 {
    if sel_ref >= 1.0 || ref_records <= 0.0 || records <= 0.0 {
        return sel_ref.clamp(0.0, 1.0);
    }
    let scale = (records / ref_records).max(1e-12);
    (sel_ref * scale.powf(alpha - 1.0)).clamp(1e-6, 1.0)
}

/// Reduce-side dataflow at logical scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceFlow {
    /// Total reduce input records (raw, i.e. without combining).
    pub in_records: f64,
    /// Total reduce input bytes (raw).
    pub in_bytes: f64,
    /// Total reduce output records.
    pub out_records: f64,
    /// Total reduce output bytes.
    pub out_bytes: f64,
    /// Interpreter ops per reduce input record.
    pub ops_per_record: f64,
    /// Estimated distinct intermediate keys at logical scale.
    pub distinct_keys: f64,
    /// Estimated size of the largest single key group at logical scale
    /// (drives the reduce-side memory model).
    pub max_group_bytes: f64,
    /// Per-key weights for partition-skew computation: `(partition_hash,
    /// byte_weight)` in key order. Capped; the remainder is spread
    /// uniformly.
    pub key_weights: Vec<(u64, f64)>,
    /// Byte weight not covered by `key_weights` (treated as uniform).
    pub uniform_weight: f64,
}

impl ReduceFlow {
    /// The fraction of intermediate data assigned to each of `r`
    /// partitions under the job's partitioner. Total-order partitioning is
    /// modelled as balanced (Hadoop samples the key space to build its
    /// range boundaries).
    pub fn partition_shares(&self, r: u32, partitioner: Partitioner) -> Vec<f64> {
        let r = r.max(1) as usize;
        let mut shares = vec![0.0f64; r];
        match partitioner {
            Partitioner::TotalOrder => {
                return vec![1.0 / r as f64; r];
            }
            Partitioner::Hash | Partitioner::FirstOfPair => {
                for &(h, w) in &self.key_weights {
                    shares[(h % r as u64) as usize] += w;
                }
            }
        }
        let uniform_each = self.uniform_weight / r as f64;
        let total: f64 = self.key_weights.iter().map(|(_, w)| w).sum::<f64>() + self.uniform_weight;
        if total <= 0.0 {
            return vec![1.0 / r as f64; r];
        }
        for s in &mut shares {
            *s = (*s + uniform_each) / total;
        }
        shares
    }
}

/// The complete measured dataflow of a (job, dataset) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataflow {
    /// Number of map tasks (HDFS splits) at logical scale.
    pub num_map_tasks: u32,
    /// Per-task flows; task `m` uses `per_task[m % per_task.len()]`.
    pub per_task: Vec<SplitFlow>,
    /// Combiner selectivities, when the job ships a combiner.
    pub combine: Option<CombineFlow>,
    /// Reduce dataflow, when the job has a reduce phase.
    pub reduce: Option<ReduceFlow>,
    /// Logical input size.
    pub input_bytes: f64,
    /// Average serialized size of one intermediate record.
    pub avg_intermediate_record_bytes: f64,
}

impl Dataflow {
    /// Total map output records at logical scale (before combining).
    pub fn total_map_out_records(&self) -> f64 {
        let per_chunk: f64 = self.per_task.iter().map(|t| t.out_records).sum();
        per_chunk * self.num_map_tasks as f64 / self.per_task.len() as f64
    }

    /// Total map output bytes at logical scale (before combining).
    pub fn total_map_out_bytes(&self) -> f64 {
        let per_chunk: f64 = self.per_task.iter().map(|t| t.out_bytes).sum();
        per_chunk * self.num_map_tasks as f64 / self.per_task.len() as f64
    }

    /// Map selectivity in bytes (out/in), the `MAP_SIZE_SEL` dataflow
    /// statistic.
    pub fn map_size_selectivity(&self) -> f64 {
        let in_b: f64 = self.per_task.iter().map(|t| t.input_bytes).sum();
        let out_b: f64 = self.per_task.iter().map(|t| t.out_bytes).sum();
        if in_b > 0.0 {
            out_b / in_b
        } else {
            0.0
        }
    }
}

/// How many representative chunks to measure; each chunk plays the role of
/// one observed HDFS split.
fn chunk_count(records: usize) -> usize {
    (records / 100).clamp(4, 20)
}

/// Run the job's UDFs over the dataset sample and extrapolate dataflow to
/// logical scale.
pub fn analyze(
    spec: &JobSpec,
    dataset: &Dataset,
    cluster: &ClusterSpec,
) -> Result<Dataflow, SimError> {
    if dataset.is_empty() {
        return Err(SimError::EmptyDataset(dataset.name.clone()));
    }
    let num_map_tasks = cluster.num_splits(dataset.logical_bytes);
    let bytes_per_task = dataset.logical_bytes as f64 / num_map_tasks as f64;

    let chunks = chunk_count(dataset.len());
    let chunk_size = dataset.len().div_ceil(chunks);

    let mut per_task = Vec::with_capacity(chunks);
    let mut all_pairs: Vec<(Value, Value)> = Vec::new();
    let mut chunk_boundaries = Vec::with_capacity(chunks);

    // Combiner accumulators.
    let mut comb_in_records = 0.0f64;
    let mut comb_in_bytes = 0.0f64;
    let mut comb_out_records = 0.0f64;
    let mut comb_out_bytes = 0.0f64;
    let mut comb_ops = 0.0f64;

    for chunk in dataset.records.chunks(chunk_size) {
        let mut out = Vec::new();
        let mut map_ops = 0u64;
        let mut in_bytes = 0u64;
        for rec in chunk {
            in_bytes += rec.serialized_size();
            let stats = run_map(&spec.map_udf, &spec.params, &rec.key, &rec.value, &mut out)
                .map_err(|e| SimError::Udf {
                    job: spec.name.clone(),
                    udf: spec.map_udf.name.clone(),
                    source: e,
                })?;
            map_ops += stats.ops;
        }
        let out_records = out.len() as f64;
        let out_bytes: u64 = out
            .iter()
            .map(|(k, v)| k.serialized_size() + v.serialized_size())
            .sum();

        // Per-chunk combining approximates per-spill combining.
        if let Some(comb) = &spec.combine_udf {
            let grouped = group_pairs(out.clone());
            comb_in_records += out_records;
            comb_in_bytes += out_bytes as f64;
            for (key, values) in grouped {
                let mut comb_out = Vec::new();
                let stats =
                    run_reduce(comb, &spec.params, &key, values, &mut comb_out).map_err(|e| {
                        SimError::Udf {
                            job: spec.name.clone(),
                            udf: comb.name.clone(),
                            source: e,
                        }
                    })?;
                comb_ops += stats.ops as f64;
                comb_out_records += comb_out.len() as f64;
                comb_out_bytes += comb_out
                    .iter()
                    .map(|(k, v)| (k.serialized_size() + v.serialized_size()) as f64)
                    .sum::<f64>();
            }
        }

        // Scale this chunk to one logical map task.
        let scale = if in_bytes > 0 {
            bytes_per_task / in_bytes as f64
        } else {
            1.0
        };
        per_task.push(SplitFlow {
            input_records: chunk.len() as f64 * scale,
            input_bytes: bytes_per_task,
            out_records: out_records * scale,
            out_bytes: out_bytes as f64 * scale,
            map_ops: map_ops as f64 * scale,
        });
        all_pairs.extend(out);
        chunk_boundaries.push(all_pairs.len());
    }

    // Heaps-law distinct-key growth exponent of the intermediate keys,
    // shared by the combiner model and the reduce-output scaling.
    let key_alpha = {
        let half_idx = if chunk_boundaries.len() >= 2 {
            chunk_boundaries[chunk_boundaries.len() / 2 - 1]
        } else {
            all_pairs.len() / 2
        };
        distinct_growth_alpha(&all_pairs, half_idx)
    };

    let combine = spec.combine_udf.as_ref().map(|_| CombineFlow {
        record_selectivity: safe_ratio(comb_out_records, comb_in_records, 1.0),
        size_selectivity: safe_ratio(comb_out_bytes, comb_in_bytes, 1.0),
        ops_per_record: safe_ratio(comb_ops, comb_in_records, 0.0),
        ref_records: comb_in_records / per_task.len().max(1) as f64,
        alpha: key_alpha,
    });

    let total_sample_out_bytes: f64 = all_pairs
        .iter()
        .map(|(k, v)| (k.serialized_size() + v.serialized_size()) as f64)
        .sum();
    let avg_intermediate_record_bytes = if all_pairs.is_empty() {
        0.0
    } else {
        total_sample_out_bytes / all_pairs.len() as f64
    };

    // Overall sample→logical scale for intermediate data.
    let sample_tasks = per_task.len() as f64;
    let inter_scale = if total_sample_out_bytes > 0.0 {
        (per_task.iter().map(|t| t.out_bytes).sum::<f64>() / sample_tasks) * num_map_tasks as f64
            / total_sample_out_bytes
    } else {
        1.0
    };

    let reduce = match &spec.reduce_udf {
        None => None,
        Some(reduce_udf) => {
            let alpha = key_alpha;

            let grouped = group_pairs(all_pairs.clone());
            let sample_groups = grouped.len() as f64;
            let sample_in_records = all_pairs.len() as f64;

            let mut out_records = 0.0f64;
            let mut out_bytes = 0.0f64;
            let mut ops = 0.0f64;
            let mut max_group_bytes_sample = 0.0f64;
            let mut weights: Vec<(u64, f64)> = Vec::with_capacity(grouped.len());
            for (key, values) in grouped {
                let group_bytes: f64 = values
                    .iter()
                    .map(|v| (key.serialized_size() + v.serialized_size()) as f64)
                    .sum();
                max_group_bytes_sample = max_group_bytes_sample.max(group_bytes);
                let h = partition_hash(&key, spec.partitioner);
                weights.push((h, group_bytes));
                let mut red_out = Vec::new();
                let stats = run_reduce(reduce_udf, &spec.params, &key, values, &mut red_out)
                    .map_err(|e| SimError::Udf {
                        job: spec.name.clone(),
                        udf: reduce_udf.name.clone(),
                        source: e,
                    })?;
                ops += stats.ops as f64;
                out_records += red_out.len() as f64;
                out_bytes += red_out
                    .iter()
                    .map(|(k, v)| (k.serialized_size() + v.serialized_size()) as f64)
                    .sum::<f64>();
            }

            // Cap the key-weight table; aggregate the tail uniformly.
            const MAX_WEIGHTS: usize = 4096;
            let mut uniform_weight = 0.0;
            if weights.len() > MAX_WEIGHTS {
                weights.sort_by(|a, b| b.1.total_cmp(&a.1));
                uniform_weight = weights[MAX_WEIGHTS..].iter().map(|(_, w)| w).sum();
                weights.truncate(MAX_WEIGHTS);
            }

            // Scaled quantities. Input scales linearly; distinct keys scale
            // with Heaps exponent alpha; output scales between the two
            // depending on how aggregating the reducer is.
            let in_records = sample_in_records * inter_scale;
            let in_bytes = total_sample_out_bytes * inter_scale;
            let distinct_keys = sample_groups * inter_scale.powf(alpha);
            let out_sel = safe_ratio(out_records, sample_in_records, 1.0).min(1.0);
            let out_scale = out_sel * inter_scale + (1.0 - out_sel) * inter_scale.powf(alpha);

            Some(ReduceFlow {
                in_records,
                in_bytes,
                out_records: out_records * out_scale,
                out_bytes: out_bytes * out_scale,
                ops_per_record: safe_ratio(ops, sample_in_records, 0.0),
                distinct_keys,
                max_group_bytes: max_group_bytes_sample * inter_scale,
                key_weights: weights,
                uniform_weight,
            })
        }
    };

    Ok(Dataflow {
        num_map_tasks,
        per_task,
        combine,
        reduce,
        input_bytes: dataset.logical_bytes as f64,
        avg_intermediate_record_bytes,
    })
}

/// Group key-value pairs by key, preserving key order.
fn group_pairs(pairs: Vec<(Value, Value)>) -> BTreeMap<Value, Vec<Value>> {
    let mut grouped: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
    for (k, v) in pairs {
        grouped.entry(k).or_default().push(v);
    }
    grouped
}

/// Hash used for partitioning a key, honouring the job's partitioner.
fn partition_hash(key: &Value, partitioner: Partitioner) -> u64 {
    match (partitioner, key) {
        (Partitioner::FirstOfPair, Value::Pair(first, _)) => value_hash(first),
        _ => value_hash(key),
    }
}

/// Heaps-law exponent: distinct(n) ~ n^alpha, estimated from the sample
/// prefix vs the full sample. Clamped to [0.05, 1].
fn distinct_growth_alpha(pairs: &[(Value, Value)], half_idx: usize) -> f64 {
    if pairs.len() < 4 {
        return 1.0;
    }
    let half_idx = half_idx.clamp(1, pairs.len());
    if half_idx >= pairs.len() {
        return 1.0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut d_half = 0usize;
    for (i, (k, _)) in pairs.iter().enumerate() {
        if seen.insert(k) && i < half_idx {
            d_half += 1;
        }
    }
    let d_full = seen.len();
    if d_half == 0 || d_full <= d_half {
        // No growth in the second half: saturated key space.
        return 0.05;
    }
    let alpha =
        ((d_full as f64 / d_half as f64).ln()) / ((pairs.len() as f64 / half_idx as f64).ln());
    if !alpha.is_finite() {
        return 1.0;
    }
    alpha.clamp(0.05, 1.0)
}

fn safe_ratio(num: f64, den: f64, default: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;

    fn cluster() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn word_count_selectivity_above_one() {
        let ds = corpus::random_text_1g();
        let flow = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        // One intermediate record per word: size selectivity > 1 because of
        // the count payloads.
        assert!(flow.map_size_selectivity() > 1.0);
        assert_eq!(flow.num_map_tasks, 16);
    }

    #[test]
    fn sort_selectivity_is_one() {
        let ds = corpus::teragen_1g();
        let flow = analyze(&jobs::sort(), &ds, &cluster()).unwrap();
        let sel = flow.map_size_selectivity();
        assert!((sel - 1.0).abs() < 0.01, "sort map is identity: {sel}");
    }

    #[test]
    fn cooccurrence_selectivity_exceeds_word_count() {
        let ds = corpus::random_text_1g();
        let wc = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        let co = analyze(&jobs::word_cooccurrence_pairs(2), &ds, &cluster()).unwrap();
        assert!(co.map_size_selectivity() > wc.map_size_selectivity());
    }

    #[test]
    fn combiner_shrinks_zipfian_counts() {
        let ds = corpus::wikipedia_35g();
        let flow = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        let comb = flow.combine.unwrap();
        assert!(comb.record_selectivity < 0.7, "{}", comb.record_selectivity);
        assert!(comb.size_selectivity < 1.0);
    }

    #[test]
    fn reduce_flow_mass_conservation() {
        let ds = corpus::random_text_1g();
        let flow = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        let red = flow.reduce.as_ref().unwrap();
        // Raw reduce input equals total map output.
        assert!((red.in_bytes - flow.total_map_out_bytes()).abs() / red.in_bytes < 0.01);
        assert!(red.out_records <= red.in_records);
        assert!(red.distinct_keys > 0.0);
    }

    #[test]
    fn partition_shares_sum_to_one() {
        let ds = corpus::random_text_1g();
        let flow = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        let red = flow.reduce.as_ref().unwrap();
        for r in [1u32, 3, 27] {
            let shares = red.partition_shares(r, Partitioner::Hash);
            assert_eq!(shares.len(), r as usize);
            let sum: f64 = shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "r={r} sum={sum}");
        }
    }

    #[test]
    fn total_order_shares_are_balanced() {
        let ds = corpus::teragen_1g();
        let flow = analyze(&jobs::sort(), &ds, &cluster()).unwrap();
        let red = flow.reduce.as_ref().unwrap();
        let shares = red.partition_shares(10, Partitioner::TotalOrder);
        for s in shares {
            assert!((s - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_reduce_output_scales_linearly() {
        let ds = corpus::teragen_1g();
        let flow = analyze(&jobs::sort(), &ds, &cluster()).unwrap();
        let red = flow.reduce.as_ref().unwrap();
        assert!((red.out_bytes - red.in_bytes).abs() / red.in_bytes < 0.05);
    }

    #[test]
    fn aggregating_reduce_output_scales_sublinearly() {
        let ds = corpus::wikipedia_35g();
        let flow = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        let red = flow.reduce.as_ref().unwrap();
        assert!(
            red.out_bytes < red.in_bytes / 10.0,
            "word count output is tiny vs input: out={} in={}",
            red.out_bytes,
            red.in_bytes
        );
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let ds = Dataset::new("empty", vec![], 0);
        let err = analyze(&jobs::word_count(), &ds, &cluster()).unwrap_err();
        assert!(matches!(err, SimError::EmptyDataset(_)));
    }

    #[test]
    fn per_task_flows_vary_between_chunks() {
        let ds = corpus::wikipedia_35g();
        let flow = analyze(&jobs::word_count(), &ds, &cluster()).unwrap();
        assert!(flow.per_task.len() >= 4);
        let first = flow.per_task[0].out_records;
        assert!(
            flow.per_task.iter().any(|t| t.out_records != first),
            "chunks should differ slightly"
        );
    }
}
