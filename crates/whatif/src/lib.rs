//! # whatif — the What-If engine
//!
//! Starfish's WIF answers "how long would job `j = <p, d, r, c>` run if
//! the configuration `c` (or data `d`) changed?", given an execution
//! profile. This crate reconstructs the job's dataflow *from the profile's
//! statistics alone* (selectivities, per-record costs, record sizes) and
//! prices it with the same phase cost model the simulator uses
//! ([`mrsim::phases`]) — no noise, uniform partitions. Because the profile
//! is the only job-specific input, the quality of tuning decisions is
//! exactly as good as the profile PStorM supplies, which is the causal
//! chain the paper's experiments measure.

use mrjobs::JobSpec;
use mrsim::{
    simulate_runtime_ms, simulate_with_dataflow, ClusterSpec, CombineFlow, CostRates, Dataflow,
    JobConfig, ReduceFlow, SimError, SplitFlow,
};
use profiler::JobProfile;

/// A what-if query: predict the runtime of `spec` on `input_bytes` of data
/// under `config`, assuming the job behaves like `profile` says.
#[derive(Debug, Clone)]
pub struct WhatIfQuery<'a> {
    pub spec: &'a JobSpec,
    pub profile: &'a JobProfile,
    /// Logical input size of the submitted job.
    pub input_bytes: u64,
    pub cluster: &'a ClusterSpec,
    pub config: &'a JobConfig,
}

/// A what-if query with the config-independent work hoisted out: the
/// reconstructed dataflow and the profile-implied cost rates depend only on
/// (profile, input size, cluster), so a search that prices hundreds of
/// configurations against one profile builds the plan once and calls
/// [`WhatIfPlan::predict`] per candidate.
#[derive(Debug, Clone)]
pub struct WhatIfPlan<'a> {
    spec: &'a JobSpec,
    flow: Dataflow,
    cluster: ClusterSpec,
}

impl<'a> WhatIfPlan<'a> {
    /// Reconstruct the dataflow and effective rates for `profile` scaled to
    /// `input_bytes`. Performs exactly the per-query setup the unplanned
    /// path does, in the same order, so predictions are bit-identical.
    pub fn new(
        spec: &'a JobSpec,
        profile: &JobProfile,
        input_bytes: u64,
        cluster: &ClusterSpec,
    ) -> Self {
        let flow = dataflow_from_profile(profile, input_bytes, cluster);
        let mut cluster = cluster.clone();
        cluster.heterogeneity = 0.0;
        // The WIF prices idealized executions: no fault injection, no
        // straggler nodes. Keeps predictions deterministic and on the
        // engine's runtime-only fast path even for a faulty home cluster.
        cluster.faults = mrsim::FaultSpec::default();
        cluster.node_slowdown.clear();
        cluster.rates = rates_from_profile(profile, &cluster.rates);
        WhatIfPlan {
            spec,
            flow,
            cluster,
        }
    }

    /// Whether the reconstructed dataflow has a combiner. Configuration
    /// fields controlling the combiner are inert when this is false —
    /// callers memoizing predictions can ignore them.
    pub fn has_combiner(&self) -> bool {
        self.flow.combine.is_some()
    }

    /// Whether the reconstructed dataflow has a reduce phase. Reduce-side
    /// configuration fields are inert when this is false.
    pub fn has_reduce(&self) -> bool {
        self.flow.reduce.is_some()
    }

    /// Predict the virtual runtime (ms) under `config`.
    pub fn predict(&self, config: &JobConfig) -> Result<f64, SimError> {
        // deterministic: the WIF is an analytic model (seed 0, zero
        // heterogeneity — the engine takes its runtime-only fast path).
        simulate_runtime_ms(self.spec, &self.flow, "what-if", &self.cluster, config, 0)
    }
}

/// Predict the virtual runtime (ms) for a what-if query.
///
/// Returns an error for invalid configurations; never OOMs (the WIF has no
/// per-key information, so the memory model is not applied — matching
/// Starfish, whose WIF also reasons only over aggregate statistics).
///
/// One-shot convenience over [`WhatIfPlan`]; searches evaluating many
/// configurations should build the plan once instead.
pub fn predict_runtime_ms(q: &WhatIfQuery<'_>) -> Result<f64, SimError> {
    WhatIfPlan::new(q.spec, q.profile, q.input_bytes, q.cluster).predict(q.config)
}

/// The pre-plan implementation of [`predict_runtime_ms`]: rebuilds the
/// dataflow per call and runs the full report-materializing simulation.
/// Kept as the perf baseline and as a bit-identity oracle for the planned
/// path (see `planned_prediction_is_bit_identical_to_unplanned`).
pub fn predict_runtime_ms_unplanned(q: &WhatIfQuery<'_>) -> Result<f64, SimError> {
    let flow = dataflow_from_profile(q.profile, q.input_bytes, q.cluster);
    let mut cluster = q.cluster.clone();
    cluster.heterogeneity = 0.0;
    cluster.faults = mrsim::FaultSpec::default();
    cluster.node_slowdown.clear();
    cluster.rates = rates_from_profile(q.profile, &q.cluster.rates);
    let report = simulate_with_dataflow(q.spec, &flow, "what-if", &cluster, q.config, 0)?;
    Ok(report.runtime_ms)
}

/// Reconstruct a (uniform) dataflow from profile statistics, scaled to a
/// new input size.
pub fn dataflow_from_profile(
    profile: &JobProfile,
    input_bytes: u64,
    cluster: &ClusterSpec,
) -> Dataflow {
    let m = cluster.num_splits(input_bytes);
    let bytes_per_task = input_bytes as f64 / m as f64;
    let p = &profile.map;
    let records_per_task = if p.avg_input_record_bytes > 0.0 {
        bytes_per_task / p.avg_input_record_bytes
    } else {
        0.0
    };
    let out_bytes = bytes_per_task * p.size_selectivity;
    let out_records = records_per_task * p.pairs_selectivity;
    let per_task = vec![SplitFlow {
        input_records: records_per_task,
        input_bytes: bytes_per_task,
        out_records,
        out_bytes,
        map_ops: records_per_task * p.map_ops_per_record,
    }];
    let combine = match (p.combine_pairs_selectivity, p.combine_size_selectivity) {
        (Some(rec), Some(size)) => Some(CombineFlow {
            record_selectivity: rec,
            size_selectivity: size,
            ops_per_record: p.combine_ops_per_record.unwrap_or(0.0),
            ref_records: p.combine_ref_records.unwrap_or(out_records.max(1.0)),
            alpha: p.intermediate_key_alpha.unwrap_or(1.0),
        }),
        _ => None,
    };
    let reduce = profile.reduce.as_ref().map(|r| {
        // Raw reduce input equals total (uncombined) map output; job output
        // scales linearly with input relative to the profiled run.
        let in_bytes = out_bytes * m as f64;
        let in_records = out_records * m as f64;
        let growth = if profile.input_bytes > 0.0 {
            input_bytes as f64 / profile.input_bytes
        } else {
            1.0
        };
        ReduceFlow {
            in_records,
            in_bytes,
            out_records: r.out_records * growth,
            out_bytes: r.out_bytes * growth,
            ops_per_record: r.reduce_ops_per_record,
            distinct_keys: 0.0,
            max_group_bytes: 0.0,
            key_weights: vec![],
            uniform_weight: in_bytes,
        }
    });
    Dataflow {
        num_map_tasks: m,
        per_task,
        combine,
        reduce,
        input_bytes: input_bytes as f64,
        avg_intermediate_record_bytes: p.avg_intermediate_record_bytes,
    }
}

/// Effective cost rates implied by a profile's cost factors, with
/// auxiliary rates (sort, serde, codec) inherited from the cluster and
/// scaled by the profile's CPU speed ratio.
pub fn rates_from_profile(profile: &JobProfile, base: &CostRates) -> CostRates {
    let cf = &profile.map.cost_factors;
    let cpu_ns_per_op = if profile.map.map_ops_per_record > 0.0 && cf.map_cpu_cost > 0.0 {
        cf.map_cpu_cost / profile.map.map_ops_per_record
    } else {
        base.cpu_ns_per_op
    };
    let cpu_ratio = cpu_ns_per_op / base.cpu_ns_per_op;
    CostRates {
        read_hdfs_ns_per_byte: cf.read_hdfs_io_cost,
        write_hdfs_ns_per_byte: cf.write_hdfs_io_cost,
        read_local_ns_per_byte: cf.read_local_io_cost,
        write_local_ns_per_byte: cf.write_local_io_cost,
        network_ns_per_byte: cf.network_cost,
        cpu_ns_per_op,
        sort_ns_per_record: base.sort_ns_per_record * cpu_ratio,
        serde_ns_per_byte: base.serde_ns_per_byte * cpu_ratio,
        compress_ns_per_byte: base.compress_ns_per_byte * cpu_ratio,
        decompress_ns_per_byte: base.decompress_ns_per_byte * cpu_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::simulate;
    use profiler::collect_full_profile;

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    fn profile_of(spec: &JobSpec, ds: &mrjobs::Dataset) -> JobProfile {
        collect_full_profile(spec, ds, &cl(), &JobConfig::default(), 21)
            .unwrap()
            .0
    }

    #[test]
    fn prediction_tracks_simulation_for_own_profile() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        let profile = profile_of(&spec, &ds);
        let cfg = JobConfig::default();
        let predicted = predict_runtime_ms(&WhatIfQuery {
            spec: &spec,
            profile: &profile,
            input_bytes: ds.logical_bytes,
            cluster: &cl(),
            config: &cfg,
        })
        .unwrap();
        let actual = simulate(&spec, &ds, &cl(), &cfg, 99).unwrap().runtime_ms;
        let rel = (predicted - actual).abs() / actual;
        assert!(
            rel < 0.35,
            "predicted {predicted} vs actual {actual} ({rel})"
        );
    }

    #[test]
    fn prediction_ranks_configurations_like_the_simulator() {
        // The WIF's job is to *rank* configurations; check the ordering on
        // a config pair with a large true gap.
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);
        let profile = profile_of(&spec, &ds);
        let default_cfg = JobConfig::default();
        let tuned = JobConfig {
            num_reduce_tasks: 27,
            compress_map_output: true,
            ..JobConfig::default()
        };
        let q = |cfg| {
            predict_runtime_ms(&WhatIfQuery {
                spec: &spec,
                profile: &profile,
                input_bytes: ds.logical_bytes,
                cluster: &cl(),
                config: cfg,
            })
            .unwrap()
        };
        let p_default = q(&default_cfg);
        let p_tuned = q(&tuned);
        assert!(
            p_tuned < p_default / 2.0,
            "tuned {p_tuned} default {p_default}"
        );
        let a_default = simulate(&spec, &ds, &cl(), &default_cfg, 7)
            .unwrap()
            .runtime_ms;
        let a_tuned = simulate(&spec, &ds, &cl(), &tuned, 7).unwrap().runtime_ms;
        assert!(a_tuned < a_default, "simulator agrees on the direction");
    }

    #[test]
    fn prediction_scales_with_input_size() {
        let ds = corpus::wikipedia_1g();
        let spec = jobs::word_count();
        let profile = profile_of(&spec, &ds);
        let q = |bytes| {
            predict_runtime_ms(&WhatIfQuery {
                spec: &spec,
                profile: &profile,
                input_bytes: bytes,
                cluster: &cl(),
                config: &JobConfig::default(),
            })
            .unwrap()
        };
        let small = q(1 << 30);
        let large = q(35 * (1 << 30));
        assert!(large > 5.0 * small);
    }

    #[test]
    fn invalid_config_propagates() {
        let ds = corpus::wikipedia_1g();
        let spec = jobs::word_count();
        let profile = profile_of(&spec, &ds);
        let bad = JobConfig {
            io_sort_factor: 1,
            ..JobConfig::default()
        };
        let err = predict_runtime_ms(&WhatIfQuery {
            spec: &spec,
            profile: &profile,
            input_bytes: 1 << 30,
            cluster: &cl(),
            config: &bad,
        })
        .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn planned_prediction_is_bit_identical_to_unplanned() {
        let ds = corpus::wikipedia_35g();
        for spec in [jobs::word_count(), jobs::word_cooccurrence_pairs(2)] {
            let profile = profile_of(&spec, &ds);
            let plan = WhatIfPlan::new(&spec, &profile, ds.logical_bytes, &cl());
            for config in [
                JobConfig::default(),
                JobConfig {
                    num_reduce_tasks: 27,
                    compress_map_output: true,
                    ..JobConfig::default()
                },
                JobConfig {
                    use_combiner: false,
                    reduce_slowstart: 0.8,
                    io_sort_mb: 200,
                    ..JobConfig::default()
                },
            ] {
                let unplanned = predict_runtime_ms_unplanned(&WhatIfQuery {
                    spec: &spec,
                    profile: &profile,
                    input_bytes: ds.logical_bytes,
                    cluster: &cl(),
                    config: &config,
                })
                .unwrap();
                let planned = plan.predict(&config).unwrap();
                assert_eq!(
                    unplanned.to_bits(),
                    planned.to_bits(),
                    "planned {planned} vs unplanned {unplanned}"
                );
            }
        }
    }

    #[test]
    fn rates_reconstruction_roundtrips_io_costs() {
        let ds = corpus::wikipedia_1g();
        let profile = profile_of(&jobs::word_count(), &ds);
        let rates = rates_from_profile(&profile, &cl().rates);
        assert_eq!(
            rates.read_hdfs_ns_per_byte,
            profile.map.cost_factors.read_hdfs_io_cost
        );
        assert!(rates.cpu_ns_per_op > 0.0);
    }
}
