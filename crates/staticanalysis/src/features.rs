//! Static job features (Table 4.3).
//!
//! The black-box features are the class names and key/value types of the
//! customizable parts of the MapReduce framework; the white-box features
//! are the map and reduce CFGs. PStorM matches map-side and reduce-side
//! feature vectors independently (so profiles can be *composed* from two
//! different jobs), so this module exposes the two sides separately.

use mrjobs::JobSpec;

use crate::cfg::Cfg;

/// The static features of one side (map or reduce) of a job: an ordered
/// categorical vector plus the CFG of that side's UDF.
#[derive(Debug, Clone, PartialEq)]
pub struct SideFeatures {
    /// Ordered `(feature-name, value)` pairs; order is fixed so two
    /// vectors can be compared positionally (the paper's `O(|S_J|)`
    /// Jaccard evaluation).
    pub categorical: Vec<(&'static str, String)>,
    /// The CFG of the side's UDF; `None` when the job has no reducer.
    pub cfg: Option<Cfg>,
}

impl SideFeatures {
    /// Fraction of positionally corresponding categorical features that
    /// are equal — the Jaccard index as the paper computes it (equal pairs
    /// over total pairs). Vectors of different lengths (e.g. when the
    /// §7.2.1 job-parameter extension appends features) treat the
    /// unpaired tail as mismatching.
    pub fn jaccard(&self, other: &SideFeatures) -> f64 {
        let total = self.categorical.len().max(other.categorical.len());
        if total == 0 {
            return 1.0;
        }
        let equal = self
            .categorical
            .iter()
            .zip(&other.categorical)
            .filter(|((na, va), (nb, vb))| na == nb && va == vb)
            .count();
        equal as f64 / total as f64
    }

    /// Conservative CFG match score: 1.0 on a structural match, 0.0
    /// otherwise. Sides without a CFG (map-only jobs' reduce side) match
    /// each other.
    pub fn cfg_match(&self, other: &SideFeatures) -> f64 {
        match (&self.cfg, &other.cfg) {
            (Some(a), Some(b)) if a.matches(b) => 1.0,
            (Some(_), Some(_)) => 0.0,
            (None, None) => 1.0,
            _ => 0.0,
        }
    }
}

/// The full static feature set of a job: map side and reduce side.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticFeatures {
    pub map: SideFeatures,
    pub reduce: SideFeatures,
}

impl StaticFeatures {
    /// Extract the Table 4.3 features from a job spec.
    pub fn extract(spec: &JobSpec) -> StaticFeatures {
        let map_categorical = vec![
            ("IN_FORMATTER", spec.input_formatter.clone()),
            ("MAPPER", spec.mapper_class.clone()),
            ("MAP_IN_KEY", spec.map_in_key.class_name().to_string()),
            ("MAP_IN_VAL", spec.map_in_val.class_name().to_string()),
            ("MAP_OUT_KEY", spec.map_out_key.class_name().to_string()),
            ("MAP_OUT_VAL", spec.map_out_val.class_name().to_string()),
            (
                "COMBINER",
                spec.combiner_class.clone().unwrap_or_else(|| "NULL".into()),
            ),
            ("PARTITIONER", spec.partitioner.class_name().to_string()),
        ];
        let reduce_categorical = vec![
            (
                "REDUCER",
                spec.reducer_class.clone().unwrap_or_else(|| "NULL".into()),
            ),
            ("RED_OUT_KEY", spec.red_out_key.class_name().to_string()),
            ("RED_OUT_VAL", spec.red_out_val.class_name().to_string()),
            ("OUT_FORMATTER", spec.output_formatter.clone()),
            // The reduce side consumes the intermediate key/value types.
            ("RED_IN_KEY", spec.map_out_key.class_name().to_string()),
            ("RED_IN_VAL", spec.map_out_val.class_name().to_string()),
        ];
        StaticFeatures {
            map: SideFeatures {
                categorical: map_categorical,
                cfg: Some(Cfg::from_udf(&spec.map_udf)),
            },
            reduce: SideFeatures {
                categorical: reduce_categorical,
                cfg: spec.reduce_udf.as_ref().map(Cfg::from_udf),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrjobs::jobs::{
        bigram_relative_frequency, grep, word_cooccurrence_pairs, word_count,
        word_count_while_variant,
    };

    #[test]
    fn identical_jobs_have_jaccard_one() {
        let a = StaticFeatures::extract(&word_count());
        let b = StaticFeatures::extract(&word_count());
        assert_eq!(a.map.jaccard(&b.map), 1.0);
        assert_eq!(a.reduce.jaccard(&b.reduce), 1.0);
        assert_eq!(a.map.cfg_match(&b.map), 1.0);
    }

    #[test]
    fn word_count_variants_share_reducer_features() {
        let a = StaticFeatures::extract(&word_count());
        let b = StaticFeatures::extract(&word_count_while_variant());
        // Mapper class differs; everything else on the map side matches.
        assert!(a.map.jaccard(&b.map) >= 7.0 / 8.0 - 1e-9);
        assert_eq!(a.reduce.jaccard(&b.reduce), 1.0);
        assert_eq!(a.map.cfg_match(&b.map), 1.0);
    }

    #[test]
    fn different_jobs_have_low_map_jaccard() {
        let a = StaticFeatures::extract(&word_count());
        let b = StaticFeatures::extract(&word_cooccurrence_pairs(2));
        assert!(a.map.jaccard(&b.map) < 0.8);
        assert_eq!(a.map.cfg_match(&b.map), 0.0);
    }

    #[test]
    fn grep_pattern_does_not_change_static_features() {
        let a = StaticFeatures::extract(&grep("foo"));
        let b = StaticFeatures::extract(&grep("bar"));
        assert_eq!(a.map.jaccard(&b.map), 1.0);
        assert_eq!(a.map.cfg_match(&b.map), 1.0);
    }

    #[test]
    fn bigram_reduce_side_differs_from_sum_reducers() {
        let a = StaticFeatures::extract(&bigram_relative_frequency());
        let b = StaticFeatures::extract(&word_count());
        assert!(a.reduce.jaccard(&b.reduce) < 0.5);
        assert_eq!(a.reduce.cfg_match(&b.reduce), 0.0);
    }

    #[test]
    fn map_only_jobs_have_no_reduce_cfg() {
        let mut spec = word_count();
        spec.reduce_udf = None;
        spec.reducer_class = None;
        let f = StaticFeatures::extract(&spec);
        assert!(f.reduce.cfg.is_none());
        let g = StaticFeatures::extract(&spec);
        assert_eq!(f.reduce.cfg_match(&g.reduce), 1.0);
        let with_reduce = StaticFeatures::extract(&word_count());
        assert_eq!(f.reduce.cfg_match(&with_reduce.reduce), 0.0);
    }
}
