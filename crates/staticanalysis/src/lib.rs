//! # staticanalysis — static job features for PStorM-rs
//!
//! The Rust analogue of PStorM's Soot-based bytecode analysis: control
//! flow graph extraction from the UDF IR ([`mod@cfg`]) and the Table 4.3
//! static feature vectors ([`features`]). Because the CFG is derived from
//! the same IR the simulator interprets, the CFG↔CPU-cost correlation the
//! paper exploits (§4.1.3, Fig. 4.3) holds by construction.

pub mod cfg;
pub mod features;

pub use cfg::{Cfg, Node, NodeKind};
pub use features::{SideFeatures, StaticFeatures};
