//! Control flow graph extraction and conservative matching (§4.1.3).
//!
//! The paper extracts CFGs from Java bytecode with Soot; here CFGs are
//! lowered from the UDF IR the interpreter executes. A vertex is either a
//! basic block of sequential statements or a branch vertex (condition or
//! loop header); every vertex has one or two successors, matching the
//! grammar in §4.2 of the paper.
//!
//! Matching is deliberately conservative: a synchronized breadth-first
//! traversal of the two graphs that compares vertex kinds, out-degrees,
//! and whether a block emits output. The score is 0 or 1 — graph edit
//! distances are never computed (they are expensive, and a small CFG edit
//! can mean a large semantic change).

use mrjobs::{Stmt, Udf};
use std::collections::{HashSet, VecDeque};

/// The kind of a CFG vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Function entry.
    Entry,
    /// A maximal run of sequential (non-branching) statements.
    /// `emits` records whether the block contains a `context.write`.
    Basic { emits: bool },
    /// An `if` condition vertex: two successors (then, else/join).
    Branch,
    /// A loop header: two successors (body, exit). Both `while` and `for`
    /// lower to this shape, as `javac` does.
    LoopHeader,
    /// Function exit.
    Exit,
}

/// A CFG vertex: a kind plus ordered successor indices (0, 1, or 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub kind: NodeKind,
    pub succ: Vec<usize>,
}

/// A control flow graph. Node 0 is always the entry; the exit node is
/// recorded in [`Cfg::exit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub exit: usize,
    max_loop_depth: usize,
}

impl Cfg {
    /// Build the CFG of a UDF body.
    pub fn from_udf(udf: &Udf) -> Cfg {
        Self::from_body(&udf.body)
    }

    /// Build the CFG of a statement list.
    pub fn from_body(body: &[Stmt]) -> Cfg {
        let mut b = Builder {
            nodes: vec![Node {
                kind: NodeKind::Entry,
                succ: vec![],
            }],
            depth: 0,
            max_depth: 0,
        };
        let tails = b.lower_block(body, vec![0]);
        let exit = b.push(NodeKind::Exit);
        for t in tails {
            b.nodes[t].succ.push(exit);
        }
        Cfg {
            nodes: b.nodes,
            exit,
            max_loop_depth: b.max_depth,
        }
    }

    /// Reassemble a CFG from stored parts (deserialization). Returns
    /// `None` when a successor or exit index is out of range.
    pub fn from_parts(nodes: Vec<Node>, exit: usize, max_loop_depth: usize) -> Option<Cfg> {
        if exit >= nodes.len() {
            return None;
        }
        if nodes
            .iter()
            .any(|n| n.succ.iter().any(|&s| s >= nodes.len()))
        {
            return None;
        }
        Some(Cfg {
            nodes,
            exit,
            max_loop_depth,
        })
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.succ.len()).sum()
    }

    /// Number of loop headers (cycles in the graph).
    pub fn loop_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::LoopHeader)
            .count()
    }

    /// Maximum syntactic loop nesting depth, recorded during lowering.
    pub fn max_loop_depth(&self) -> usize {
        self.max_loop_depth
    }

    /// Conservative structural equality: synchronized BFS comparing vertex
    /// kinds, out-degrees, and successor order. Returns 1 (match) or
    /// 0 (mismatch) semantics as a bool.
    pub fn matches(&self, other: &Cfg) -> bool {
        let mut visited = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((0usize, 0usize));
        while let Some((a, b)) = queue.pop_front() {
            if !visited.insert((a, b)) {
                continue;
            }
            let na = &self.nodes[a];
            let nb = &other.nodes[b];
            if na.kind != nb.kind || na.succ.len() != nb.succ.len() {
                return false;
            }
            for (&sa, &sb) in na.succ.iter().zip(nb.succ.iter()) {
                queue.push_back((sa, sb));
            }
        }
        true
    }
}

struct Builder {
    nodes: Vec<Node>,
    depth: usize,
    max_depth: usize,
}

impl Builder {
    fn push(&mut self, kind: NodeKind) -> usize {
        self.nodes.push(Node { kind, succ: vec![] });
        self.nodes.len() - 1
    }

    fn connect(&mut self, froms: &[usize], to: usize) {
        for &f in froms {
            self.nodes[f].succ.push(to);
        }
    }

    /// Lower a statement list. `entries` are the dangling vertices whose
    /// control falls into this block; returns the dangling exits.
    fn lower_block(&mut self, stmts: &[Stmt], entries: Vec<usize>) -> Vec<usize> {
        let mut current = entries;
        let mut basic: Option<usize> = None; // open basic block collecting simple stmts
        for stmt in stmts {
            match stmt {
                Stmt::Assign(..) | Stmt::MapAdd(..) | Stmt::ListPush(..) => {
                    basic = Some(self.ensure_basic(&mut current, basic, false));
                }
                Stmt::Emit(..) => {
                    let idx = self.ensure_basic(&mut current, basic, true);
                    // Mark the block as emitting.
                    if let NodeKind::Basic { emits } = &mut self.nodes[idx].kind {
                        *emits = true;
                    }
                    basic = Some(idx);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    basic = None;
                    let branch = self.push(NodeKind::Branch);
                    self.connect(&current, branch);
                    let then_exits = self.lower_block(then_branch, vec![branch]);
                    let else_exits = if else_branch.is_empty() {
                        vec![branch]
                    } else {
                        self.lower_block(else_branch, vec![branch])
                    };
                    current = then_exits;
                    current.extend(else_exits);
                    current.sort_unstable();
                    current.dedup();
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    basic = None;
                    let header = self.push(NodeKind::LoopHeader);
                    self.connect(&current, header);
                    self.depth += 1;
                    self.max_depth = self.max_depth.max(self.depth);
                    let body_exits = self.lower_block(body, vec![header]);
                    self.depth -= 1;
                    // Back edge(s) from body exits to the header; an empty
                    // body degenerates to a self-loop.
                    self.connect(&body_exits, header);
                    current = vec![header];
                }
            }
        }
        current
    }

    /// Reuse the open basic block if control hasn't branched since it was
    /// opened; otherwise open a new one.
    fn ensure_basic(
        &mut self,
        current: &mut Vec<usize>,
        basic: Option<usize>,
        emits: bool,
    ) -> usize {
        if let Some(idx) = basic {
            if current.len() == 1 && current[0] == idx {
                return idx;
            }
        }
        let idx = self.push(NodeKind::Basic { emits });
        self.connect(current, idx);
        *current = vec![idx];
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrjobs::jobs::{
        bigram_relative_frequency, word_cooccurrence_pairs, word_count, word_count_while_variant,
    };

    #[test]
    fn straight_line_body_is_entry_basic_exit() {
        use mrjobs::ir::build::*;
        let udf = Udf::mapper("m", vec![assign("x", c_int(1)), emit(var("x"), var("x"))]);
        let cfg = Cfg::from_udf(&udf);
        assert_eq!(cfg.node_count(), 3);
        assert_eq!(cfg.loop_count(), 0);
        assert!(matches!(cfg.nodes[1].kind, NodeKind::Basic { emits: true }));
    }

    #[test]
    fn word_count_has_one_loop() {
        let cfg = Cfg::from_udf(&word_count().map_udf);
        assert_eq!(cfg.loop_count(), 1);
        assert_eq!(cfg.max_loop_depth(), 1);
    }

    #[test]
    fn cooccurrence_has_nested_loops_and_condition() {
        let cfg = Cfg::from_udf(&word_cooccurrence_pairs(2).map_udf);
        assert_eq!(cfg.loop_count(), 2);
        assert_eq!(cfg.max_loop_depth(), 2);
        assert!(cfg.nodes.iter().any(|n| n.kind == NodeKind::Branch));
    }

    #[test]
    fn for_and_while_word_count_cfgs_match() {
        // §4.1.3: a for-based and a while-based word count must produce the
        // same CFG under conservative matching.
        let a = Cfg::from_udf(&word_count().map_udf);
        let b = Cfg::from_udf(&word_count_while_variant().map_udf);
        assert!(a.matches(&b));
        assert!(b.matches(&a));
    }

    #[test]
    fn word_count_and_cooccurrence_cfgs_differ() {
        let a = Cfg::from_udf(&word_count().map_udf);
        let b = Cfg::from_udf(&word_cooccurrence_pairs(2).map_udf);
        assert!(!a.matches(&b));
    }

    #[test]
    fn match_is_reflexive_across_suite() {
        for spec in mrjobs::jobs::standard_suite() {
            let cfg = Cfg::from_udf(&spec.map_udf);
            assert!(cfg.matches(&cfg), "{}", spec.name);
        }
    }

    #[test]
    fn bigram_and_coocc_map_cfgs_differ_structurally() {
        // bigram has a single loop; co-occurrence has two nested loops.
        let a = Cfg::from_udf(&bigram_relative_frequency().map_udf);
        let b = Cfg::from_udf(&word_cooccurrence_pairs(2).map_udf);
        assert!(!a.matches(&b));
        assert!(a.loop_count() < b.loop_count());
    }

    #[test]
    fn if_else_produces_branch_with_two_paths() {
        use mrjobs::ir::build::*;
        let udf = Udf::mapper(
            "m",
            vec![if_else(
                c_int(1),
                vec![emit(c_int(1), c_int(1))],
                vec![emit(c_int(2), c_int(2))],
            )],
        );
        let cfg = Cfg::from_udf(&udf);
        let branch = cfg
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::Branch)
            .unwrap();
        assert_eq!(branch.succ.len(), 2);
    }

    #[test]
    fn loop_header_has_body_and_exit_successors() {
        let cfg = Cfg::from_udf(&word_count().map_udf);
        let header = cfg
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::LoopHeader)
            .unwrap();
        assert_eq!(header.succ.len(), 2);
    }

    #[test]
    fn empty_body_is_entry_to_exit() {
        let cfg = Cfg::from_body(&[]);
        assert_eq!(cfg.node_count(), 2);
        assert_eq!(cfg.nodes[0].succ, vec![cfg.exit]);
    }
}
