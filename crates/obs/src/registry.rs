//! The thread-safe recording core: virtual clock, spans, counters,
//! histograms, and events behind a single mutex.
//!
//! All state lives in one [`Mutex`]-guarded block shared by every clone of
//! a [`Registry`]. Instrumented subsystems (daemon, store, matcher, CBO,
//! simulator) therefore write into one coherent trace as long as they were
//! handed clones of the same registry. A disabled registry carries no
//! state at all and every method returns after a single branch.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::export::TraceSnapshot;

/// Default histogram bucket upper bounds, shared by every histogram that
/// is not given explicit bounds. Decade buckets from 10⁻³ to 10⁸ cover
/// everything the instrumentation records: sub-millisecond phase times,
/// multi-minute job runtimes (in ms), and candidate/row counts.
pub(crate) const DEFAULT_BOUNDS: [f64; 12] = [
    1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
];

/// An attribute value on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, seeds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (virtual durations, selectivities). Must be finite to appear
    /// in JSON as a number; non-finite values export as `null`.
    F64(f64),
    /// String (job ids, rung labels, outcome tags).
    Str(String),
    /// Boolean (flags such as `via_fallback`).
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One recorded span: a named interval of virtual time with attributes
/// and a parent link forming the per-submission span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// 1-based id in creation order (0 is "no parent").
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Dotted span name, e.g. `daemon.submit` (naming scheme: DESIGN.md §10).
    pub name: String,
    /// Virtual start time in ns.
    pub start_ns: u64,
    /// Virtual end time in ns; `None` if never closed (a trace exported
    /// mid-flight).
    pub end_ns: Option<u64>,
    /// Attributes in recording order.
    pub attrs: Vec<(String, Value)>,
}

/// One timestamped structured event (`key=value` payload).
#[derive(Debug, Clone, PartialEq)]
pub struct EventData {
    /// Virtual timestamp in ns.
    pub ts_ns: u64,
    /// Dotted event name, e.g. `daemon.degrade.attempt`.
    pub name: String,
    /// Attributes in recording order.
    pub attrs: Vec<(String, Value)>,
}

/// A fixed-bucket histogram: counts of observations per bucket plus the
/// exact sum/count, so means stay available even with coarse buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of each bucket (an observation lands in the first
    /// bucket whose bound is `>=` the value); values above the last bound
    /// land in the implicit overflow bucket.
    pub bounds: Vec<f64>,
    /// One count per bound, plus one trailing overflow count.
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }
}

#[derive(Debug, Default)]
pub(crate) struct State {
    pub(crate) clock_ns: u64,
    pub(crate) spans: Vec<SpanData>,
    /// Stack of currently open span ids; the top is the parent for new
    /// spans and events created on any thread sharing the registry.
    pub(crate) open: Vec<u64>,
    pub(crate) events: Vec<EventData>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, Histogram>,
}

/// A handle to the shared trace state — or a no-op shell.
///
/// Cloning is cheap and clones share state: hand clones of one enabled
/// registry to the daemon, store, and simulator to collect one coherent
/// trace. [`Registry::disabled`] is the hot-path default; it carries no
/// allocation and every method is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Mutex<State>>>,
}

impl Registry {
    /// An enabled registry with an empty trace and the virtual clock at 0.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Mutex::new(State::default()))),
        }
    }

    /// The no-op registry: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current virtual time in ns (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().clock_ns,
            None => 0,
        }
    }

    /// Advance the virtual clock by a simulated duration in milliseconds.
    /// This is the **only** way time passes: callers charge simulated
    /// costs (job runtimes, backoff waits) explicitly, and wall-clock
    /// never leaks into the trace.
    pub fn advance_ms(&self, ms: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().clock_ns += crate::ms_to_ns(ms);
        }
    }

    /// Open a span starting now, child of the innermost open span. The
    /// returned guard closes the span (stamping the then-current virtual
    /// time) when dropped.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                reg: Registry::disabled(),
                id: None,
            };
        };
        let id = {
            let mut st = inner.lock().unwrap();
            let id = st.spans.len() as u64 + 1;
            let parent = st.open.last().copied();
            let start_ns = st.clock_ns;
            st.spans.push(SpanData {
                id,
                parent,
                name: name.to_string(),
                start_ns,
                end_ns: None,
                attrs: Vec::new(),
            });
            st.open.push(id);
            id
        };
        Span {
            reg: self.clone(),
            id: Some(id),
        }
    }

    /// Record an already-timed span `[start_ns, end_ns]` (used by the
    /// simulator, whose task timeline is known only after the run). The
    /// span is closed immediately and parented under the innermost open
    /// span; it never joins the open stack.
    pub fn record_span(&self, name: &str, start_ns: u64, end_ns: u64, attrs: &[(&str, Value)]) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock().unwrap();
            let id = st.spans.len() as u64 + 1;
            let parent = st.open.last().copied();
            st.spans.push(SpanData {
                id,
                parent,
                name: name.to_string(),
                start_ns,
                end_ns: Some(end_ns),
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Record a structured event at the current virtual time.
    pub fn event(&self, name: &str, attrs: &[(&str, Value)]) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock().unwrap();
            let ts_ns = st.clock_ns;
            st.events.push(EventData {
                ts_ns,
                name: name.to_string(),
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Add `n` to a monotonic counter (created at 0 on first use).
    pub fn incr(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            *inner
                .lock()
                .unwrap()
                .counters
                .entry(name.to_string())
                .or_insert(0) += n;
        }
    }

    /// Set a gauge to its current level (created on first use). Unlike
    /// counters, gauges are *last-write-wins* instantaneous levels —
    /// queue depths, in-flight permits, bytes in use. Gauges appear in
    /// exports only when at least one was set, so traces recorded before
    /// gauges existed keep their exact bytes.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().gauges.insert(name.to_string(), v);
        }
    }

    /// Raise a gauge to `v` if `v` exceeds its current level (high-water
    /// marks such as peak queue depth).
    pub fn max_gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock().unwrap();
            let slot = st.gauges.entry(name.to_string()).or_insert(v);
            if v > *slot {
                *slot = v;
            }
        }
    }

    /// Record an observation into the named fixed-bucket histogram
    /// (decade buckets 10⁻³..10⁸; see [`Registry::observe_with_bounds`]
    /// for custom bounds).
    pub fn observe(&self, name: &str, v: f64) {
        self.observe_with_bounds(name, v, &DEFAULT_BOUNDS);
    }

    /// Record an observation into a histogram with explicit bucket upper
    /// bounds. The bounds are fixed by the histogram's **first**
    /// observation; later calls reuse them.
    pub fn observe_with_bounds(&self, name: &str, v: f64, bounds: &[f64]) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .unwrap()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds))
                .observe(v);
        }
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            Some(inner) => {
                let st = inner.lock().unwrap();
                TraceSnapshot {
                    clock_ns: st.clock_ns,
                    spans: st.spans.clone(),
                    events: st.events.clone(),
                    counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                    gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                    histograms: st
                        .histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                }
            }
            None => TraceSnapshot::default(),
        }
    }

    /// Forget everything recorded and reset the clock to 0 (the registry
    /// stays enabled). Lets one long-lived daemon export per-submission
    /// traces.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            *inner.lock().unwrap() = State::default();
        }
    }
}

/// Guard for an open span: set attributes while open; dropping closes the
/// span at the then-current virtual time.
#[derive(Debug)]
pub struct Span {
    reg: Registry,
    id: Option<u64>,
}

impl Span {
    /// Attach an attribute (no-op on a disabled registry).
    pub fn attr(&self, key: &str, value: impl Into<Value>) {
        let (Some(inner), Some(id)) = (&self.reg.inner, self.id) else {
            return;
        };
        let mut st = inner.lock().unwrap();
        let span = &mut st.spans[(id - 1) as usize];
        span.attrs.push((key.to_string(), value.into()));
    }

    /// This span's id, if recording.
    pub fn id(&self) -> Option<u64> {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(inner), Some(id)) = (&self.reg.inner, self.id) else {
            return;
        };
        let mut st = inner.lock().unwrap();
        let now = st.clock_ns;
        st.spans[(id - 1) as usize].end_ns = Some(now);
        st.open.retain(|open| *open != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_virtual_time() {
        let reg = Registry::new();
        {
            let outer = reg.span("outer");
            reg.advance_ms(1.0);
            {
                let inner = reg.span("inner");
                inner.attr("k", 3u64);
                reg.advance_ms(2.0);
            }
            outer.attr("done", true);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.start_ns, 0);
        assert_eq!(inner.start_ns, 1_000_000);
        assert_eq!(inner.end_ns, Some(3_000_000));
        assert_eq!(outer.end_ns, Some(3_000_000));
        assert_eq!(snap.clock_ns, 3_000_000);
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let reg = Registry::new();
        reg.incr("a", 2);
        reg.incr("a", 3);
        reg.observe("h", 0.5);
        reg.observe("h", 50.0);
        reg.observe("h", 1e9); // overflow bucket
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 5);
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert_eq!(h.sum, 0.5 + 50.0 + 1e9);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        let span = reg.span("x");
        span.attr("k", 1u64);
        reg.incr("c", 1);
        reg.observe("h", 1.0);
        reg.event("e", &[]);
        reg.set_gauge("g", 1.0);
        reg.advance_ms(10.0);
        drop(span);
        assert_eq!(reg.now_ns(), 0);
        let snap = reg.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn gauges_are_last_write_wins_with_high_water_marks() {
        let reg = Registry::new();
        reg.set_gauge("service.queue.depth", 3.0);
        reg.set_gauge("service.queue.depth", 1.0);
        reg.max_gauge("service.queue.peak", 3.0);
        reg.max_gauge("service.queue.peak", 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["service.queue.depth"], 1.0);
        assert_eq!(snap.gauges["service.queue.peak"], 3.0);
    }

    #[test]
    fn clones_share_state() {
        let a = Registry::new();
        let b = a.clone();
        a.incr("c", 1);
        b.incr("c", 1);
        assert_eq!(a.snapshot().counters["c"], 2);
        b.reset();
        assert!(a.snapshot().counters.is_empty());
    }

    #[test]
    fn record_span_is_closed_and_parented() {
        let reg = Registry::new();
        let outer = reg.span("outer");
        reg.record_span("timed", 5, 9, &[("n", Value::U64(1))]);
        drop(outer);
        let snap = reg.snapshot();
        assert_eq!(snap.spans[1].parent, Some(snap.spans[0].id));
        assert_eq!(snap.spans[1].start_ns, 5);
        assert_eq!(snap.spans[1].end_ns, Some(9));
    }

    #[test]
    fn events_are_stamped_with_the_virtual_clock() {
        let reg = Registry::new();
        reg.advance_ms(2.5);
        reg.event("e", &[("why", Value::Str("test".into()))]);
        let snap = reg.snapshot();
        assert_eq!(snap.events[0].ts_ns, 2_500_000);
        assert_eq!(snap.events[0].name, "e");
    }
}
