//! Trace exporters: canonical JSON and a human-readable span tree.
//!
//! Both renderers are fully deterministic: spans and events appear in
//! recording order, counters and histograms in lexicographic name order
//! (they live in `BTreeMap`s), and floats go through Rust's shortest
//! round-trip formatting, which is platform-independent. A snapshot of a
//! seeded run therefore serializes to the same bytes everywhere — the
//! property the golden-trace test pins down.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{EventData, Histogram, SpanData, Value};

/// An immutable copy of a registry's recorded state, ready to export.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Final virtual clock value in ns.
    pub clock_ns: u64,
    /// Spans in creation order.
    pub spans: Vec<SpanData>,
    /// Events in recording order.
    pub events: Vec<EventData>,
    /// Counters, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last-write-wins levels), name-sorted. Exported only when
    /// non-empty, so traces that never set a gauge serialize to the same
    /// bytes they did before gauges existed.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, name-sorted.
    pub histograms: BTreeMap<String, Histogram>,
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest round-trip formatting: deterministic across platforms.
        let _ = write!(out, "{v}");
        // `1.0` formats as "1"; that is still valid JSON.
    } else {
        out.push_str("null");
    }
}

fn json_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => json_f64(*f, out),
        Value::Str(s) => escape_json(s, out),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn json_attrs(attrs: &[(String, Value)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(k, out);
        out.push(':');
        json_value(v, out);
    }
    out.push('}');
}

fn display_value(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(f) => format!("{f}"),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
    }
}

impl TraceSnapshot {
    /// Serialize the snapshot as canonical single-line JSON.
    ///
    /// Key order is fixed (`clock_ns`, `spans`, `events`, `counters`,
    /// `histograms`, then `gauges` — the last appearing only when a gauge
    /// was set); within each section the ordering rules in the module
    /// docs apply. Two snapshots of identical recordings produce
    /// identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(out, "{{\"clock_ns\":{},\"spans\":[", self.clock_ns);
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"parent\":", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            escape_json(&s.name, &mut out);
            let _ = write!(out, ",\"start_ns\":{},\"end_ns\":", s.start_ns);
            match s.end_ns {
                Some(e) => {
                    let _ = write!(out, "{e}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"attrs\":");
            json_attrs(&s.attrs, &mut out);
            out.push('}');
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"ts_ns\":{},\"name\":", e.ts_ns);
            escape_json(&e.name, &mut out);
            out.push_str(",\"attrs\":");
            json_attrs(&e.attrs, &mut out);
            out.push('}');
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json(k, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json(k, &mut out);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_f64(*b, &mut out);
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":", h.count);
            json_f64(h.sum, &mut out);
            out.push('}');
        }
        out.push('}');
        if !self.gauges.is_empty() {
            out.push_str(",\"gauges\":{");
            for (i, (k, v)) in self.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json(k, &mut out);
                out.push(':');
                json_f64(*v, &mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Render the trace as an indented, human-readable report: the span
    /// tree (with virtual start/duration and attributes), then events,
    /// counters, and histogram summaries.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "trace: virtual clock {} ms, {} span(s), {} event(s)",
            crate::ns_to_ms_string(self.clock_ns),
            self.spans.len(),
            self.events.len()
        );

        // Children of each span, in creation order.
        let mut children: BTreeMap<u64, Vec<&SpanData>> = BTreeMap::new();
        let mut roots: Vec<&SpanData> = Vec::new();
        for s in &self.spans {
            match s.parent {
                Some(p) => children.entry(p).or_default().push(s),
                None => roots.push(s),
            }
        }
        fn render_span(
            s: &SpanData,
            depth: usize,
            children: &BTreeMap<u64, Vec<&SpanData>>,
            out: &mut String,
        ) {
            let indent = "  ".repeat(depth);
            let dur = match s.end_ns {
                Some(end) => format!("{} ms", crate::ns_to_ms_string(end - s.start_ns)),
                None => "open".to_string(),
            };
            let _ = write!(
                out,
                "{indent}- {} @{} ms ({dur})",
                s.name,
                crate::ns_to_ms_string(s.start_ns)
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, " {k}={}", display_value(v));
            }
            out.push('\n');
            for c in children.get(&s.id).into_iter().flatten() {
                render_span(c, depth + 1, children, out);
            }
        }
        for root in roots {
            render_span(root, 0, &children, &mut out);
        }

        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                let _ = write!(out, "  @{} ms {}", crate::ns_to_ms_string(e.ts_ns), e.name);
                for (k, v) in &e.attrs {
                    let _ = write!(out, " {k}={}", display_value(v));
                }
                out.push('\n');
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let mean = if h.count > 0 {
                    h.sum / h.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "  {k}: count={} sum={} mean={mean:.3}", h.count, h.sum);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_is_stable_and_escaped() {
        let reg = Registry::new();
        let span = reg.span("a \"quoted\"\nname");
        span.attr("f", 0.5);
        span.attr("s", "x\ty");
        reg.advance_ms(1.0);
        drop(span);
        reg.incr("c", 1);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"quoted\\\"\\nname"));
        assert!(a.contains("\"f\":0.5"));
        assert!(a.contains("\"s\":\"x\\ty\""));
        assert!(a.contains("\"counters\":{\"c\":1}"));
    }

    #[test]
    fn nonfinite_floats_export_as_null() {
        let reg = Registry::new();
        let span = reg.span("s");
        span.attr("bad", f64::NAN);
        drop(span);
        assert!(reg.snapshot().to_json().contains("\"bad\":null"));
    }

    #[test]
    fn text_renders_tree_and_metrics() {
        let reg = Registry::new();
        {
            let outer = reg.span("daemon.submit");
            outer.attr("job_id", "wc");
            reg.advance_ms(2.0);
            let _inner = reg.span("matcher.match");
        }
        reg.incr("store.gets", 4);
        reg.observe("h", 2.0);
        let text = reg.snapshot().render_text();
        assert!(text.contains("- daemon.submit @0.000 ms"));
        assert!(text.contains("  - matcher.match @2.000 ms"));
        assert!(text.contains("store.gets = 4"));
        assert!(text.contains("h: count=1"));
    }

    #[test]
    fn gauges_export_only_when_set() {
        let reg = Registry::new();
        reg.incr("c", 1);
        // No gauge set: the legacy five-section layout, byte for byte.
        assert!(!reg.snapshot().to_json().contains("gauges"));
        reg.set_gauge("service.queue.depth", 2.0);
        let json = reg.snapshot().to_json();
        assert!(json.ends_with(",\"gauges\":{\"service.queue.depth\":2}}"));
        assert!(reg
            .snapshot()
            .render_text()
            .contains("service.queue.depth = 2"));
    }

    #[test]
    fn empty_snapshot_exports() {
        let snap = Registry::disabled().snapshot();
        assert_eq!(
            snap.to_json(),
            "{\"clock_ns\":0,\"spans\":[],\"events\":[],\"counters\":{},\"histograms\":{}}"
        );
        assert!(snap
            .render_text()
            .starts_with("trace: virtual clock 0.000 ms"));
    }
}
