//! # obs — deterministic tracing and metrics for PStorM-rs
//!
//! The observability substrate threaded through the daemon, matcher, CBO,
//! profile store, and simulator (DESIGN.md §10). It exists because the
//! paper's pitch is *explainable* feedback-based tuning (§2.3.2 motivates
//! PStorM over PerfXplain-style post-hoc explanation): every submission
//! should be able to answer "which matcher stage pruned which candidates,
//! how many what-if evaluations did the CBO spend, and where did the
//! simulated time go?" without a debugger.
//!
//! Three properties shape the design:
//!
//! 1. **Deterministic.** Timestamps come from a *virtual clock* advanced
//!    explicitly with simulated durations (never [`std::time::Instant`]),
//!    so the trace of a seeded run is byte-identical across machines and
//!    can be snapshot-tested (`tests/tests/trace_snapshot.rs`).
//! 2. **Zero-dependency and cheap when off.** The crate depends only on
//!    `std`. A [`Registry::disabled`] registry is a `None` behind an
//!    `Option<Arc<..>>`: every recording call reduces to one branch, so
//!    instrumented hot paths stay within noise of the uninstrumented ones
//!    (enforced by `perf_report` against `BENCH_tuning_latency.json`).
//! 3. **Structured.** Hierarchical [spans](Registry::span) with
//!    attributes, monotonic [counters](Registry::incr), fixed-bucket
//!    [histograms](Registry::observe), and timestamped
//!    [events](Registry::event) — exported as an indented text tree
//!    ([`TraceSnapshot::render_text`]) or canonical JSON
//!    ([`TraceSnapshot::to_json`]).
//!
//! # Example
//!
//! ```
//! use obs::Registry;
//!
//! let reg = Registry::new();
//! {
//!     let span = reg.span("daemon.submit");
//!     span.attr("job_id", "word-count");
//!     reg.incr("store.gets", 3);
//!     reg.advance_ms(1500.0); // simulated time elapsing
//!     reg.observe("sim.map_task_ms", 420.0);
//! } // span closes at the current virtual time
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["store.gets"], 3);
//! assert_eq!(snap.spans[0].name, "daemon.submit");
//! assert_eq!(snap.spans[0].end_ns, Some(1_500_000_000));
//! // Deterministic: same recording, same bytes.
//! assert_eq!(snap.to_json(), reg.snapshot().to_json());
//! ```
//!
//! A disabled registry accepts the same calls and records nothing:
//!
//! ```
//! use obs::Registry;
//!
//! let reg = Registry::disabled();
//! let span = reg.span("matcher.match"); // no-op guard
//! span.attr("stage1_survivors", 7u64);
//! reg.incr("cfstore.gets", 1);
//! drop(span);
//! assert!(!reg.is_enabled());
//! assert!(reg.snapshot().spans.is_empty());
//! ```

mod export;
mod registry;

pub use export::TraceSnapshot;
pub use registry::{EventData, Histogram, Registry, Span, SpanData, Value};

/// Convert a duration in virtual milliseconds to integer nanoseconds, the
/// unit all recorded timestamps use. Rounding to integer ns keeps traces
/// free of float-formatting drift.
pub fn ms_to_ns(ms: f64) -> u64 {
    if ms.is_finite() && ms > 0.0 {
        (ms * 1e6).round() as u64
    } else {
        0
    }
}

/// Format integer nanoseconds as fractional milliseconds for human output.
pub fn ns_to_ms_string(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}
