//! Starfish-style execution profiles.
//!
//! A [`JobProfile`] carries the three ingredient families the Starfish
//! What-If engine consumes (§4.1): *dataflow statistics* (Table 4.1
//! selectivities plus the raw counts they derive from), *cost factors*
//! (Table 4.2 per-byte IO and per-record CPU rates), and per-phase
//! timings. Profiles split into an independent map profile and reduce
//! profile, which is what allows PStorM to *compose* a profile for an
//! unseen job from two different stored profiles (§4.3).

use mrjobs::JobSpec;
use mrsim::{Dataflow, JobReport, MapPhase, ReducePhase};

/// The Table 4.2 cost factors, as estimated from observed task executions.
/// IO costs are ns/byte; CPU costs are ns/record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFactors {
    pub read_hdfs_io_cost: f64,
    pub write_hdfs_io_cost: f64,
    pub read_local_io_cost: f64,
    pub write_local_io_cost: f64,
    pub network_cost: f64,
    pub map_cpu_cost: f64,
    pub reduce_cpu_cost: f64,
    pub combine_cpu_cost: f64,
}

impl CostFactors {
    /// The cost factors as an ordered numeric vector (for Euclidean
    /// matching and normalization).
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.read_hdfs_io_cost,
            self.write_hdfs_io_cost,
            self.read_local_io_cost,
            self.write_local_io_cost,
            self.network_cost,
            self.map_cpu_cost,
            self.reduce_cpu_cost,
            self.combine_cpu_cost,
        ]
    }

    /// Names matching [`CostFactors::as_vec`] order.
    pub fn names() -> &'static [&'static str] {
        &[
            "READ_HDFS_IO_COST",
            "WRITE_HDFS_IO_COST",
            "READ_LOCAL_IO_COST",
            "WRITE_LOCAL_IO_COST",
            "NETWORK_COST",
            "MAP_CPU_COST",
            "REDUCE_CPU_COST",
            "COMBINE_CPU_COST",
        ]
    }
}

/// The map-side profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MapProfile {
    /// Job id this profile was collected from.
    pub source_job: String,
    /// Dataset it ran on.
    pub dataset: String,
    /// Logical bytes of the input dataset.
    pub input_bytes_total: f64,
    /// Average input bytes per map task.
    pub input_bytes_per_task: f64,
    /// Average input records per map task.
    pub input_records_per_task: f64,
    /// Average serialized input record size.
    pub avg_input_record_bytes: f64,
    /// Average serialized intermediate record size.
    pub avg_intermediate_record_bytes: f64,
    /// `MAP_SIZE_SEL`: map output bytes / input bytes.
    pub size_selectivity: f64,
    /// `MAP_PAIRS_SEL`: map output records / input records.
    pub pairs_selectivity: f64,
    /// `COMBINE_SIZE_SEL`, when the source job ran a combiner.
    pub combine_size_selectivity: Option<f64>,
    /// `COMBINE_PAIRS_SEL`.
    pub combine_pairs_selectivity: Option<f64>,
    /// Interpreter ops per map input record (drives MAP_CPU_COST).
    pub map_ops_per_record: f64,
    /// Interpreter ops per combine input record.
    pub combine_ops_per_record: Option<f64>,
    /// Group size (records) the combine selectivities were measured over.
    pub combine_ref_records: Option<f64>,
    /// Heaps-law exponent of distinct intermediate keys; lets the What-If
    /// engine rescale combine selectivity to actual spill sizes.
    pub intermediate_key_alpha: Option<f64>,
    /// Observed cost factors (averaged over profiled tasks).
    pub cost_factors: CostFactors,
    /// Average per-task phase times, ms.
    pub phase_ms: Vec<(MapPhase, f64)>,
    /// How many map tasks this profile was aggregated from.
    pub tasks_observed: u32,
}

impl MapProfile {
    /// The Table 4.1 map-side dynamic feature vector:
    /// `[MAP_SIZE_SEL, MAP_PAIRS_SEL, COMBINE_SIZE_SEL, COMBINE_PAIRS_SEL]`
    /// (combine features are 1.0 when no combiner ran — an identity
    /// combiner).
    pub fn dynamic_features(&self) -> Vec<f64> {
        vec![
            self.size_selectivity,
            self.pairs_selectivity,
            self.combine_size_selectivity.unwrap_or(1.0),
            self.combine_pairs_selectivity.unwrap_or(1.0),
        ]
    }
}

/// The reduce-side profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceProfile {
    pub source_job: String,
    pub dataset: String,
    /// Total reduce input records across reducers.
    pub in_records: f64,
    /// Total reduce input bytes (uncompressed shuffle volume).
    pub in_bytes: f64,
    /// Total reduce output records.
    pub out_records: f64,
    /// Total reduce output bytes.
    pub out_bytes: f64,
    /// `RED_SIZE_SEL`: out bytes / in bytes.
    pub size_selectivity: f64,
    /// `RED_PAIRS_SEL`: out records / in records.
    pub pairs_selectivity: f64,
    /// Interpreter ops per reduce input record.
    pub reduce_ops_per_record: f64,
    pub cost_factors: CostFactors,
    /// Average per-task phase times, ms.
    pub phase_ms: Vec<(ReducePhase, f64)>,
    pub tasks_observed: u32,
}

impl ReduceProfile {
    /// The Table 4.1 reduce-side dynamic feature vector:
    /// `[RED_SIZE_SEL, RED_PAIRS_SEL]`.
    pub fn dynamic_features(&self) -> Vec<f64> {
        vec![self.size_selectivity, self.pairs_selectivity]
    }
}

/// A complete job profile: independent map and reduce sub-profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Job id of the *submitted* job this profile describes. For composite
    /// profiles this is a synthetic id.
    pub job_id: String,
    /// Dataset name of the map-side source run.
    pub dataset: String,
    /// Logical input bytes of the map-side source run.
    pub input_bytes: f64,
    /// Map tasks in the source run.
    pub num_map_tasks: u32,
    pub map: MapProfile,
    pub reduce: Option<ReduceProfile>,
    /// How trustworthy this profile is, in `(0, 1]`: the fraction of
    /// scheduled task attempts in the source run that ran to completion.
    /// 1.0 for fault-free runs; lower when the run was perturbed by
    /// failures, speculative kills, or node loss — the matcher widens its
    /// stage-1 tolerance for low-confidence probes instead of trusting
    /// their noisy features outright.
    pub confidence: f64,
}

impl JobProfile {
    /// Compose a profile from the map side of one profile and the reduce
    /// side of another (§4.3: "the returned job profile is the composition
    /// of these two profiles"). This is what serves previously unseen jobs.
    pub fn compose(map_source: &JobProfile, reduce_source: &JobProfile) -> JobProfile {
        JobProfile {
            job_id: format!(
                "composite({} ⊕ {})",
                map_source.map.source_job,
                reduce_source
                    .reduce
                    .as_ref()
                    .map(|r| r.source_job.as_str())
                    .unwrap_or("∅")
            ),
            dataset: map_source.dataset.clone(),
            input_bytes: map_source.input_bytes,
            num_map_tasks: map_source.num_map_tasks,
            map: map_source.map.clone(),
            reduce: reduce_source.reduce.clone(),
            // A composite is only as trustworthy as its weakest source.
            confidence: map_source.confidence.min(reduce_source.confidence),
        }
    }

    /// Whether this profile was stitched together from two different
    /// source jobs.
    pub fn is_composite(&self) -> bool {
        match &self.reduce {
            Some(r) => r.source_job != self.map.source_job,
            None => false,
        }
    }
}

/// Aggregate a [`JobProfile`] from a simulated run.
///
/// `dataflow` supplies the counter-equivalents a real Starfish profiler
/// reads from Hadoop counters (combiner in/out, reduce CPU per record);
/// `report` supplies observed phase timings, per-task dataflow, and the
/// noisy observed cost rates.
pub fn profile_from_run(spec: &JobSpec, dataflow: &Dataflow, report: &JobReport) -> JobProfile {
    let n_map = report.map_tasks.len().max(1) as f64;

    let tot_in_bytes: f64 = report.map_tasks.iter().map(|t| t.input_bytes).sum();
    let tot_in_records: f64 = report.map_tasks.iter().map(|t| t.input_records).sum();
    let tot_out_bytes: f64 = report.map_tasks.iter().map(|t| t.out_bytes).sum();
    let tot_out_records: f64 = report.map_tasks.iter().map(|t| t.out_records).sum();
    let tot_map_ops: f64 = report.map_tasks.iter().map(|t| t.map_cpu_ops).sum();

    let avg_rates = |pick: fn(&mrsim::CostRates) -> f64| -> f64 {
        report
            .map_tasks
            .iter()
            .map(|t| pick(&t.observed_rates))
            .sum::<f64>()
            / n_map
    };
    let reduce_rates = |pick: fn(&mrsim::CostRates) -> f64, default: f64| -> f64 {
        if report.reduce_tasks.is_empty() {
            default
        } else {
            report
                .reduce_tasks
                .iter()
                .map(|t| pick(&t.observed_rates))
                .sum::<f64>()
                / report.reduce_tasks.len() as f64
        }
    };

    let map_ops_per_record = safe_div(tot_map_ops, tot_in_records);
    let combine_ops = dataflow.combine.map(|c| c.ops_per_record);
    let map_cpu_ns_per_op = avg_rates(|r| r.cpu_ns_per_op);

    let cost_factors = CostFactors {
        read_hdfs_io_cost: avg_rates(|r| r.read_hdfs_ns_per_byte),
        write_hdfs_io_cost: reduce_rates(
            |r| r.write_hdfs_ns_per_byte,
            avg_rates(|r| r.write_hdfs_ns_per_byte),
        ),
        read_local_io_cost: avg_rates(|r| r.read_local_ns_per_byte),
        write_local_io_cost: avg_rates(|r| r.write_local_ns_per_byte),
        network_cost: reduce_rates(
            |r| r.network_ns_per_byte,
            avg_rates(|r| r.network_ns_per_byte),
        ),
        map_cpu_cost: map_ops_per_record * map_cpu_ns_per_op,
        reduce_cpu_cost: {
            let ops = report
                .reduce_tasks
                .first()
                .map(|t| t.reduce_ops_per_record)
                .unwrap_or(0.0);
            ops * reduce_rates(|r| r.cpu_ns_per_op, map_cpu_ns_per_op)
        },
        combine_cpu_cost: combine_ops.unwrap_or(0.0) * map_cpu_ns_per_op,
    };

    let mut map_phase_ms: Vec<(MapPhase, f64)> = Vec::new();
    for phase in [
        MapPhase::Setup,
        MapPhase::Read,
        MapPhase::Map,
        MapPhase::Collect,
        MapPhase::Spill,
        MapPhase::Merge,
    ] {
        map_phase_ms.push((phase, report.avg_map_phase_ms(phase)));
    }

    let map = MapProfile {
        source_job: report.job_id.clone(),
        dataset: report.dataset.clone(),
        input_bytes_total: dataflow.input_bytes,
        input_bytes_per_task: tot_in_bytes / n_map,
        input_records_per_task: tot_in_records / n_map,
        avg_input_record_bytes: safe_div(tot_in_bytes, tot_in_records),
        avg_intermediate_record_bytes: dataflow.avg_intermediate_record_bytes,
        size_selectivity: safe_div(tot_out_bytes, tot_in_bytes),
        pairs_selectivity: safe_div(tot_out_records, tot_in_records),
        combine_size_selectivity: dataflow.combine.map(|c| c.size_selectivity),
        combine_pairs_selectivity: dataflow.combine.map(|c| c.record_selectivity),
        map_ops_per_record,
        combine_ops_per_record: combine_ops,
        combine_ref_records: dataflow.combine.map(|c| c.ref_records),
        intermediate_key_alpha: dataflow.combine.map(|c| c.alpha),
        cost_factors,
        phase_ms: map_phase_ms,
        tasks_observed: report.map_tasks.len() as u32,
    };

    let reduce = if report.reduce_tasks.is_empty() {
        None
    } else {
        let in_records: f64 = report.reduce_tasks.iter().map(|t| t.in_records).sum();
        let in_bytes: f64 = report.reduce_tasks.iter().map(|t| t.shuffle_bytes).sum();
        let out_records: f64 = report.reduce_tasks.iter().map(|t| t.out_records).sum();
        let out_bytes: f64 = report.reduce_tasks.iter().map(|t| t.out_bytes).sum();
        let mut phase_ms: Vec<(ReducePhase, f64)> = Vec::new();
        for phase in [
            ReducePhase::Setup,
            ReducePhase::Shuffle,
            ReducePhase::Sort,
            ReducePhase::Reduce,
            ReducePhase::Write,
        ] {
            phase_ms.push((phase, report.avg_reduce_phase_ms(phase)));
        }
        Some(ReduceProfile {
            source_job: report.job_id.clone(),
            dataset: report.dataset.clone(),
            in_records,
            in_bytes,
            out_records,
            out_bytes,
            size_selectivity: safe_div(out_bytes, in_bytes),
            pairs_selectivity: safe_div(out_records, in_records),
            reduce_ops_per_record: report.reduce_tasks[0].reduce_ops_per_record,
            cost_factors,
            phase_ms,
            tasks_observed: report.reduce_tasks.len() as u32,
        })
    };

    let _ = spec; // spec kept in the signature for future schema needs
    JobProfile {
        job_id: report.job_id.clone(),
        dataset: report.dataset.clone(),
        input_bytes: dataflow.input_bytes,
        num_map_tasks: dataflow.num_map_tasks,
        map,
        reduce,
        // Profiles aggregated from runs perturbed by failures, speculative
        // kills, or node loss are marked partial instead of being silently
        // averaged in at full weight.
        confidence: report.attempt_success_rate(),
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;
    use mrsim::{analyze, simulate_with_dataflow, ClusterSpec, JobConfig};

    fn full_profile(spec: &mrjobs::JobSpec, ds: &mrjobs::Dataset) -> JobProfile {
        let cl = ClusterSpec::ec2_c1_medium_16();
        let flow = analyze(spec, ds, &cl).unwrap();
        let report =
            simulate_with_dataflow(spec, &flow, &ds.name, &cl, &JobConfig::default(), 11).unwrap();
        profile_from_run(spec, &flow, &report)
    }

    #[test]
    fn word_count_profile_shape() {
        let p = full_profile(&jobs::word_count(), &corpus::random_text_1g());
        assert!(p.map.size_selectivity > 1.0);
        assert!(p.map.pairs_selectivity > 1.0);
        assert!(p.map.combine_pairs_selectivity.unwrap() < 1.0);
        let red = p.reduce.as_ref().unwrap();
        assert!(red.pairs_selectivity <= 1.0);
        assert_eq!(p.num_map_tasks, 16);
        assert_eq!(p.map.tasks_observed, 16);
    }

    #[test]
    fn sort_profile_has_unit_selectivity() {
        let p = full_profile(&jobs::sort(), &corpus::teragen_1g());
        assert!((p.map.size_selectivity - 1.0).abs() < 0.01);
        assert!((p.map.pairs_selectivity - 1.0).abs() < 1e-9);
        assert!(p.map.combine_size_selectivity.is_none());
        // Identity combine features default to 1.0 in the dynamic vector.
        assert_eq!(p.map.dynamic_features()[2], 1.0);
    }

    #[test]
    fn cost_factors_are_near_cluster_rates() {
        let p = full_profile(&jobs::word_count(), &corpus::random_text_1g());
        let base = ClusterSpec::ec2_c1_medium_16().rates;
        let cf = p.map.cost_factors;
        // Averaged over 16 noisy tasks: within ~30% of base.
        assert!((cf.read_hdfs_io_cost / base.read_hdfs_ns_per_byte - 1.0).abs() < 0.3);
        assert!(cf.map_cpu_cost > 0.0);
        assert!(cf.combine_cpu_cost > 0.0);
    }

    #[test]
    fn composition_stitches_sides() {
        let wc = full_profile(&jobs::word_count(), &corpus::random_text_1g());
        let co = full_profile(&jobs::word_cooccurrence_pairs(2), &corpus::random_text_1g());
        let comp = JobProfile::compose(&co, &wc);
        assert!(comp.is_composite());
        assert_eq!(comp.map.source_job, co.job_id);
        assert_eq!(comp.reduce.as_ref().unwrap().source_job, wc.job_id);
        assert!(!wc.is_composite());
    }

    #[test]
    fn phase_times_cover_all_phases() {
        let p = full_profile(&jobs::word_count(), &corpus::random_text_1g());
        assert_eq!(p.map.phase_ms.len(), 6);
        assert!(p.map.phase_ms.iter().all(|(_, ms)| *ms >= 0.0));
        let red = p.reduce.as_ref().unwrap();
        assert_eq!(red.phase_ms.len(), 5);
    }

    #[test]
    fn clean_runs_yield_full_confidence_faulted_runs_partial() {
        let clean = full_profile(&jobs::word_count(), &corpus::random_text_1g());
        assert_eq!(clean.confidence, 1.0);

        let spec = jobs::word_count();
        let ds = corpus::random_text_1g();
        let cl = ClusterSpec {
            faults: mrsim::FaultSpec {
                task_failure_prob: 0.3,
                ..mrsim::FaultSpec::default()
            },
            ..ClusterSpec::ec2_c1_medium_16()
        };
        let flow = analyze(&spec, &ds, &cl).unwrap();
        let report =
            simulate_with_dataflow(&spec, &flow, &ds.name, &cl, &JobConfig::default(), 42).unwrap();
        assert!(report.faults.failed_attempts > 0);
        let p = profile_from_run(&spec, &flow, &report);
        assert!(p.confidence < 1.0, "confidence {}", p.confidence);
        assert!(p.confidence > 0.0);

        // Composition keeps the weakest source's confidence.
        let comp = JobProfile::compose(&clean, &p);
        assert_eq!(comp.confidence, p.confidence);
    }

    #[test]
    fn dynamic_feature_vectors_have_fixed_length() {
        let p = full_profile(&jobs::word_count(), &corpus::random_text_1g());
        assert_eq!(p.map.dynamic_features().len(), 4);
        assert_eq!(p.reduce.as_ref().unwrap().dynamic_features().len(), 2);
        assert_eq!(
            CostFactors::names().len(),
            p.map.cost_factors.as_vec().len()
        );
    }
}
