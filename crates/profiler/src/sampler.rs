//! The Starfish sampler: collect a profile from a subset of map tasks.
//!
//! PStorM executes *one* map task with profiling on (plus the reducers for
//! its output) to build the dynamic feature vector of a submitted job
//! (§4.1.1). Starfish itself recommends a 10% sample when a full profile
//! is unavailable. Both are implemented here by restricting the measured
//! dataflow to a subset of splits and simulating that smaller job.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrjobs::{Dataset, JobSpec};
use mrsim::{analyze, simulate_with_dataflow, ClusterSpec, Dataflow, JobConfig, SimError};

use crate::profile::{profile_from_run, JobProfile};

/// How much of the job to sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleSize {
    /// One random map task — PStorM's probe (§3: "PStorM runs only one map
    /// task as a sample").
    OneTask,
    /// A fraction of the map tasks — Starfish's rule-of-thumb is 0.10.
    Fraction(f64),
}

/// The outcome of a sampling run: the collected profile plus the overhead
/// measures of Fig. 4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRun {
    /// The profile aggregated from the sampled tasks.
    pub profile: JobProfile,
    /// Virtual runtime of the sampling run, ms (Fig. 4.1a numerator).
    pub runtime_ms: f64,
    /// Map slots consumed by the sample (Fig. 4.1b).
    pub map_slots_used: u32,
}

/// Collect a full execution profile by running the whole job with
/// profiling on. Returns the profile and the run's report.
pub fn collect_full_profile(
    spec: &JobSpec,
    dataset: &Dataset,
    cluster: &ClusterSpec,
    config: &JobConfig,
    seed: u64,
) -> Result<(JobProfile, mrsim::JobReport), SimError> {
    let flow = analyze(spec, dataset, cluster)?;
    let report = simulate_with_dataflow(spec, &flow, &dataset.name, cluster, config, seed)?;
    let profile = profile_from_run(spec, &flow, &report);
    Ok((profile, report))
}

/// Collect a sample profile by executing a subset of the job's map tasks
/// (plus reducers over their output).
pub fn collect_sample_profile(
    spec: &JobSpec,
    dataset: &Dataset,
    cluster: &ClusterSpec,
    config: &JobConfig,
    size: SampleSize,
    seed: u64,
) -> Result<SampleRun, SimError> {
    let flow = analyze(spec, dataset, cluster)?;
    let sampled = restrict_dataflow(&flow, size, seed);
    let map_slots_used = sampled.num_map_tasks;
    let report = simulate_with_dataflow(
        spec,
        &sampled,
        &dataset.name,
        cluster,
        config,
        seed ^ 0x5a17,
    )?;
    let profile = profile_from_run(spec, &sampled, &report);
    Ok(SampleRun {
        profile,
        runtime_ms: report.runtime_ms,
        map_slots_used,
    })
}

/// Restrict a measured dataflow to a sampled subset of map tasks, scaling
/// the reduce side to the sampled share of intermediate data.
fn restrict_dataflow(flow: &Dataflow, size: SampleSize, seed: u64) -> Dataflow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbadc_0ffe);
    let total_tasks = flow.num_map_tasks.max(1);
    let sampled_tasks = match size {
        SampleSize::OneTask => 1u32,
        SampleSize::Fraction(f) => ((total_tasks as f64 * f).ceil() as u32).clamp(1, total_tasks),
    };
    // Pick the chunks the sampled tasks will observe, at random.
    let per_task: Vec<_> = (0..sampled_tasks)
        .map(|_| flow.per_task[rng.gen_range(0..flow.per_task.len())])
        .collect();

    let share = sampled_tasks as f64 / total_tasks as f64;
    let reduce = flow.reduce.as_ref().map(|r| {
        let mut r = r.clone();
        r.in_records *= share;
        r.in_bytes *= share;
        r.out_records *= share;
        r.out_bytes *= share;
        r.max_group_bytes *= share;
        for (_, w) in &mut r.key_weights {
            *w *= share;
        }
        r.uniform_weight *= share;
        r
    });
    Dataflow {
        num_map_tasks: sampled_tasks,
        per_task,
        combine: flow.combine,
        reduce,
        input_bytes: flow.input_bytes * share,
        avg_intermediate_record_bytes: flow.avg_intermediate_record_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::corpus;
    use mrjobs::jobs;

    fn cl() -> ClusterSpec {
        ClusterSpec::ec2_c1_medium_16()
    }

    #[test]
    fn one_task_sample_uses_one_slot() {
        let ds = corpus::wikipedia_35g();
        let run = collect_sample_profile(
            &jobs::word_count(),
            &ds,
            &cl(),
            &JobConfig::default(),
            SampleSize::OneTask,
            1,
        )
        .unwrap();
        assert_eq!(run.map_slots_used, 1);
        assert_eq!(run.profile.map.tasks_observed, 1);
    }

    #[test]
    fn ten_percent_sample_of_35g_uses_56_slots() {
        let ds = corpus::wikipedia_35g();
        let run = collect_sample_profile(
            &jobs::word_count(),
            &ds,
            &cl(),
            &JobConfig::default(),
            SampleSize::Fraction(0.10),
            1,
        )
        .unwrap();
        // 560 splits * 10% = 56, the paper's "57 map slots" on 571 splits.
        assert_eq!(run.map_slots_used, 56);
    }

    #[test]
    fn one_task_sampling_is_cheaper_than_ten_percent() {
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_cooccurrence_pairs(2);
        let one = collect_sample_profile(
            &spec,
            &ds,
            &cl(),
            &JobConfig::default(),
            SampleSize::OneTask,
            1,
        )
        .unwrap();
        let ten = collect_sample_profile(
            &spec,
            &ds,
            &cl(),
            &JobConfig::default(),
            SampleSize::Fraction(0.10),
            1,
        )
        .unwrap();
        assert!(one.runtime_ms < ten.runtime_ms);
    }

    #[test]
    fn sample_selectivities_track_full_profile() {
        // The core PStorM premise: dataflow features have low variance
        // across samples (§4.1.1).
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        let (full, _) = collect_full_profile(&spec, &ds, &cl(), &JobConfig::default(), 42).unwrap();
        for seed in 0..5 {
            let run = collect_sample_profile(
                &spec,
                &ds,
                &cl(),
                &JobConfig::default(),
                SampleSize::OneTask,
                seed,
            )
            .unwrap();
            let rel = (run.profile.map.size_selectivity - full.map.size_selectivity).abs()
                / full.map.size_selectivity;
            assert!(rel < 0.15, "seed {seed}: rel err {rel}");
        }
    }

    #[test]
    fn sample_cost_factors_vary_more_than_selectivities() {
        // ... while cost factors have high variance (§4.1.1).
        let ds = corpus::wikipedia_35g();
        let spec = jobs::word_count();
        let mut sels = vec![];
        let mut cpus = vec![];
        for seed in 0..8 {
            let run = collect_sample_profile(
                &spec,
                &ds,
                &cl(),
                &JobConfig::default(),
                SampleSize::OneTask,
                seed,
            )
            .unwrap();
            sels.push(run.profile.map.size_selectivity);
            cpus.push(run.profile.map.cost_factors.map_cpu_cost);
        }
        let cv = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&cpus) > 2.0 * cv(&sels),
            "cpu cv {} vs sel cv {}",
            cv(&cpus),
            cv(&sels)
        );
    }
}
