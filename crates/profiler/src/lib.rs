//! # profiler — Starfish-style execution profiles and the sampler
//!
//! * [`profile`] — [`profile::JobProfile`]: dataflow statistics
//!   (Table 4.1), cost factors (Table 4.2), per-phase timings; independent
//!   map/reduce sub-profiles and profile *composition* for unseen jobs.
//! * [`sampler`] — full-run profiling, PStorM's 1-task probe, and
//!   Starfish's 10% sampling, with the overhead accounting of Fig. 4.1.

pub mod profile;
pub mod sampler;

pub use profile::{profile_from_run, CostFactors, JobProfile, MapProfile, ReduceProfile};
pub use sampler::{collect_full_profile, collect_sample_profile, SampleRun, SampleSize};
