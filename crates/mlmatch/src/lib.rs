//! # mlmatch — machine-learning matching baselines
//!
//! The alternatives PStorM is evaluated against:
//!
//! * [`tree`]/[`gbrt`] — Gradient Boosted Regression Trees mirroring the
//!   R `gbm` configuration of Appendix A, with the four parameterizations
//!   of Fig. 6.2 ([`gbrt::GbrtParams::gbrt1`]..`gbrt4`).
//! * [`featsel`] — information-gain feature ranking and nearest-neighbour
//!   matching: the *P-features* and *SP-features* baselines of Fig. 6.1,
//!   plus the min-max normalizer shared with the PStorM matcher.
//! * [`distance`] — the Equation-1 profile-pair distance components, the
//!   What-If-labelled training set of §4.4, and the GBRT matcher.

pub mod distance;
pub mod featsel;
pub mod gbrt;
pub mod tree;

pub use distance::{build_training_set, DistanceContext, DistanceVector, GbrtMatcher, StoredJob};
pub use featsel::{
    map_numeric_features, reduce_numeric_features, select_by_info_gain, DimPrep, FeatureSample,
    MinMaxNormalizer, NnMatcher, SelectedFeature,
};
pub use gbrt::{GbrtModel, GbrtParams, Loss};
pub use tree::{RegressionTree, TreeParams};
