//! Gradient Boosted Regression Trees, mirroring the R `gbm` package as
//! configured in Appendix A of the paper: gaussian/laplace losses,
//! shrinkage, bag fraction, train fraction, CV-fold selection of the best
//! iteration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::tree::{RegressionTree, TreeParams};

/// The loss distribution (`distribution` in gbm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Squared error; pseudo-residuals are plain residuals.
    Gaussian,
    /// Absolute error; pseudo-residuals are residual signs.
    Laplace,
}

/// GBRT hyperparameters; defaults are the paper's "GBRT 1" setting.
#[derive(Debug, Clone)]
pub struct GbrtParams {
    /// `n.trees`.
    pub n_trees: usize,
    /// `shrinkage`.
    pub shrinkage: f64,
    /// `interaction.depth`.
    pub interaction_depth: usize,
    /// `bag.fraction`: subsample share per iteration.
    pub bag_fraction: f64,
    /// `train.fraction`: leading share of the data used for fitting.
    pub train_fraction: f64,
    /// `cv.folds`: 0 or 1 disables cross-validated best-iteration search.
    pub cv_folds: usize,
    /// `n.minobsinnode`.
    pub min_obs_in_node: usize,
    pub loss: Loss,
    pub seed: u64,
}

impl GbrtParams {
    /// GBRT 1 of Fig. 6.2: the R gbm defaults used in the thesis.
    pub fn gbrt1() -> Self {
        GbrtParams {
            n_trees: 2000,
            shrinkage: 0.005,
            interaction_depth: 3,
            bag_fraction: 0.5,
            train_fraction: 0.5,
            cv_folds: 10,
            min_obs_in_node: 10,
            loss: Loss::Gaussian,
            seed: 0x9b,
        }
    }

    /// GBRT 2: Laplace loss.
    pub fn gbrt2() -> Self {
        GbrtParams {
            loss: Loss::Laplace,
            ..Self::gbrt1()
        }
    }

    /// GBRT 3: 10k iterations, lr 0.001, 80% training data.
    pub fn gbrt3() -> Self {
        GbrtParams {
            n_trees: 10_000,
            shrinkage: 0.001,
            train_fraction: 0.8,
            loss: Loss::Laplace,
            ..Self::gbrt1()
        }
    }

    /// GBRT 4: 100% training data (deliberate overfit).
    pub fn gbrt4() -> Self {
        GbrtParams {
            train_fraction: 1.0,
            ..Self::gbrt3()
        }
    }
}

/// A fitted GBRT model.
#[derive(Debug, Clone)]
pub struct GbrtModel {
    init: f64,
    trees: Vec<RegressionTree>,
    shrinkage: f64,
    /// The CV-selected iteration count used at prediction time
    /// (`gbm.perf(method="cv")`).
    pub best_iter: usize,
}

impl GbrtModel {
    /// Fit a model to `(x, y)`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &GbrtParams) -> GbrtModel {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GBRT needs training data");
        let n_train = ((x.len() as f64 * params.train_fraction).round() as usize).clamp(2, x.len());
        let train: Vec<usize> = (0..n_train).collect();

        // Cross-validated best-iteration search.
        let best_iter = if params.cv_folds >= 2 && n_train >= params.cv_folds * 2 {
            cv_best_iteration(x, y, &train, params)
        } else {
            params.n_trees
        };

        let mut model = fit_on(x, y, &train, params, params.seed);
        model.best_iter = best_iter.min(model.trees.len());
        model
    }

    /// Predict one sample using the best iteration count.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        let mut f = self.init;
        for tree in self.trees.iter().take(self.best_iter) {
            f += self.shrinkage * tree.predict(sample);
        }
        f
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Fit a boosting run on the given sample indices.
fn fit_on(x: &[Vec<f64>], y: &[f64], idx: &[usize], params: &GbrtParams, seed: u64) -> GbrtModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree_params = TreeParams {
        max_depth: params.interaction_depth,
        min_samples_leaf: params.min_obs_in_node.min(idx.len() / 4).max(1),
    };
    let init = match params.loss {
        Loss::Gaussian => idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64,
        Loss::Laplace => median(idx.iter().map(|&i| y[i]).collect()),
    };
    let mut f: Vec<f64> = vec![init; x.len()];
    let mut trees = Vec::with_capacity(params.n_trees);
    let bag_size = ((idx.len() as f64 * params.bag_fraction).round() as usize).clamp(2, idx.len());
    let mut bag: Vec<usize> = idx.to_vec();
    let mut residuals = vec![0.0; x.len()];
    for _ in 0..params.n_trees {
        bag.shuffle(&mut rng);
        let sample = &bag[..bag_size];
        for &i in sample {
            residuals[i] = match params.loss {
                Loss::Gaussian => y[i] - f[i],
                Loss::Laplace => (y[i] - f[i]).signum(),
            };
        }
        let tree = RegressionTree::fit(x, &residuals, sample, &tree_params);
        for &i in idx {
            f[i] += params.shrinkage * tree.predict(&x[i]);
        }
        trees.push(tree);
    }
    GbrtModel {
        init,
        trees,
        shrinkage: params.shrinkage,
        best_iter: params.n_trees,
    }
}

/// k-fold CV: average held-out loss per iteration; return the argmin.
fn cv_best_iteration(x: &[Vec<f64>], y: &[f64], train: &[usize], params: &GbrtParams) -> usize {
    let k = params.cv_folds;
    let mut cum_loss = vec![0.0f64; params.n_trees + 1];
    for fold in 0..k {
        let fit_idx: Vec<usize> = train
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, &s)| s)
            .collect();
        let holdout: Vec<usize> = train
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, &s)| s)
            .collect();
        if fit_idx.len() < 2 || holdout.is_empty() {
            continue;
        }
        let model = fit_on(x, y, &fit_idx, params, params.seed ^ (fold as u64 + 1));
        // Walk the boosting sequence accumulating held-out loss.
        let mut preds: Vec<f64> = holdout.iter().map(|_| model.init).collect();
        cum_loss[0] += loss_of(&preds, &holdout, y, params.loss);
        for (t, tree) in model.trees.iter().enumerate() {
            for (p, &i) in preds.iter_mut().zip(holdout.iter()) {
                *p += model.shrinkage * tree.predict(&x[i]);
            }
            cum_loss[t + 1] += loss_of(&preds, &holdout, y, params.loss);
        }
    }
    cum_loss
        .iter()
        .enumerate()
        .skip(1)
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(params.n_trees)
}

fn loss_of(preds: &[f64], idx: &[usize], y: &[f64], loss: Loss) -> f64 {
    preds
        .iter()
        .zip(idx.iter())
        .map(|(p, &i)| match loss {
            Loss::Gaussian => (y[i] - p).powi(2),
            Loss::Laplace => (y[i] - p).abs(),
        })
        .sum()
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3*x0 - 2*x1 with mild noise.
    fn linear_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 17) as f64 / 17.0, (i % 5) as f64 / 5.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        (x, y)
    }

    fn quick_params() -> GbrtParams {
        GbrtParams {
            n_trees: 200,
            shrinkage: 0.05,
            interaction_depth: 3,
            bag_fraction: 0.7,
            train_fraction: 1.0,
            cv_folds: 0,
            min_obs_in_node: 5,
            loss: Loss::Gaussian,
            seed: 1,
        }
    }

    #[test]
    fn learns_a_linear_function() {
        let (x, y) = linear_data(300);
        let model = GbrtModel::fit(&x, &y, &quick_params());
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| (model.predict(r) - t).powi(2))
            .sum::<f64>()
            / x.len() as f64;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn laplace_loss_also_learns() {
        let (x, y) = linear_data(300);
        let mut p = quick_params();
        p.loss = Loss::Laplace;
        p.n_trees = 600;
        let model = GbrtModel::fit(&x, &y, &p);
        let mae: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| (model.predict(r) - t).abs())
            .sum::<f64>()
            / x.len() as f64;
        assert!(mae < 0.35, "mae {mae}");
    }

    #[test]
    fn cv_selects_an_iteration_at_most_n_trees() {
        let (x, y) = linear_data(120);
        let mut p = quick_params();
        p.cv_folds = 4;
        p.n_trees = 100;
        let model = GbrtModel::fit(&x, &y, &p);
        assert!(model.best_iter >= 1);
        assert!(model.best_iter <= 100);
    }

    #[test]
    fn train_fraction_limits_fitting_data() {
        // Data whose second half has a different relationship: a model
        // trained on the first 50% should fit the first half better.
        let n = 200;
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| if i < n / 2 { x[i][0] } else { -5.0 })
            .collect();
        let mut p = quick_params();
        p.train_fraction = 0.5;
        let model = GbrtModel::fit(&x, &y, &p);
        let err_first = (model.predict(&x[10]) - y[10]).abs();
        let err_second = (model.predict(&x[150]) - y[150]).abs();
        assert!(err_first < err_second);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, y) = linear_data(100);
        let a = GbrtModel::fit(&x, &y, &quick_params());
        let b = GbrtModel::fit(&x, &y, &quick_params());
        assert_eq!(a.predict(&x[7]), b.predict(&x[7]));
    }

    #[test]
    fn preset_parameterizations_match_the_paper() {
        let g1 = GbrtParams::gbrt1();
        assert_eq!(g1.n_trees, 2000);
        assert_eq!(g1.shrinkage, 0.005);
        assert_eq!(g1.cv_folds, 10);
        assert_eq!(g1.loss, Loss::Gaussian);
        assert_eq!(GbrtParams::gbrt2().loss, Loss::Laplace);
        let g3 = GbrtParams::gbrt3();
        assert_eq!(g3.n_trees, 10_000);
        assert_eq!(g3.shrinkage, 0.001);
        assert_eq!(g3.train_fraction, 0.8);
        assert_eq!(GbrtParams::gbrt4().train_fraction, 1.0);
    }
}
