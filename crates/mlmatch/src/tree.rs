//! CART-style regression trees: greedy variance-reduction splits, the
//! base learner of GBRT (§4.4).

/// Parameters of a single regression tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth (the `interaction.depth` of the R gbm package).
    pub max_depth: usize,
    /// Minimum samples in a leaf (`n.minobsinnode`).
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 3,
            min_samples_leaf: 10,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree to `(x, y)` pairs restricted to `idx`.
    ///
    /// `x` is row-major: `x[i]` is sample `i`'s feature vector.
    pub fn fit(x: &[Vec<f64>], y: &[f64], idx: &[usize], params: &TreeParams) -> RegressionTree {
        assert_eq!(x.len(), y.len());
        let mut tree = RegressionTree { nodes: Vec::new() };
        let root_idx: Vec<usize> = idx.to_vec();
        tree.grow(x, y, root_idx, 0, params);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: Vec<usize>,
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = mean_of(y, &idx);
        if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = best_split(x, y, &idx, params.min_samples_leaf) else {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        // Reserve a slot for this split node, then grow children.
        let node_pos = self.nodes.len();
        self.nodes.push(Node::Leaf(mean)); // placeholder
        let left = self.grow(x, y, left_idx, depth + 1, params);
        let right = self.grow(x, y, right_idx, depth + 1, params);
        self.nodes[node_pos] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_pos
    }

    /// Predict a single sample.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn mean_of(y: &[f64], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

/// Best (feature, threshold) by SSE reduction, or `None` when no split
/// satisfies the leaf-size constraint or reduces error.
fn best_split(x: &[Vec<f64>], y: &[f64], idx: &[usize], min_leaf: usize) -> Option<(usize, f64)> {
    let n = idx.len();
    if n < 2 * min_leaf {
        return None;
    }
    let n_features = x[idx[0]].len();
    let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
    let base_sse = total_sq - total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut order: Vec<usize> = idx.to_vec();
    #[allow(clippy::needless_range_loop)] // `f` indexes the inner feature vectors, not `x`
    for f in 0..n_features {
        order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(n - 1) {
            left_sum += y[i];
            left_sq += y[i] * y[i];
            let left_n = k + 1;
            let right_n = n - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            // Can't split between equal feature values.
            if x[i][f] == x[order[k + 1]][f] {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n as f64)
                + (right_sq - right_sum * right_sum / right_n as f64);
            if best
                .map(|(_, _, b)| sse < b)
                .unwrap_or(sse < base_sse - 1e-12)
            {
                let threshold = (x[i][f] + x[order[k + 1]][f]) / 2.0;
                best = Some((f, threshold, sse));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_idx(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 20];
        let t = RegressionTree::fit(&x, &y, &all_idx(20), &TreeParams::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[3.0]), 5.0);
    }

    #[test]
    fn step_function_is_learned_exactly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 10.0 }).collect();
        let params = TreeParams {
            max_depth: 2,
            min_samples_leaf: 5,
        };
        let t = RegressionTree::fit(&x, &y, &all_idx(40), &params);
        assert_eq!(t.predict(&[3.0]), 0.0);
        assert_eq!(t.predict(&[33.0]), 10.0);
    }

    #[test]
    fn respects_min_leaf() {
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let params = TreeParams {
            max_depth: 10,
            min_samples_leaf: 6,
        };
        let t = RegressionTree::fit(&x, &y, &all_idx(12), &params);
        // One split max: 12 samples, min leaf 6.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines y.
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 2) as f64, (i * 7 % 13) as f64])
            .collect();
        let y: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let params = TreeParams {
            max_depth: 1,
            min_samples_leaf: 5,
        };
        let t = RegressionTree::fit(&x, &y, &all_idx(50), &params);
        assert_eq!(t.predict(&[0.0, 99.0]), 1.0);
        assert_eq!(t.predict(&[1.0, 99.0]), -1.0);
    }

    #[test]
    fn deeper_trees_fit_better() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| ((i / 8) % 2) as f64).collect();
        let shallow = RegressionTree::fit(
            &x,
            &y,
            &all_idx(64),
            &TreeParams {
                max_depth: 1,
                min_samples_leaf: 2,
            },
        );
        let deep = RegressionTree::fit(
            &x,
            &y,
            &all_idx(64),
            &TreeParams {
                max_depth: 6,
                min_samples_leaf: 2,
            },
        );
        let sse = |t: &RegressionTree| -> f64 {
            (0..64)
                .map(|i| (t.predict(&x[i]) - y[i]).powi(2))
                .sum::<f64>()
        };
        assert!(sse(&deep) < sse(&shallow));
    }
}
